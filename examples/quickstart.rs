//! Quickstart: the paper's §1 program fragment, end to end.
//!
//! ```text
//! 1  x = ...
//! 2  y = read $x//A
//! 3  insert $x/B, <C/>
//! 4  z = read $x//C
//! ```
//!
//! Can line 4 be hoisted above line 3? Can a read of `$x//D`? This
//! example answers both with the PTIME detector, then demonstrates the
//! three conflict semantics on a concrete witness.
//!
//! Run with: `cargo run --example quickstart`

use cxu::prelude::*;
use cxu::{detect, witness};

fn main() {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).expect("pattern parses");
    let doc = |s: &str| cxu::tree::text::parse(s).expect("tree parses");

    println!("== Conflicting XML Updates: quickstart ==\n");

    // The §1 operations.
    let insert = Insert::new(parse("x/B"), doc("C"));
    println!("update      : insert $x/B, <C/>");

    for (src, label) in [("x//C", "read $x//C"), ("x//D", "read $x//D")] {
        let read = Read::new(parse(src));
        let conflicts =
            detect::read_insert_conflict(&read, &insert, Semantics::Node).expect("linear read");
        println!(
            "{label:<12}: {}",
            if conflicts {
                "CONFLICT — must stay after the insert"
            } else {
                "independent — safe to hoist above the insert"
            }
        );
    }

    // A concrete witness for the conflicting pair (Lemma 1 checking).
    println!("\n-- witness check on x(B) --");
    let w = doc("x(B)");
    let read_c = Read::new(parse("x//C"));
    println!("R(t)  before insert: {} node(s)", read_c.eval(&w).len());
    let (after, points) = insert.apply_to_copy(&w);
    println!(
        "I(t)  inserted at {} point(s); R(I(t)): {} node(s)",
        points.len(),
        read_c.eval(&after).len()
    );
    assert!(witness::witnesses_insert_conflict(
        &read_c,
        &insert,
        &w,
        Semantics::Node
    ));

    // The three semantics diverge (§3, Figure 3).
    println!("\n-- three semantics on Figure 3's delete --");
    let del = Delete::new(parse("root/delta")).expect("output is not the root");
    let fig3 = doc("root(delta(gamma) keep(gamma))");
    let read_g = Read::new(parse("root//gamma"));
    for sem in Semantics::ALL {
        let hit = witness::witnesses_delete_conflict(&read_g, &del, &fig3, sem);
        println!(
            "  {sem:?} semantics: {}",
            if hit { "conflict" } else { "no conflict" }
        );
    }
    println!(
        "\n(The deleted gamma subtree is isomorphic to the surviving one,\n\
         so reference-based semantics conflict while value-based does not.)"
    );
}
