//! The compiler scenario (§1, experiment E9): code motion over pidgin
//! programs.
//!
//! Generates random straight-line programs of reads and updates, uses the
//! PTIME detector to classify every (update, later-read) pair as
//! independent or conflicting, then *verifies each classification
//! observationally*: hoisting an independent read above the update must
//! not change any read's result on concrete documents.
//!
//! Run with: `cargo run --example optimizer`

use cxu::detect;
use cxu::gen::program::{motion_candidates, observe, random_program, Program, ProgramParams, Stmt};
use cxu::gen::rng::SplitMix64 as SmallRng;
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::prelude::*;

/// Swap statements `i` and `j` (i < j), modelling the hoist of the read
/// at `j` to just before the update at `i`. Only valid when nothing
/// between them is an update (we generate candidates that way below).
fn hoist(prog: &Program, i: usize, j: usize) -> Program {
    let mut stmts = prog.stmts.clone();
    let read = stmts.remove(j);
    stmts.insert(i, read);
    Program { stmts }
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(2024);
    let params = ProgramParams {
        len: 12,
        update_rate: 0.45,
        delete_rate: 0.4,
        ..ProgramParams::default()
    };

    let mut total_pairs = 0usize;
    let mut independent_pairs = 0usize;
    let mut verified = 0usize;

    println!("== §1 compiler scenario: which reads can move above updates? ==\n");

    for prog_idx in 0..20 {
        let prog = random_program(&mut rng, &params);
        // Adjacent-only candidates: (update at i, read at i+1) — a hoist
        // across a single update, the §1 transformation.
        let candidates: Vec<(usize, usize)> = motion_candidates(&prog)
            .into_iter()
            .filter(|&(u, r)| r == u + 1)
            .collect();

        for (u_idx, r_idx) in candidates {
            let Stmt::Update(u) = &prog.stmts[u_idx] else {
                unreachable!()
            };
            let Stmt::Read(r) = &prog.stmts[r_idx] else {
                unreachable!()
            };
            total_pairs += 1;
            // Tree semantics: the observation below renders the returned
            // *subtrees*, so node-set stability alone is not enough — the
            // subtrees must be untouched too (§3's tree conflicts).
            let independent = detect::independent(r, u, Semantics::Tree)
                .expect("generator produces linear reads");
            if !independent {
                continue;
            }
            independent_pairs += 1;

            // Observational verification on 5 random documents: the
            // hoisted program must produce identical read results.
            let hoisted = hoist(&prog, u_idx, r_idx);
            for doc_seed in 0..5 {
                let mut drng = SmallRng::seed_from_u64(1000 * prog_idx + doc_seed);
                let doc = random_tree(
                    &mut drng,
                    &TreeParams {
                        nodes: 80,
                        alphabet: 3,
                        ..TreeParams::default()
                    },
                );
                assert_eq!(
                    observe(&prog, &doc),
                    observe(&hoisted, &doc),
                    "detector said independent but observation changed \
                     (program {prog_idx}, pair {u_idx}/{r_idx})"
                );
                verified += 1;
            }
        }
    }

    println!("programs analysed      : 20");
    println!("update→read pairs      : {total_pairs}");
    println!(
        "provably independent   : {independent_pairs} ({:.0}%)",
        100.0 * independent_pairs as f64 / total_pairs.max(1) as f64
    );
    println!("observational checks   : {verified} (all passed)");
    println!(
        "\nEvery pair the detector declared independent was hoisted and\n\
         re-executed on random documents with identical observations —\n\
         the §1 code-motion transformation, justified by Theorems 1–2."
    );
}
