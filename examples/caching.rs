//! Conflict-driven caching: CSE and incremental read maintenance.
//!
//! The paper's §1 sells conflict detection as a compiler enabler: if a
//! read provably does not conflict with an update, its result can be
//! cached across the update (common subexpression elimination), and even
//! when it *does* conflict, a cached result can often be repaired
//! incrementally instead of recomputed. This example runs both
//! optimizations end to end.
//!
//! Run with: `cargo run --release --example caching`

use cxu::core::incremental::IncrementalRead;
use cxu::gen::analysis::{cse_pairs, eliminate_common_reads};
use cxu::gen::docs::{inventory, InventoryParams};
use cxu::gen::program::{Program, Stmt};
use cxu::gen::rng::SplitMix64 as SmallRng;
use cxu::prelude::*;
use std::time::Instant;

fn main() {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).expect("pattern parses");
    let term = |s: &str| cxu::tree::text::parse(s).expect("tree parses");

    println!("== conflict-driven caching ==\n");

    // ---- Part 1: CSE over a pidgin program -------------------------------
    let program = Program {
        stmts: vec![
            Stmt::Read(Read::new(parse("inventory/book/title"))),
            Stmt::Update(Update::Insert(Insert::new(
                parse("inventory/book[.//quantity/low]"),
                term("restock"),
            ))),
            Stmt::Read(Read::new(parse("inventory/book/title"))), // reusable
            Stmt::Read(Read::new(parse("inventory//restock"))),   // not reusable
        ],
    };
    println!("program:");
    for (i, s) in program.stmts.iter().enumerate() {
        match s {
            Stmt::Read(r) => println!("  {i}: read   {}", r.pattern()),
            Stmt::Update(u) => println!("  {i}: insert at {}", u.pattern()),
        }
    }
    let pairs = cse_pairs(&program);
    println!("\nCSE-reusable read pairs (tree-semantics independence): {pairs:?}");
    let (optimized, removed) = eliminate_common_reads(&program);
    println!(
        "eliminated {removed} read(s): {} statements → {}",
        program.stmts.len(),
        optimized.stmts.len()
    );
    assert_eq!(pairs, vec![(0, 2)]);

    // ---- Part 2: incremental maintenance under a conflicting update ------
    println!("\n-- incremental maintenance of a CONFLICTING read --");
    let mut rng = SmallRng::seed_from_u64(99);
    let mut doc = inventory(
        &mut rng,
        &InventoryParams {
            books: 5_000,
            low_stock_rate: 0.3,
            nested_rate: 0.5,
        },
    );
    println!("document: {} nodes", doc.live_count());

    let read = Read::new(parse("inventory//restock"));
    let restock = Insert::new(parse("inventory/book[.//quantity/low]"), term("restock"));

    let mut cached = IncrementalRead::new(read.clone(), &doc).expect("linear read");
    assert!(cached.result().is_empty());

    // The update's own work (find points + graft) happens either way.
    let t0 = Instant::now();
    let pairs = restock.apply_indexed(&mut doc);
    let t_update = t0.elapsed();

    let t0 = Instant::now();
    cached.note_insert(&doc, &pairs);
    let t_incremental = t0.elapsed();

    let t0 = Instant::now();
    let full = read.eval(&doc);
    let t_full = t0.elapsed();

    assert_eq!(cached.result(), full.as_slice());
    println!("restocked {} books", pairs.len());
    println!("apply update                : {t_update:?}");
    println!("maintain cached read        : {t_incremental:?}");
    println!("full re-evaluation (oracle) : {t_full:?}");
    println!(
        "\ncached result identical to re-evaluation ({} hits), maintained in\n\
         time proportional to the update rather than the document.",
        full.len()
    );
}
