//! The NP side (§5, experiment E5/E4): hardness reductions and the cost
//! of exact detection for branching patterns.
//!
//! 1. Builds Theorem 4/6 instances from pattern pairs with known
//!    containment status and shows conflict ⇔ non-containment.
//! 2. Shows the exponential growth of exhaustive witness search as the
//!    witness size bound increases — the practical content of
//!    NP-completeness — against the constant-time answer of the PTIME
//!    detector on a comparable linear instance.
//!
//! Run with: `cargo run --example np_hardness` (use `--release` for the
//! timing section to be meaningful).

use cxu::core::brute::{find_witness, Budget, SearchOutcome};
use cxu::core::reduction;
use cxu::detect;
use cxu::pattern::containment;
use cxu::prelude::*;
use std::time::Instant;

fn main() {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).expect("pattern parses");

    println!("== §5: conflict detection is NP-complete for P^{{//,[],*}} ==\n");
    println!("-- Theorem 4: read-insert conflict ⇔ p ⊄ p' --\n");

    let pairs = [
        ("a/b", "a//b"),
        ("a//b", "a/b"),
        ("a[b][c]", "a[b]"),
        ("a[b]", "a[b][c]"),
        ("a/*/b", "a//b"),
        ("a//b", "a/*/b"),
    ];

    for (p_src, q_src) in pairs {
        let p = parse(p_src);
        let q = parse(q_src);
        let contained = containment::contains(&p, &q);
        let (r, i) = reduction::insert_instance(&p, &q);
        // Decide the conflict: if p ⊄ p', Theorem 4's proof constructs a
        // witness (Figure 7d) from a containment counterexample — verify
        // it with the Lemma 1 checker. If p ⊆ p', no small witness may
        // exist — confirm by bounded search.
        let conflict = match containment::find_counterexample(&p, &q, 4) {
            Some(t_p) => {
                let w = reduction::insert_witness_from_counterexample(&p, &q, &t_p);
                assert!(
                    cxu::witness::witnesses_insert_conflict(&r, &i, &w, Semantics::Node),
                    "constructed witness must work for {p_src} vs {q_src}"
                );
                true
            }
            None => {
                let out = find_witness(
                    &r,
                    &Update::Insert(i),
                    Semantics::Node,
                    Budget {
                        max_nodes: 4,
                        max_trees: 5_000_000,
                    },
                );
                matches!(out, SearchOutcome::Conflict(_))
            }
        };
        println!(
            "  {p_src:<8} ⊆ {q_src:<8} ? {:<5} | reduced instance conflicts? {:<5} ✓",
            contained, conflict
        );
        assert_ne!(
            contained, conflict,
            "Theorem 4 violated for {p_src} vs {q_src}"
        );
    }

    println!("\n-- exhaustive search cost vs witness size bound --\n");
    // A branching read forces the NP path; the search space explodes in
    // the size bound.
    let r = Read::new(parse("a[b][c]/d"));
    let u = Update::Insert(Insert::new(
        parse("a[b]/c"),
        cxu::tree::text::parse("d").unwrap(),
    ));
    println!("  read a[b][c]/d  vs  insert a[b]/c, <d/>");
    for max_nodes in 2..=6 {
        let t0 = Instant::now();
        let out = find_witness(
            &r,
            &u,
            Semantics::Node,
            Budget {
                max_nodes,
                max_trees: 50_000_000,
            },
        );
        let dt = t0.elapsed();
        let verdict = match &out {
            SearchOutcome::Conflict(w) => format!("witness of {} nodes", w.live_count()),
            SearchOutcome::NoConflictWithin(_) => "no witness".into(),
            SearchOutcome::BudgetExceeded(n) => format!("budget exceeded ({n} candidates)"),
            SearchOutcome::DeadlineExceeded => "deadline exceeded".into(),
        };
        println!("    bound {max_nodes} nodes: {verdict:<24} in {dt:?}");
        if matches!(out, SearchOutcome::Conflict(_)) {
            break;
        }
    }

    // The same question with a *linear* read answers instantly (§4).
    let r_lin = Read::new(parse("a/c/d"));
    let t0 = Instant::now();
    let ans = detect::read_update_conflict(&r_lin, &u, Semantics::Node).unwrap();
    println!(
        "\n  linear read a/c/d vs the same insert: {} in {:?} (PTIME, Theorem 2)",
        if ans { "conflict" } else { "independent" },
        t0.elapsed()
    );
}
