//! The Figure 1 scenario: restocking an inventory.
//!
//! The paper opens with `insert t/book[.//quantity < 10], <restock/>` —
//! add a `<restock/>` marker to every low-stock book. The structural
//! pattern fragment cannot compare numbers, so the generator marks low
//! stock with a `low` child under `quantity` and the constraint becomes
//! `inventory/book[.//quantity/low]`.
//!
//! The example runs the insertion over a generated inventory, then asks
//! the detector which follow-up reads commuted with it, and finally shows
//! the §6 schema refinement: a DTD can kill a conflict that exists over
//! unconstrained trees.
//!
//! Run with: `cargo run --example restock`

use cxu::gen::docs::{inventory, InventoryParams};
use cxu::gen::rng::SplitMix64 as SmallRng;
use cxu::prelude::*;
use cxu::schema::{ChildSpec, Dtd, SchemaSearchOutcome};
use cxu::{detect, witness};

fn main() {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).expect("pattern parses");
    let mut rng = SmallRng::seed_from_u64(42);

    println!("== Figure 1: restock low-stock books ==\n");

    let mut doc = inventory(
        &mut rng,
        &InventoryParams {
            books: 8,
            low_stock_rate: 0.4,
            nested_rate: 0.5,
        },
    );
    println!("inventory: {} nodes, {} books", doc.live_count(), 8);

    // The paper's insertion.
    let restock = Insert::new(
        parse("inventory/book[.//quantity/low]"),
        cxu::tree::text::parse("restock").unwrap(),
    );
    let points = restock.apply(&mut doc);
    println!(
        "insert <restock/> at low-stock books: {} insertion point(s)",
        points.len()
    );
    let markers = Read::new(parse("inventory/book/restock")).eval(&doc);
    assert_eq!(markers.len(), points.len());

    // Which follow-up reads could a compiler have hoisted above the
    // insert? (Static question — over all documents.)
    println!("\n-- reorderability of follow-up reads (node semantics) --");
    for (src, what) in [
        ("inventory/book/restock", "the restock markers"),
        ("inventory//restock", "restock anywhere"),
        ("inventory/book/title", "book titles"),
        ("inventory/book//quantity", "quantities"),
        ("inventory//low", "low markers"),
    ] {
        let read = Read::new(parse(src));
        let conflict = detect::read_insert_conflict(&read, &restock, Semantics::Node).unwrap();
        println!(
            "  read {src:<28} ({what:<20}): {}",
            if conflict { "conflicts" } else { "independent" }
        );
    }

    // Tree semantics: even reads whose node set is stable conflict if a
    // selected subtree changes.
    let read_books = Read::new(parse("inventory/book"));
    assert!(!detect::read_insert_conflict(&read_books, &restock, Semantics::Node).unwrap());
    assert!(detect::read_insert_conflict(&read_books, &restock, Semantics::Tree).unwrap());
    println!(
        "\nread inventory/book: node-independent but TREE-conflicting\n\
         (the returned book subtrees gain restock children)."
    );

    // Dynamic check on the concrete document (Lemma 1).
    let fresh = inventory(&mut rng, &InventoryParams::default());
    let hit = witness::witnesses_insert_conflict(
        &Read::new(parse("inventory//restock")),
        &restock,
        &fresh,
        Semantics::Node,
    );
    println!(
        "\non a fresh inventory, this document {} a conflict (Lemma 1 check)",
        if hit { "witnesses" } else { "does not witness" }
    );

    // §6: schema information refines the answer. Books may not contain
    // <promo>, so inserting restock under book/promo can never fire.
    println!("\n-- schema-aware refinement (§6) --");
    let dtd = Dtd::new("inventory")
        .element("inventory", vec![ChildSpec::star("book")])
        .element(
            "book",
            vec![
                ChildSpec::one("title"),
                ChildSpec::one("author"),
                ChildSpec::optional("info"),
                ChildSpec::optional("quantity"),
                ChildSpec::optional("restock"),
            ],
        )
        .element("info", vec![ChildSpec::one("quantity")])
        .element("quantity", vec![ChildSpec::optional("low")]);

    let read_any = Read::new(parse("inventory//restock"));
    let bogus_insert = Update::Insert(Insert::new(
        parse("inventory/book/promo"),
        cxu::tree::text::parse("restock").unwrap(),
    ));
    let unconstrained =
        detect::read_update_conflict(&read_any, &bogus_insert, Semantics::Node).unwrap();
    println!(
        "over all trees        : {}",
        if unconstrained {
            "conflict"
        } else {
            "independent"
        }
    );
    let constrained = cxu::schema::find_witness_conforming(
        &read_any,
        &bogus_insert,
        Semantics::Node,
        &dtd,
        8,
        200_000,
    );
    println!(
        "over conforming trees : {}",
        match constrained {
            SchemaSearchOutcome::Conflict(_) => "conflict",
            SchemaSearchOutcome::NoConflictWithin(_) => "independent (schema forbids <promo>)",
            SchemaSearchOutcome::BudgetExceeded => "undecided within budget",
            SchemaSearchOutcome::DeadlineExceeded => "timed out",
        }
    );
}
