#!/usr/bin/env bash
# Regenerates the committed bench artifacts on fixed seeds. Offline,
# deterministic workloads (only the timings vary run to run); CI's
# bench-artifacts job runs this same script and uploads the output.
#
#   BENCH_AUTOMATA.json  intersection-emptiness microbench: legacy Nfa
#                        product vs the compiled bitset product.
#   BENCH_SCHED.json     end-to-end scheduler batches, two profiles
#                        (mixed / linear) at sizes 50..400, with the
#                        route mix and pair-latency columns.
#   BENCH_SERVE.json     cxu-serve under seeded load (4 shards, linear
#                        profile). Headline: closed-loop pipelined
#                        clients (2 connections x depth 64), validated
#                        verdicts. Attached "sweep": open-loop
#                        fixed-arrival-rate points across and past the
#                        saturation knee, with coordinated-omission-
#                        corrected latency next to the raw numbers.
#   BENCH_STORE.json     the document store under racing editors
#                        (6 connections, 3 shared documents, stale
#                        bases on purpose): merge/branch/reject rates
#                        and put latency, with the changes feed and
#                        winners validated after the run. Two runs —
#                        "in_memory" (no --data-dir) and
#                        "wal_fsync_always" (checksummed WAL, fsync on
#                        every commit) — so the durability tax on put
#                        latency is visible side by side.
#   BENCH_INDEX.json     streaming ingestion + structural index: XML
#                        parse and index-build MB/s at 1 MB and 8 MB,
#                        then document-grounded conflict checks through
#                        the index vs the recursive tree walk (every
#                        sampled verdict cross-checked; speedup_p50 is
#                        the headline, gated >= 10x at 1 MB).
#   BENCH_TXN.json       atomic multi-op transactions under racing
#                        mixes (6 connections, 3 shared documents,
#                        guards pinned stale on purpose): commit /
#                        conflict / retry rates and txn latency, with
#                        all-or-nothing visibility of every acked
#                        commit validated after the run.
#
# See EXPERIMENTS.md, "Compiled automata and the batch pre-filter",
# for how to read the numbers (and which are NP-search-noise-prone).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p cxu-cli" >&2
cargo build --release -p cxu-cli

echo "==> cxu-bench automata > BENCH_AUTOMATA.json" >&2
./target/release/cxu-bench automata > BENCH_AUTOMATA.json

echo "==> cxu-bench sched > BENCH_SCHED.json" >&2
./target/release/cxu-bench sched > BENCH_SCHED.json

echo "==> cxu-bench index > BENCH_INDEX.json" >&2
./target/release/cxu-bench index > BENCH_INDEX.json

echo "==> cxu serve + loadgen (pipelined headline + saturation sweep) > BENCH_SERVE.json" >&2
serve_log=$(mktemp)
./target/release/cxu serve --addr 127.0.0.1:0 --shards 4 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never announced its address" >&2; cat "$serve_log" >&2; exit 1; }
./target/release/cxu loadgen --addr "$addr" --connections 2 --pipeline 64 \
    --duration-ms 2000 --seed 42 --profile linear --validate \
    --sweep 40000,80000,120000,160000 --out BENCH_SERVE.json >&2
kill -TERM "$serve_pid"
wait "$serve_pid"
rm -f "$serve_log"

echo "==> cxu serve + loadgen --profile store > BENCH_STORE.json" >&2
serve_log=$(mktemp)
store_mem=$(mktemp)
store_wal=$(mktemp)
./target/release/cxu serve --addr 127.0.0.1:0 --workers 4 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never announced its address" >&2; cat "$serve_log" >&2; exit 1; }
./target/release/cxu loadgen --addr "$addr" --connections 6 --docs 3 \
    --duration-ms 2000 --seed 42 --profile store --validate --out "$store_mem" >&2
kill -TERM "$serve_pid"
wait "$serve_pid"
rm -f "$serve_log"

echo "==> same store workload against --data-dir --fsync always" >&2
serve_log=$(mktemp)
data_dir=$(mktemp -d)
./target/release/cxu serve --addr 127.0.0.1:0 --workers 4 \
    --data-dir "$data_dir" --fsync always > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "durable server never announced its address" >&2; cat "$serve_log" >&2; exit 1; }
./target/release/cxu loadgen --addr "$addr" --connections 6 --docs 3 \
    --duration-ms 2000 --seed 42 --profile store --validate --out "$store_wal" >&2
kill -TERM "$serve_pid"
wait "$serve_pid"
rm -rf "$data_dir"
rm -f "$serve_log"

printf '{"bench": "store", "in_memory": %s, "wal_fsync_always": %s}\n' \
    "$(cat "$store_mem")" "$(cat "$store_wal")" > BENCH_STORE.json
rm -f "$store_mem" "$store_wal"

echo "==> cxu serve + loadgen --profile txn > BENCH_TXN.json" >&2
serve_log=$(mktemp)
./target/release/cxu serve --addr 127.0.0.1:0 --shards 4 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "txn server never announced its address" >&2; cat "$serve_log" >&2; exit 1; }
./target/release/cxu loadgen --addr "$addr" --connections 6 --docs 3 \
    --duration-ms 2000 --seed 42 --profile txn --validate --out BENCH_TXN.json >&2
kill -TERM "$serve_pid"
wait "$serve_pid"
rm -f "$serve_log"

echo "done: BENCH_AUTOMATA.json BENCH_SCHED.json BENCH_INDEX.json BENCH_SERVE.json BENCH_STORE.json BENCH_TXN.json" >&2
