#!/usr/bin/env bash
# Regenerates the committed bench artifacts on fixed seeds. Offline,
# deterministic workloads (only the timings vary run to run); CI's
# bench-artifacts job runs this same script and uploads the output.
#
#   BENCH_AUTOMATA.json  intersection-emptiness microbench: legacy Nfa
#                        product vs the compiled bitset product.
#   BENCH_SCHED.json     end-to-end scheduler batches, two profiles
#                        (mixed / linear) at sizes 50..400, with the
#                        route mix and pair-latency columns.
#
# See EXPERIMENTS.md, "Compiled automata and the batch pre-filter",
# for how to read the numbers (and which are NP-search-noise-prone).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p cxu-cli" >&2
cargo build --release -p cxu-cli

echo "==> cxu-bench automata > BENCH_AUTOMATA.json" >&2
./target/release/cxu-bench automata > BENCH_AUTOMATA.json

echo "==> cxu-bench sched > BENCH_SCHED.json" >&2
./target/release/cxu-bench sched > BENCH_SCHED.json

echo "done: BENCH_AUTOMATA.json BENCH_SCHED.json" >&2
