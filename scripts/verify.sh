#!/usr/bin/env bash
# Tier-1 verification: everything here must pass offline, with no
# network access and no external crates (see DESIGN.md, "Dependency
# justification"). CI runs this same script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> failpoints stress suite (seed ${CXU_FAILPOINTS_SEED:-1})"
cargo test -q -p cxu --features failpoints --test failpoints_stress

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "    (rustfmt not installed; skipped)"
fi

echo "==> cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    (clippy not installed; skipped)"
fi

echo "OK"
