#!/usr/bin/env bash
# Tier-1 verification: everything here must pass offline, with no
# network access and no external crates (see DESIGN.md, "Dependency
# justification"). CI runs this same script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> failpoints stress suite (seed ${CXU_FAILPOINTS_SEED:-1})"
cargo test -q -p cxu --features failpoints --test failpoints_stress

echo "==> metrics smoke (fixed seed, JSON schema + route counters)"
out=$(./target/release/cxu schedule --gen-seed 42 --gen-len 40 \
    --format json --metrics json)
echo "$out" | grep -q '"metrics": {"counters": {' \
    || { echo "metrics JSON missing 'counters' object"; exit 1; }
echo "$out" | grep -q '"histograms"' \
    || { echo "metrics JSON missing 'histograms' object"; exit 1; }
echo "$out" | grep -q '"sched.route.ptime_linear_read": [1-9]' \
    || { echo "expected a nonzero PTIME route count"; exit 1; }
echo "$out" | grep -qE '"sched\.route\.(witness_search|conservative_budget|conservative_undecided)": [1-9]' \
    || { echo "expected a nonzero NP-side route count"; exit 1; }
echo "$out" | grep -q '"sched.cache.lookups": [1-9]' \
    || { echo "expected nonzero cache lookups"; exit 1; }
# Degenerate flags must be rejected.
if ./target/release/cxu schedule --gen-seed 1 --jobs 0 >/dev/null 2>&1; then
    echo "--jobs 0 was accepted"; exit 1
fi
if ./target/release/cxu schedule --gen-seed 1 --deadline-ms 0 >/dev/null 2>&1; then
    echo "--deadline-ms 0 was accepted"; exit 1
fi

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "    (rustfmt not installed; skipped)"
fi

echo "==> cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    (clippy not installed; skipped)"
fi

echo "OK"
