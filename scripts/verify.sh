#!/usr/bin/env bash
# Tier-1 verification: everything here must pass offline, with no
# network access and no external crates (see DESIGN.md, "Dependency
# justification"). CI runs this same script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> failpoints stress suite (seed ${CXU_FAILPOINTS_SEED:-1})"
cargo test -q -p cxu --features failpoints --test failpoints_stress

echo "==> serve validation suite (failpoints build: panic isolation)"
cargo test -q -p cxu --features failpoints --test serve_validation

echo "==> metrics smoke (fixed seed, JSON schema + route counters)"
out=$(./target/release/cxu schedule --gen-seed 42 --gen-len 40 \
    --format json --metrics json)
echo "$out" | grep -q '"metrics": {"counters": {' \
    || { echo "metrics JSON missing 'counters' object"; exit 1; }
echo "$out" | grep -q '"histograms"' \
    || { echo "metrics JSON missing 'histograms' object"; exit 1; }
echo "$out" | grep -q '"sched.route.ptime_linear_read": [1-9]' \
    || { echo "expected a nonzero PTIME route count"; exit 1; }
echo "$out" | grep -qE '"sched\.route\.(witness_search|conservative_budget|conservative_undecided)": [1-9]' \
    || { echo "expected a nonzero NP-side route count"; exit 1; }
echo "$out" | grep -q '"sched.cache.lookups": [1-9]' \
    || { echo "expected nonzero cache lookups"; exit 1; }
# Degenerate flags must be rejected.
if ./target/release/cxu schedule --gen-seed 1 --jobs 0 >/dev/null 2>&1; then
    echo "--jobs 0 was accepted"; exit 1
fi
if ./target/release/cxu schedule --gen-seed 1 --deadline-ms 0 >/dev/null 2>&1; then
    echo "--deadline-ms 0 was accepted"; exit 1
fi

echo "==> serve smoke (ephemeral port, seeded loadgen, validated verdicts)"
serve_log=$(mktemp)
serve_bench=$(mktemp)
./target/release/cxu serve --addr 127.0.0.1:0 --shards 4 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never announced its address"; cat "$serve_log"; exit 1; }
# --validate makes loadgen exit nonzero on any verdict disagreement.
./target/release/cxu loadgen --addr "$addr" --connections 4 --duration-ms 1000 \
    --profile linear --validate --out "$serve_bench" >/dev/null
grep -q '"disagreements": 0' "$serve_bench" \
    || { echo "loadgen reported verdict disagreements"; cat "$serve_bench"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "server exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
grep -q 'drained after' "$serve_log" \
    || { echo "server did not report a clean drain"; cat "$serve_log"; exit 1; }

echo "==> serve overload (queue depth 1: burst must bounce, server must drain)"
./target/release/cxu serve --addr 127.0.0.1:0 --workers 1 --queue-depth 1 \
    > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never announced its address"; cat "$serve_log"; exit 1; }
./target/release/cxu loadgen --addr "$addr" --connections 8 --duration-ms 800 \
    --delay-ms 20 --out "$serve_bench" >/dev/null
grep -qE '"overloaded": [1-9]' "$serve_bench" \
    || { echo "overload burst produced no 'overloaded' rejections"; cat "$serve_bench"; exit 1; }
grep -q '"failed": 0' "$serve_bench" \
    || { echo "overload burst produced hard failures"; cat "$serve_bench"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "overloaded server exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
grep -q 'drained after' "$serve_log" \
    || { echo "overloaded server did not report a clean drain"; cat "$serve_log"; exit 1; }
rm -f "$serve_log" "$serve_bench"

echo "==> pipelined-client smoke (2 conns x depth 32, validated verdicts)"
./target/release/cxu serve --addr 127.0.0.1:0 --shards 4 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never announced its address"; cat "$serve_log"; exit 1; }
./target/release/cxu loadgen --addr "$addr" --connections 2 --pipeline 32 \
    --duration-ms 1000 --seed 42 --profile linear --validate --out "$serve_bench" >/dev/null
grep -q '"pipeline": 32' "$serve_bench" \
    || { echo "pipelined bench missing its pipeline marker"; cat "$serve_bench"; exit 1; }
grep -q '"disagreements": 0' "$serve_bench" \
    || { echo "pipelined loadgen reported verdict disagreements"; cat "$serve_bench"; exit 1; }
grep -q '"failed": 0' "$serve_bench" \
    || { echo "pipelined loadgen reported hard failures"; cat "$serve_bench"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "pipelined server exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
grep -q 'drained after' "$serve_log" \
    || { echo "pipelined server did not report a clean drain"; cat "$serve_log"; exit 1; }
rm -f "$serve_log" "$serve_bench"

echo "==> two-servers metrics isolation + pipelined timeout accounting (socket tests)"
cargo test -q -p cxu --test serve_validation two_concurrent_servers_keep_metrics_isolated
cargo test -q -p cxu --test serve_validation pipelined

echo "==> store smoke (racing editors on shared docs, validated feed and winners)"
./target/release/cxu serve --addr 127.0.0.1:0 --workers 4 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never announced its address"; cat "$serve_log"; exit 1; }
# --validate replays the changes feed after the run: strict sequence
# monotonicity, one row per document, a mid-feed cursor replay, limit-1
# paging, and a doc_get winner cross-check per row.
./target/release/cxu loadgen --addr "$addr" --connections 6 --docs 3 \
    --duration-ms 1200 --seed 7 --profile store --validate --out "$serve_bench" >/dev/null
grep -q '"bench": "store"' "$serve_bench" \
    || { echo "store bench missing its marker"; cat "$serve_bench"; exit 1; }
grep -q '"disagreements": 0' "$serve_bench" \
    || { echo "store validation found feed/winner disagreements"; cat "$serve_bench"; exit 1; }
grep -qE '"puts": [1-9]' "$serve_bench" \
    || { echo "store bench recorded no puts"; cat "$serve_bench"; exit 1; }
# SIGTERM with puts still in flight: admitted work must drain, and the
# editors must see clean connection closes, not hangs.
./target/release/cxu loadgen --addr "$addr" --connections 6 --docs 3 \
    --duration-ms 3000 --seed 8 --profile store >/dev/null 2>&1 &
load_pid=$!
sleep 0.5
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "store server exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
grep -q 'drained after' "$serve_log" \
    || { echo "store server did not report a clean drain"; cat "$serve_log"; exit 1; }
wait "$load_pid" || true
rm -f "$serve_log" "$serve_bench"

echo "==> grounded smoke (doc_check via the structural index, validated verdicts)"
./target/release/cxu serve --addr 127.0.0.1:0 --shards 4 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never announced its address"; cat "$serve_log"; exit 1; }
# --validate replays every served doc_check verdict through the
# in-process Lemma 1 tree walk after the run.
./target/release/cxu loadgen --addr "$addr" --connections 4 --docs 4 \
    --duration-ms 1200 --seed 9 --profile grounded --validate --out "$serve_bench" >/dev/null
grep -q '"bench": "grounded"' "$serve_bench" \
    || { echo "grounded bench missing its marker"; cat "$serve_bench"; exit 1; }
grep -q '"disagreements": 0' "$serve_bench" \
    || { echo "grounded validation found index-vs-walk disagreements"; cat "$serve_bench"; exit 1; }
grep -q '"failed": 0' "$serve_bench" \
    || { echo "grounded loadgen reported hard failures"; cat "$serve_bench"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "grounded server exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
grep -q 'drained after' "$serve_log" \
    || { echo "grounded server did not report a clean drain"; cat "$serve_log"; exit 1; }
rm -f "$serve_log" "$serve_bench"
# The same engine in one process: index and tree walk must agree.
idx_verdict=$(./target/release/cxu check --read 'x//C' --delete 'x/A' \
    --doc 'x(B(C E) A(B C))' --index)
walk_verdict=$(./target/release/cxu check --read 'x//C' --delete 'x/A' \
    --doc 'x(B(C E) A(B C))')
echo "$idx_verdict" | grep -q 'CONFLICT' \
    || { echo "grounded CLI (index) missed the conflict: $idx_verdict"; exit 1; }
echo "$walk_verdict" | grep -q 'CONFLICT' \
    || { echo "grounded CLI (walk) missed the conflict: $walk_verdict"; exit 1; }

echo "==> durable serve smoke (--data-dir: ack, kill -9, restart, re-read)"
data_dir=$(mktemp -d)
./target/release/cxu serve --addr 127.0.0.1:0 --workers 2 \
    --data-dir "$data_dir" --fsync always > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "durable server never announced its address"; cat "$serve_log"; exit 1; }
# Drive the socket with bash's /dev/tcp: one put, read the ack.
exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}"
printf '{"route": "doc_put", "doc": "smoke", "content": "a(b c)", "semantics": "value"}\n' >&3
IFS= read -r put <&3
exec 3<&- 3>&-
echo "$put" | grep -q '"result": "created"' \
    || { echo "durable put was not acked: $put"; exit 1; }
rev=$(echo "$put" | grep -oE '"rev": "[^"]+"' | head -1 | cut -d'"' -f4)
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
./target/release/cxu serve --addr 127.0.0.1:0 --workers 2 \
    --data-dir "$data_dir" --fsync always > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "restarted server never announced its address"; cat "$serve_log"; exit 1; }
grep -q 'cxu-serve recovered' "$serve_log" \
    || { echo "restarted server printed no recovery report"; cat "$serve_log"; exit 1; }
exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}"
printf '{"route": "doc_get", "doc": "smoke", "rev": "%s"}\n' "$rev" >&3
IFS= read -r got <&3
exec 3<&- 3>&-
echo "$got" | grep -q '"found": true' \
    || { echo "acked revision $rev lost across kill -9: $got"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "durable server exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
rm -rf "$data_dir"
rm -f "$serve_log" "$serve_bench"

echo "==> txn smoke (racing transactions, all-or-nothing validation)"
./target/release/cxu serve --addr 127.0.0.1:0 --shards 4 > "$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "txn server never announced its address"; cat "$serve_log"; exit 1; }
# --validate probes every acked transaction's revision set after the
# run: all members visible or none (a torn set is a disagreement),
# plus the changes-feed and winner cross-checks.
./target/release/cxu loadgen --addr "$addr" --connections 4 --docs 3 \
    --duration-ms 1200 --seed 7 --profile txn --validate --out "$serve_bench" >/dev/null
grep -q '"bench": "txn"' "$serve_bench" \
    || { echo "txn bench missing its marker"; cat "$serve_bench"; exit 1; }
grep -q '"disagreements": 0' "$serve_bench" \
    || { echo "txn validation found torn or lost transactions"; cat "$serve_bench"; exit 1; }
grep -qE '"applied": [1-9]' "$serve_bench" \
    || { echo "txn bench committed no transactions"; cat "$serve_bench"; exit 1; }
grep -q '"failed": 0' "$serve_bench" \
    || { echo "txn loadgen reported hard failures"; cat "$serve_bench"; exit 1; }
# The one-shot CLI against the same server: create a document over
# the socket, then commit a guarded two-op program atomically.
exec 3<>"/dev/tcp/${addr%:*}/${addr#*:}"
printf '{"route": "doc_put", "doc": "txn-smoke", "content": "a(b c)"}\n' >&3
IFS= read -r put <&3
exec 3<&- 3>&-
rev=$(echo "$put" | grep -oE '"rev": "[^"]+"' | head -1 | cut -d'"' -f4)
[ -n "$rev" ] || { echo "txn smoke setup put failed: $put"; exit 1; }
txn_out=$(printf '{"guards": [{"doc": "txn-smoke", "rev": "%s"}], "ops": [{"doc": "txn-smoke", "op": {"kind": "insert", "pattern": "a/b", "subtree": "x"}}, {"doc": "txn-smoke", "op": {"kind": "insert", "pattern": "a/c", "subtree": "y"}}]}\n' "$rev" \
    | ./target/release/cxu txn --file - --addr "$addr" 2>&1) \
    || { echo "cxu txn failed: $txn_out"; exit 1; }
echo "$txn_out" | grep -qi 'applied' \
    || { echo "cxu txn did not apply: $txn_out"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "txn server exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
grep -q 'drained after' "$serve_log" \
    || { echo "txn server did not report a clean drain"; cat "$serve_log"; exit 1; }
rm -f "$serve_log" "$serve_bench"

echo "==> crash-injection smoke (6 kill -9 cycles, fixed seed, txn editors)"
crash_dir=$(mktemp -d)
crash_out=$(mktemp)
./target/release/cxu crashtest --data-dir "$crash_dir" --cycles 6 --seed 42 \
    --txn-editors 2 --out "$crash_out" \
    || { echo "crash smoke reported durability violations"; cat "$crash_out"; exit 1; }
grep -q '"ok": true' "$crash_out" \
    || { echo "crash smoke report not ok"; cat "$crash_out"; exit 1; }
grep -q '"lost": 0' "$crash_out" \
    || { echo "crash smoke lost acked writes"; cat "$crash_out"; exit 1; }
grep -q '"phantoms": 0' "$crash_out" \
    || { echo "crash smoke surfaced phantom revisions"; cat "$crash_out"; exit 1; }
grep -q '"txn_partial": 0' "$crash_out" \
    || { echo "crash smoke recovered a torn transaction"; cat "$crash_out"; exit 1; }
rm -rf "$crash_dir"
rm -f "$crash_out"

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "    (rustfmt not installed; skipped)"
fi

echo "==> cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "    (clippy not installed; skipped)"
fi

echo "OK"
