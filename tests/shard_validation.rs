//! Validation of the serving core's shard routing and work stealing:
//! the route hash must be a pure, order-independent function of the
//! operations' canonical shapes (so warm caches survive restarts and
//! argument order), and a verdict computed by a *stealing* worker must
//! land exactly once, in the home shard's memo cache.

use cxu::gen::parse::parse_program;
use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, ProgramParams};
use cxu::gen::rng::SplitMix64;
use cxu::gen::wire;
use cxu::prelude::Semantics;
use cxu::sched::{
    op_route_hash, ops_of_program, pair_route_hash, Deadline, Detector, Op, PairLookup,
    SchedConfig, Scheduler, Verdict,
};
use cxu::serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A seeded operation pool, built fresh on every call so two calls with
/// the same seed model two independent processes (restart semantics).
fn pool(seed: u64, len: usize) -> (Vec<Op>, Vec<String>) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = 0.2;
    let params = ProgramParams {
        len,
        update_rate: 0.5,
        delete_rate: 0.4,
        pattern,
    };
    let program = random_program(&mut rng, &params);
    let ops = ops_of_program(&program);
    let op_json = program
        .stmts
        .iter()
        .map(|s| wire::stmt_to_json(s).to_string())
        .collect();
    (ops, op_json)
}

fn one_op(src: &str) -> Op {
    let program = parse_program(src).expect("parse op");
    ops_of_program(&program).remove(0)
}

/// The pair hash is symmetric in its arguments and stable across
/// independently constructed (interner-free) copies of the same
/// operations — the property that makes routing deterministic across
/// connections, processes, and restarts.
#[test]
fn pair_route_hash_is_order_independent_and_restart_stable() {
    let (ops, _) = pool(11, 24);
    let mut hashes = Vec::new();
    for i in 0..ops.len() {
        for j in (i + 1)..ops.len() {
            let h = pair_route_hash(&ops[i], &ops[j]);
            assert_eq!(
                h,
                pair_route_hash(&ops[j], &ops[i]),
                "pair hash must not depend on argument order ({i}, {j})"
            );
            hashes.push(h);
        }
    }
    // Same seed, fresh pool: a restarted process routes identically.
    let (again, _) = pool(11, 24);
    let mut k = 0;
    for i in 0..again.len() {
        for j in (i + 1)..again.len() {
            assert_eq!(
                hashes[k],
                pair_route_hash(&again[i], &again[j]),
                "pair hash changed across rebuild ({i}, {j})"
            );
            k += 1;
        }
    }
    // Sanity: the pool is not hashing everything to one shard.
    let mut buckets = [0usize; 4];
    for h in &hashes {
        buckets[(h % 4) as usize] += 1;
    }
    assert!(
        buckets.iter().all(|&b| b > 0),
        "24-op pool left a shard empty: {buckets:?}"
    );
}

/// The op hash sees the *canonical* shape: unordered siblings in an
/// insert payload hash identically, and a pinned literal guards the
/// algorithm against accidental change (a silent change would cold-start
/// every warm cache in a rolling restart).
#[test]
fn op_route_hash_canonicalizes_shapes_and_matches_pinned_value() {
    let a = one_op("insert $x/B, C(D E)");
    let b = one_op("insert $x/B, C(E D)");
    assert_eq!(
        op_route_hash(&a),
        op_route_hash(&b),
        "sibling permutation of the payload must not change the route"
    );

    let read = one_op("y = read $x//A");
    let distinct = one_op("y = read $x//B");
    assert_ne!(op_route_hash(&read), op_route_hash(&distinct));
    assert_eq!(
        op_route_hash(&read),
        PINNED_READ_HASH,
        "op_route_hash(read $x//A) drifted — this cold-starts every \
         warm shard cache across a rolling restart; if the change is \
         intentional, update the pin"
    );
}

const PINNED_READ_HASH: u64 = 12538739237495956059;

/// Work-stealing soundness at the scheduler layer, exactly as the
/// server drives it: the home shard's `lookup_pair` produces a detached
/// task, a *different* thread runs it lock-free, and the verdict commits
/// back to the home scheduler — after which the home cache serves it,
/// and a second (conflicting) commit for the same key is ignored
/// (first-writer-wins), so the cache can never hold two verdicts for
/// one pair.
#[test]
fn stolen_verdict_lands_in_home_cache_exactly_once() {
    let cfg = SchedConfig {
        semantics: Semantics::Value,
        ..SchedConfig::default()
    };
    let mut home = Scheduler::new(cfg);
    let a = one_op("y = read $x//C");
    let b = one_op("insert $x/B, C");

    let task = match home.lookup_pair(&a, &b) {
        PairLookup::Miss(task) => task,
        PairLookup::Ready(d) => panic!("fresh pair must miss, got {d:?}"),
    };
    let key = task.key();

    // The "thief": runs the task with no scheduler lock held.
    let verdict = std::thread::spawn(move || task.run(&Deadline::never()))
        .join()
        .expect("thief thread");

    let committed = home.commit_pair(key, verdict);
    assert_eq!(committed.conflict, verdict.conflict);

    // The home cache now owns the verdict.
    match home.lookup_pair(&a, &b) {
        PairLookup::Ready(d) => {
            assert!(d.cached, "post-commit lookup must hit the memo cache");
            assert_eq!(d.verdict.conflict, verdict.conflict);
        }
        PairLookup::Miss(_) => panic!("committed pair must not miss"),
    }

    // A racing second commit with the *opposite* answer is discarded:
    // first writer wins, so duplicated steals cannot plant a
    // conflicting verdict.
    let forged = Verdict {
        conflict: !verdict.conflict,
        detector: Detector::WitnessSearch,
    };
    let kept = home.commit_pair(key, forged);
    assert_eq!(
        kept.conflict, verdict.conflict,
        "second commit must return the first verdict, not overwrite it"
    );
    match home.lookup_pair(&a, &b) {
        PairLookup::Ready(d) => assert_eq!(d.verdict.conflict, verdict.conflict),
        PairLookup::Miss(_) => panic!("cache entry vanished"),
    }

    // An independent scheduler agrees — stealing changed *where* the
    // work ran, never the answer.
    let mut fresh = Scheduler::new(SchedConfig {
        semantics: Semantics::Value,
        ..SchedConfig::default()
    });
    let d = fresh.check_pair(&a, &b, &Deadline::never());
    assert_eq!(d.verdict.conflict, verdict.conflict);
}

/// Deadline/panic degradations must never be memoized — not by a local
/// commit, and not by a stolen one.
#[test]
fn conservative_verdicts_are_not_memoized_by_steal_commits() {
    let mut home = Scheduler::new(SchedConfig {
        semantics: Semantics::Value,
        ..SchedConfig::default()
    });
    let a = one_op("y = read $x//C");
    let b = one_op("insert $x/B, C");
    let task = match home.lookup_pair(&a, &b) {
        PairLookup::Miss(task) => task,
        PairLookup::Ready(_) => panic!("fresh pair must miss"),
    };
    let degraded = Verdict {
        conflict: true,
        detector: Detector::ConservativeDeadline,
    };
    let kept = home.commit_pair(task.key(), degraded);
    assert!(kept.conflict);
    // The pair stays a miss: the next request recomputes instead of
    // being stuck with an assumed conflict forever.
    assert!(
        matches!(home.lookup_pair(&a, &b), PairLookup::Miss(_)),
        "a deadline degradation must not poison the memo cache"
    );
}

/// End to end: the same request pool against two *separate* server
/// instances (same shard count) produces identical per-shard routing
/// counters — the property that makes a restarted server re-warm the
/// same caches with the same traffic.
#[test]
fn server_restart_routes_the_same_requests_to_the_same_shards() {
    const SHARDS: usize = 4;

    fn run_once() -> (Vec<u64>, u64) {
        let server = Server::bind(
            ServeConfig {
                workers: SHARDS,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind");
        let addr = server.local_addr().unwrap();
        let join = std::thread::spawn(move || server.run().expect("run"));

        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut roundtrip = |line: &str| -> cxu::gen::json::Json {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut resp = String::new();
            assert!(reader.read_line(&mut resp).unwrap() > 0, "closed early");
            cxu::gen::json::Json::parse(resp.trim_end()).expect("json response")
        };

        let (_, op_json) = pool(13, 10);
        let mut sent = 0u64;
        for i in 0..op_json.len() {
            for j in (i + 1)..op_json.len() {
                let req = format!(
                    r#"{{"route": "check", "deadline_ms": 60000, "a": {}, "b": {}}}"#,
                    op_json[i], op_json[j]
                );
                let v = roundtrip(&req);
                assert_eq!(
                    v.get("ok").and_then(cxu::gen::json::Json::as_bool),
                    Some(true),
                    "{v:?}"
                );
                sent += 1;
            }
        }

        let v = roundtrip(r#"{"route": "metrics"}"#);
        let counters = v
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .expect("counters");
        let routed: Vec<u64> = (0..SHARDS)
            .map(|i| {
                counters
                    .get(&format!("serve.shard.{i}.routed"))
                    .and_then(cxu::gen::json::Json::as_u64)
                    .unwrap_or(0)
            })
            .collect();
        let _ = roundtrip(r#"{"route": "shutdown"}"#);
        drop(writer);
        drop(reader);
        join.join().unwrap();
        (routed, sent)
    }

    let (first, sent) = run_once();
    let (second, sent2) = run_once();
    assert_eq!(sent, sent2);
    assert_eq!(
        first.iter().sum::<u64>(),
        sent,
        "every check must be routed to exactly one home shard: {first:?}"
    );
    assert_eq!(
        first, second,
        "a restarted server must route the same pool to the same shards"
    );
}
