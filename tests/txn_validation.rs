//! Headline validation for `cxu-txn`: atomic multi-op transactions
//! with commutativity-aware optimistic concurrency control.
//!
//! Two suites:
//!
//! 1. **Serial equivalence** — 1000 seeded random transaction mixes.
//!    Each mix builds a few documents, a handful of transactions (1–4
//!    update writes over 1–2 documents, every written document guarded
//!    at its *initial* winner), and applies them in a seeded random
//!    order through [`Store::apply_txn`]. Stale guards either prove
//!    exact commutation and chain, or lose retryably — nothing is ever
//!    half-applied. The oracle then searches for a *serial witness*:
//!    some permutation of the committed transactions whose pure
//!    sequential fold ([`cxu::txn::serial`]) reproduces the observed
//!    final winners up to isomorphism. Observational serial
//!    equivalence is the paper's correctness bar for admitting
//!    concurrent updates: the detectors may only interleave what some
//!    serial order could also have produced.
//!
//! 2. **Socket suite** — the `txn` routes end to end over real
//!    sockets: atomic multi-document visibility against the changes
//!    feed, deterministic conflict rejection for a provably
//!    non-commuting stale guard, the `txn_begin`/`txn_submit`/
//!    `txn_commit` accumulator, and the drain guarantee for an
//!    in-flight transaction during graceful shutdown.

use cxu::gen::json::Json;
use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, ProgramParams, Stmt};
use cxu::gen::rng::{Rng, SplitMix64};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::prelude::{Tree, Update};
use cxu::sched::{Deadline, Op, SchedConfig, Scheduler};
use cxu::serve::{ServeConfig, ServeSummary, Server, ServerHandle};
use cxu::store::{PutPayload, RevId, Store, StoreConfig};
use cxu::txn::serial::{serial_witness, MAX_ORACLE_TXNS};
use cxu::txn::Txn;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Socket tests serialize: each binds its own port with a private
/// metrics registry, but the timing-sensitive drain test wants the
/// machine to itself.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Suite 1: seeded serial-equivalence mixes.
// ---------------------------------------------------------------------

const MIXES: u64 = 1000;

/// A seeded pool of update statements sharing one label alphabet.
fn update_pool(rng: &mut SplitMix64, len: usize) -> Vec<Update> {
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = 0.1;
    let params = ProgramParams {
        len,
        update_rate: 1.0,
        delete_rate: 0.3,
        pattern,
    };
    random_program(rng, &params)
        .stmts
        .into_iter()
        .filter_map(|s| match s {
            Stmt::Update(u) => Some(u),
            Stmt::Read(_) => None,
        })
        .collect()
}

/// One mix: build, race, and check. Returns a violation description,
/// or `None` when the observed outcome has a serial witness.
fn run_mix(seed: u64) -> Option<String> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let pool = update_pool(&mut rng, 14);
    if pool.is_empty() {
        return None; // degenerate pool; nothing to race
    }

    // Documents with their initial winners.
    let store = Store::new(StoreConfig::default());
    let mut sched = Scheduler::new(SchedConfig {
        jobs: 1,
        np_max_trees: 300,
        ..SchedConfig::default()
    });
    let deadline = Deadline::never();
    let mut check = |a: &Op, b: &Op| sched.check_pair(a, b, &deadline);
    let n_docs = 2 + rng.gen_range(0..3);
    let tparams = TreeParams {
        nodes: 10,
        alphabet: 6,
        ..TreeParams::default()
    };
    let mut initial: HashMap<String, Tree> = HashMap::new();
    let mut init_revs: Vec<RevId> = Vec::new();
    for d in 0..n_docs {
        let tree = random_tree(&mut rng, &tparams);
        let c = store
            .put(
                &format!("doc-{d}"),
                None,
                PutPayload::Content(tree.clone()),
                &mut check,
            )
            .expect("setup put");
        initial.insert(format!("doc-{d}"), tree);
        init_revs.push(c.rev);
    }

    // Transactions guarding every written document at its initial
    // winner — maximally stale once anything else has committed.
    let n_txns = 3 + rng.gen_range(0..3);
    assert!(n_txns <= MAX_ORACLE_TXNS);
    let mut txns: Vec<Txn> = Vec::new();
    for _ in 0..n_txns {
        let d1 = rng.gen_range(0..n_docs);
        let d2 = if n_docs > 1 && rng.gen_bool(0.4) {
            let mut d = rng.gen_range(0..n_docs - 1);
            if d >= d1 {
                d += 1;
            }
            Some(d)
        } else {
            None
        };
        let mut t = Txn::new().guard(format!("doc-{d1}"), init_revs[d1]);
        if let Some(d2) = d2 {
            t = t.guard(format!("doc-{d2}"), init_revs[d2]);
        }
        let n_ops = 1 + rng.gen_range(0..4);
        for k in 0..n_ops {
            let d = match d2 {
                Some(d2) if k % 2 == 1 => d2,
                _ => d1,
            };
            let op = pool[rng.gen_range(0..pool.len())].clone();
            t = t.write(format!("doc-{d}"), op);
        }
        txns.push(t);
    }

    // Race: apply in a seeded random order; conflicts and rejections
    // drop out (they are all-or-nothing by construction).
    let mut order: Vec<usize> = (0..n_txns).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    let mut committed: Vec<Txn> = Vec::new();
    for &i in &order {
        if txns[i].apply(&store, &mut check).is_ok() {
            committed.push(txns[i].clone());
        }
    }

    // Observe the final winners.
    let mut observed: HashMap<String, Tree> = HashMap::new();
    for d in 0..n_docs {
        let g = store
            .get(&format!("doc-{d}"), None, false)
            .expect("winner read");
        match g.content {
            Some(tree) => {
                observed.insert(format!("doc-{d}"), tree);
            }
            None => return Some(format!("seed {seed}: doc-{d} winner is a tombstone")),
        }
    }

    if serial_witness(&initial, &committed, &observed).is_none() {
        return Some(format!(
            "seed {seed}: no serial order of the {} committed txn(s) \
             reproduces the observed winners",
            committed.len()
        ));
    }
    None
}

/// The headline suite: 1000 seeded mixes, zero serializability
/// violations tolerated.
#[test]
fn seeded_txn_mixes_are_observationally_serial() {
    let mut committed_total = 0usize;
    let mut violations: Vec<String> = Vec::new();
    for mix in 0..MIXES {
        let seed = 0xC0FF_EE00 ^ mix.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if let Some(v) = run_mix(seed) {
            violations.push(v);
        } else {
            committed_total += 1;
        }
        if violations.len() >= 5 {
            break; // enough to diagnose; don't spam
        }
    }
    assert!(
        violations.is_empty(),
        "serial-equivalence violations in {}/{} mixes:\n  {}",
        violations.len(),
        MIXES,
        violations.join("\n  ")
    );
    assert!(committed_total as u64 == MIXES);
}

// ---------------------------------------------------------------------
// Suite 2: the txn routes over real sockets.
// ---------------------------------------------------------------------

fn start(
    cfg: ServeConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ServeSummary>,
) {
    let server = Server::bind(cfg, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection mid-exchange");
        Json::parse(line.trim_end()).expect("response is JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn put_doc(c: &mut Client, doc: &str, content: &str) -> String {
    let v = c.roundtrip(&format!(
        r#"{{"route": "doc_put", "doc": "{doc}", "content": "{content}"}}"#
    ));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    v.get("rev").and_then(Json::as_str).unwrap().to_owned()
}

/// Atomic multi-document visibility: after a two-document transaction
/// commits, both documents' winners are the acked revisions, the
/// changes feed names exactly those winners, and the transaction's
/// sequence numbers are contiguous (nothing else interleaved inside
/// the commit).
#[test]
fn committed_txn_is_atomically_visible() {
    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(addr);
    let r1 = put_doc(&mut c, "inv", "inv(book toy)");
    let r2 = put_doc(&mut c, "log", "log(head)");

    let v = c.roundtrip(&format!(
        r#"{{"route": "txn", "guards": [{{"doc": "inv", "rev": "{r1}"}}, {{"doc": "log", "rev": "{r2}"}}], "ops": [{{"doc": "inv", "op": {{"kind": "insert", "pattern": "inv/book", "subtree": "sold"}}}}, {{"doc": "log", "op": {{"kind": "insert", "pattern": "log/head", "subtree": "entry"}}}}]}}"#
    ));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(v.get("result").and_then(Json::as_str), Some("applied"));
    let revs = v.get("revs").and_then(Json::as_arr).unwrap();
    assert_eq!(revs.len(), 2);
    let seq = v.get("seq").and_then(Json::as_u64).unwrap();

    // Both winners are exactly the acked revisions.
    let mut acked: HashMap<String, String> = HashMap::new();
    for row in revs {
        acked.insert(
            row.get("doc").and_then(Json::as_str).unwrap().to_owned(),
            row.get("rev").and_then(Json::as_str).unwrap().to_owned(),
        );
    }
    let mut feed_seqs: Vec<u64> = Vec::new();
    let changes = c.roundtrip(r#"{"route": "doc_changes"}"#);
    for e in changes.get("results").and_then(Json::as_arr).unwrap() {
        let doc = e.get("doc").and_then(Json::as_str).unwrap();
        let g = c.roundtrip(&format!(r#"{{"route": "doc_get", "doc": "{doc}"}}"#));
        assert_eq!(
            g.get("rev").and_then(Json::as_str),
            acked.get(doc).map(String::as_str),
            "winner of {doc} is not the acked txn revision"
        );
        assert_eq!(
            e.get("rev").and_then(Json::as_str),
            acked.get(doc).map(String::as_str),
            "changes feed row for {doc} does not name the acked revision"
        );
        feed_seqs.push(e.get("seq").and_then(Json::as_u64).unwrap());
    }
    // The two writes took the last two feed slots, ending at `seq`.
    feed_seqs.sort_unstable();
    assert_eq!(feed_seqs, vec![seq - 1, seq]);

    c.roundtrip(r#"{"route": "shutdown"}"#);
    join.join().unwrap();
}

/// Deterministic conflict rejection: a transaction guarded at a
/// revision whose superseding edits provably do NOT commute with the
/// transaction's ops loses retryably — and the same program with a
/// refreshed guard and a commuting op goes through.
#[test]
fn stale_noncommuting_guard_loses_retryably() {
    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(addr);
    let r0 = put_doc(&mut c, "d", "a(b(x) c)");

    // Someone else deletes a/b out from under the guard.
    let del = c.roundtrip(&format!(
        r#"{{"route": "txn", "guards": [{{"doc": "d", "rev": "{r0}"}}], "ops": [{{"doc": "d", "op": {{"kind": "delete", "pattern": "a/b"}}}}]}}"#
    ));
    assert_eq!(del.get("result").and_then(Json::as_str), Some("applied"));

    // Inserting under a/b cannot commute with deleting a/b: conflict,
    // retryable, nothing applied.
    let stale = c.roundtrip(&format!(
        r#"{{"route": "txn", "guards": [{{"doc": "d", "rev": "{r0}"}}], "ops": [{{"doc": "d", "op": {{"kind": "insert", "pattern": "a/b", "subtree": "y"}}}}]}}"#
    ));
    assert_eq!(stale.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(stale.get("result").and_then(Json::as_str), Some("conflict"));
    assert_eq!(stale.get("retryable").and_then(Json::as_bool), Some(true));
    assert_eq!(
        stale.get("reason").and_then(Json::as_str),
        Some("txn-conflict")
    );

    // The retry story: refresh the guard, switch to a commuting op.
    let g = c.roundtrip(r#"{"route": "doc_get", "doc": "d"}"#);
    let winner = g.get("rev").and_then(Json::as_str).unwrap();
    let retry = c.roundtrip(&format!(
        r#"{{"route": "txn", "guards": [{{"doc": "d", "rev": "{winner}"}}], "ops": [{{"doc": "d", "op": {{"kind": "insert", "pattern": "a/c", "subtree": "y"}}}}]}}"#
    ));
    assert_eq!(retry.get("result").and_then(Json::as_str), Some("applied"));

    c.roundtrip(r#"{"route": "shutdown"}"#);
    join.join().unwrap();
}

/// The per-connection accumulator builds the same commit the one-shot
/// route makes, and a consumed (failed) accumulator leaves the
/// connection clean for the next transaction.
#[test]
fn txn_accumulator_builds_and_commits() {
    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(addr);
    let r0 = put_doc(&mut c, "d", "a(b c)");

    let begin = c.roundtrip(r#"{"route": "txn_begin"}"#);
    assert_eq!(begin.get("status").and_then(Json::as_str), Some("open"));
    let sub = c.roundtrip(&format!(
        r#"{{"route": "txn_submit", "guards": [{{"doc": "d", "rev": "{r0}"}}], "ops": [{{"doc": "d", "op": {{"kind": "insert", "pattern": "a/b", "subtree": "x"}}}}]}}"#
    ));
    assert_eq!(sub.get("ops").and_then(Json::as_u64), Some(1));
    let sub2 = c.roundtrip(
        r#"{"route": "txn_submit", "ops": [{"doc": "d", "op": {"kind": "insert", "pattern": "a/c", "subtree": "y"}}]}"#,
    );
    assert_eq!(sub2.get("ops").and_then(Json::as_u64), Some(2));
    let commit = c.roundtrip(r#"{"route": "txn_commit"}"#);
    assert_eq!(
        commit.get("result").and_then(Json::as_str),
        Some("applied"),
        "{commit}"
    );
    assert_eq!(
        commit.get("revs").and_then(Json::as_arr).map(<[Json]>::len),
        Some(2)
    );

    // A commit with no open transaction is a clean request error.
    let orphan = c.roundtrip(r#"{"route": "txn_commit"}"#);
    assert_eq!(orphan.get("ok").and_then(Json::as_bool), Some(false));
    // And the connection still serves.
    let g = c.roundtrip(r#"{"route": "doc_get", "doc": "d"}"#);
    assert_eq!(g.get("found").and_then(Json::as_bool), Some(true));

    c.roundtrip(r#"{"route": "shutdown"}"#);
    join.join().unwrap();
}

/// The drain guarantee extends to transactions: a `txn` in flight when
/// graceful shutdown starts is still answered (and committed) before
/// the socket closes.
#[test]
fn inflight_txn_survives_graceful_shutdown() {
    let _g = lock();
    let (addr, handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(addr);
    let r0 = put_doc(&mut c, "d", "a(b c)");

    c.send(&format!(
        r#"{{"route": "txn", "delay_ms": 150, "guards": [{{"doc": "d", "rev": "{r0}"}}], "ops": [{{"doc": "d", "op": {{"kind": "insert", "pattern": "a/b", "subtree": "x"}}}}]}}"#
    ));
    std::thread::sleep(Duration::from_millis(40));
    handle.shutdown();
    let v = c.recv();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(v.get("result").and_then(Json::as_str), Some("applied"));

    let summary = join.join().unwrap();
    assert_eq!(
        summary.accepted,
        summary.completed + summary.rejected_overload + summary.failed
    );
}
