//! Soundness validation for the scheduler's batch pre-filter: every
//! pair the pre-filter discharges must be a pair the *full* detector
//! stack also proves non-conflicting, across seeded random workloads.
//!
//! The pre-filter's own in-engine `debug_assert!` cross-check covers
//! debug test runs pair-by-pair; this suite additionally checks the
//! release path, the batch-level accounting identity, and that the
//! filter is not vacuous on linear-heavy traffic.

use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, ProgramParams};
use cxu::gen::rng::SplitMix64;
use cxu::sched::{analyze_pair, ops_of_program, Detector, Op, SchedConfig, Scheduler};

fn linear_batch(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let params = ProgramParams {
        len,
        pattern: PatternParams {
            nodes: 4,
            alphabet: 6,
            branch_rate: 0.0,
            ..PatternParams::default()
        },
        ..ProgramParams::default()
    };
    ops_of_program(&random_program(&mut rng, &params))
}

fn mixed_batch(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let params = ProgramParams {
        len,
        pattern: PatternParams {
            nodes: 4,
            alphabet: 5,
            branch_rate: 0.3,
            ..PatternParams::default()
        },
        ..ProgramParams::default()
    };
    ops_of_program(&random_program(&mut rng, &params))
}

fn cfg() -> SchedConfig {
    SchedConfig {
        np_max_trees: 2_000,
        ..SchedConfig::default()
    }
}

/// Every prefilter-skipped edge, re-decided by the full detector stack
/// (`analyze_pair`, which never takes the pre-filter route), must come
/// back non-conflicting.
#[test]
fn prefiltered_pairs_agree_with_full_detectors() {
    let mut skipped_edges = 0usize;
    for seed in 0..12u64 {
        let ops = if seed % 3 == 2 {
            mixed_batch(0x5EED ^ seed, 16)
        } else {
            linear_batch(0x5EED ^ seed, 16)
        };
        let out = Scheduler::new(cfg()).run(&ops);
        for e in out.graph.edges() {
            if e.verdict.detector != Detector::PrefilterNoConflict {
                continue;
            }
            skipped_edges += 1;
            assert!(!e.verdict.conflict, "prefilter verdicts are non-conflicts");
            let full = analyze_pair(&ops[e.a], &ops[e.b], &cfg());
            assert!(
                !full.conflict,
                "seed {seed}: prefilter skipped ({}, {}) but the full \
                 detector ({:?}) finds a conflict",
                e.a, e.b, full.detector
            );
        }
    }
    assert!(
        skipped_edges > 0,
        "the pre-filter should fire on linear-heavy seeded workloads"
    );
}

/// On a fresh scheduler, pre-filter skips and analyzed pairs exactly
/// partition the distinct non-trivial pair shapes: nothing is counted
/// twice and nothing escapes both.
#[test]
fn prefilter_accounting_partitions_fresh_pairs() {
    for seed in 20..28u64 {
        let ops = linear_batch(seed, 20);
        let out = Scheduler::new(cfg()).run(&ops);
        let st = &out.stats;
        assert_eq!(
            st.prefilter_skips + st.pairs_analyzed,
            st.pairs_total - st.trivial - st.cache_hits,
            "seed {seed}: distinct fresh pairs split between filter and detectors"
        );
        // Edges carry the route: prefiltered edges never conflict, and
        // their count (first occurrences only) matches the stat.
        let prefiltered_first: usize = out
            .graph
            .edges()
            .iter()
            .filter(|e| e.verdict.detector == Detector::PrefilterNoConflict && !e.cached)
            .count();
        assert_eq!(prefiltered_first, st.prefilter_skips, "seed {seed}");
    }
}

/// Pre-filter verdicts are memoized: the same batch re-run on the same
/// scheduler is served entirely from the cache, with no second skip.
#[test]
fn prefilter_verdicts_are_memoized() {
    let ops = linear_batch(0xF1F0, 20);
    let mut s = Scheduler::new(cfg());
    let first = s.run(&ops);
    assert!(first.stats.prefilter_skips > 0, "filter fired on pass one");
    let second = s.run(&ops);
    assert_eq!(second.stats.prefilter_skips, 0);
    assert_eq!(second.stats.pairs_analyzed, 0);
    // Identical verdicts either way.
    for (e1, e2) in first.graph.edges().iter().zip(second.graph.edges()) {
        assert_eq!(e1.verdict, e2.verdict);
    }
}
