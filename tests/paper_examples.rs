//! Every concrete example, figure, and named claim of the paper,
//! reproduced end to end against the public API.

use cxu::core::{brute, reduction, witness_min};
use cxu::pattern::{containment, embed, eval, xpath};
use cxu::prelude::*;
use cxu::tree::{iso, text};
use cxu::{detect, witness};

fn pat(s: &str) -> Pattern {
    xpath::parse(s).unwrap()
}

fn doc(s: &str) -> Tree {
    text::parse(s).unwrap()
}

// ---------------------------------------------------------------- Figure 1

/// Figure 1 + §1: the restock insertion on the inventory tree.
#[test]
fn figure1_restock_insertion() {
    // Two books, one with low quantity (structural stand-in for `< 10`).
    let mut t = doc("inventory(book(title info(quantity(low))) book(title info(quantity)))");
    let ins = Insert::new(pat("inventory/book[.//quantity/low]"), doc("restock"));
    let points = ins.apply(&mut t);
    assert_eq!(points.len(), 1, "only the low-stock book is restocked");
    let restocks = eval::eval(&pat("inventory/book/restock"), &t);
    assert_eq!(restocks.len(), 1);
}

// ---------------------------------------------------------------- §1 fragments

/// §1 imperative fragment: read//C vs insert B,<C/> conflict; read//D safe.
#[test]
fn section1_imperative_fragment() {
    let ins = Insert::new(pat("x/B"), doc("C"));
    let read_c = Read::new(pat("x//C"));
    let read_d = Read::new(pat("x//D"));
    assert!(detect::read_insert_conflict(&read_c, &ins, Semantics::Node).unwrap());
    assert!(!detect::read_insert_conflict(&read_d, &ins, Semantics::Node).unwrap());
}

/// §1 functional fragment: `read $x/*/A` is untouched by `insert $x/B, <C/>`
/// — the compiler may replace the re-read with the old value.
#[test]
fn section1_functional_fragment() {
    let ins = Insert::new(pat("x/B"), doc("C"));
    let read = Read::new(pat("x/*/A"));
    assert!(!detect::read_insert_conflict(&read, &ins, Semantics::Node).unwrap());
    // Concrete check on a document with a B child.
    let t = doc("x(B(A) y(A))");
    assert!(!witness::witnesses_insert_conflict(
        &read,
        &ins,
        &t,
        Semantics::Node
    ));
}

// ---------------------------------------------------------------- Figure 2

/// Figure 2: the pattern a[.//c]/b[d][*//f] and its embedding.
#[test]
fn figure2_pattern_and_embedding() {
    let p = pat("a[.//c]/b[d][*//f]");
    assert_eq!(p.len(), 6);
    assert!(!p.is_linear());
    // A tree shaped like the figure: the b child is selected.
    let t = doc("a(x(c) b(d g(e(f))))");
    let hits = eval::eval(&p, &t);
    assert_eq!(hits.len(), 1);
    assert_eq!(t.label(hits[0]).as_str(), "b");
    // The naive enumerator agrees and produces a checkable embedding.
    let es = embed::enumerate(&p, &t, usize::MAX);
    assert!(!es.is_empty());
    for e in &es {
        assert!(embed::is_valid(&p, &t, e));
    }
    // The tree t of Figure 2 is a model for p: drop the branches that
    // aren't pattern-shaped and check the pattern's own model embeds.
    let m = p.model_fresh(&[]);
    assert!(eval::matches(&p, &m));
}

// ---------------------------------------------------------------- Figure 3

/// Figure 3: the delete that conflicts under reference-based semantics
/// but not under value-based semantics.
#[test]
fn figure3_reference_vs_value_semantics() {
    let r = Read::new(pat("root//gamma"));
    let d = Delete::new(pat("root/delta")).unwrap();
    let w = doc("root(delta(gamma) other(gamma))");
    assert!(witness::witnesses_delete_conflict(
        &r,
        &d,
        &w,
        Semantics::Node
    ));
    assert!(witness::witnesses_delete_conflict(
        &r,
        &d,
        &w,
        Semantics::Tree
    ));
    assert!(!witness::witnesses_delete_conflict(
        &r,
        &d,
        &w,
        Semantics::Value
    ));
    // The two gamma subtrees are isomorphic — the reason value semantics
    // is silent.
    let gammas = eval::eval(&pat("root//gamma"), &w);
    assert_eq!(gammas.len(), 2);
    assert!(iso::subtrees_isomorphic(&w, gammas[0], &w, gammas[1]));
}

// ---------------------------------------------------------------- Definition 3 example

/// §3's node-vs-tree example: R returns the root, I inserts under a B
/// child — no node conflict, but a tree conflict.
#[test]
fn definition3_node_vs_tree_example() {
    let r = Read::new(pat("root"));
    let i = Insert::new(pat("root/B"), doc("X"));
    // Static detection.
    assert!(!detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap());
    assert!(detect::read_insert_conflict(&r, &i, Semantics::Tree).unwrap());
    // Witness-level agreement.
    let w = doc("root(B)");
    assert!(!witness::witnesses_insert_conflict(
        &r,
        &i,
        &w,
        Semantics::Node
    ));
    assert!(witness::witnesses_insert_conflict(
        &r,
        &i,
        &w,
        Semantics::Tree
    ));
}

// ---------------------------------------------------------------- Lemma 2

/// Lemma 2: for linear patterns, tree conflicts and value conflicts
/// coincide — checked against brute-force search on a battery.
#[test]
fn lemma2_tree_equals_value_for_linear() {
    let cases: Vec<(&str, Update)> = vec![
        ("a/b", Update::Insert(Insert::new(pat("a/b/c"), doc("x")))),
        ("a//m", Update::Insert(Insert::new(pat("a/spot"), doc("m")))),
        ("a/b", Update::Delete(Delete::new(pat("a/b/c")).unwrap())),
        (
            "root//gamma",
            Update::Delete(Delete::new(pat("root/delta")).unwrap()),
        ),
        ("a/b/c", Update::Insert(Insert::new(pat("a/b"), doc("c")))),
        ("x//D", Update::Insert(Insert::new(pat("x/B"), doc("C")))),
    ];
    let budget = brute::Budget {
        max_nodes: 4,
        max_trees: 2_000_000,
    };
    for (r_src, u) in cases {
        let r = Read::new(pat(r_src));
        let tree_c = brute::find_witness(&r, &u, Semantics::Tree, budget)
            .decided()
            .unwrap();
        let value_c = brute::find_witness(&r, &u, Semantics::Value, budget)
            .decided()
            .unwrap();
        assert_eq!(tree_c, value_c, "Lemma 2 violated for {r_src} vs {u:?}");
        // And the PTIME detector agrees with both.
        assert_eq!(
            detect::read_update_conflict(&r, &u, Semantics::Tree).unwrap(),
            tree_c,
            "detector vs brute (tree) for {r_src}"
        );
    }
}

// ---------------------------------------------------------------- Lemma 3 structure

/// Figure 5 structure: a read-delete conflict through a descendant edge,
/// with the deletion point strictly between two read nodes.
#[test]
fn figure5_read_delete_structure() {
    // R = a/b//v, D = a/b/u: deletion point u sits on the b→v gap.
    let r = Read::new(pat("a/b//v"));
    let d = Delete::new(pat("a/b/u")).unwrap();
    assert!(detect::read_delete_conflict(&r, &d, Semantics::Node).unwrap());
    // Concrete witness straight from the figure.
    let w = doc("a(b(u(v)))");
    assert!(witness::witnesses_delete_conflict(
        &r,
        &d,
        &w,
        Semantics::Node
    ));
}

// ---------------------------------------------------------------- Figure 4 structure

/// Figure 4a structure: a read-insert node conflict whose read suffix
/// embeds inside the inserted tree X.
#[test]
fn figure4_cut_edge_structure() {
    // R = a//w/f, I = (a/b, X = w(f)): cut at the //-edge, suffix w/f
    // embeds at X's root.
    let r = Read::new(pat("a//w/f"));
    let i = Insert::new(pat("a/b"), doc("w(f)"));
    assert!(detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap());
    let w = doc("a(b)");
    assert!(witness::witnesses_insert_conflict(
        &r,
        &i,
        &w,
        Semantics::Node
    ));
}

// ---------------------------------------------------------------- Lemmas 4 & 8

/// Lemmas 4/8: the update side may branch; conflicts agree with the
/// spine-reduced update.
#[test]
fn lemma4_and_8_spine_reduction() {
    let r = Read::new(pat("a/b//v"));
    // Branching delete vs its spine.
    let d_full = Delete::new(pat("a[z]/b[.//y]/u")).unwrap();
    let d_spine = Delete::new(pat("a/b/u")).unwrap();
    for sem in Semantics::ALL {
        assert_eq!(
            detect::read_delete_conflict(&r, &d_full, sem).unwrap(),
            detect::read_delete_conflict(&r, &d_spine, sem).unwrap(),
            "{sem:?}"
        );
    }
    // Branching insert vs its spine.
    let r2 = Read::new(pat("a//c"));
    let i_full = Insert::new(pat("a/b[q][.//w]"), doc("c"));
    let i_spine = Insert::new(pat("a/b"), doc("c"));
    for sem in Semantics::ALL {
        assert_eq!(
            detect::read_insert_conflict(&r2, &i_full, sem).unwrap(),
            detect::read_insert_conflict(&r2, &i_spine, sem).unwrap(),
            "{sem:?}"
        );
    }
}

// ---------------------------------------------------------------- Figure 6 / Lemmas 9-11

/// Figure 6: reparenting — a long unmarked chain collapses to k+1 fresh
/// nodes and the conflict survives (Lemmas 9 and 10).
#[test]
fn figure6_reparenting() {
    let r = Read::new(pat("a//v"));
    let u = Update::Delete(Delete::new(pat("a//b[q]")).unwrap());
    let mut chain = String::from("b(q v)");
    for i in 0..12 {
        chain = format!("pad{i}({chain})");
    }
    let w = doc(&format!("a({chain})"));
    let small = witness_min::minimize(&r, &u, &w, Semantics::Node).unwrap();
    assert!(witness::witnesses_update_conflict(
        &r,
        &u,
        &small,
        Semantics::Node
    ));
    assert!(small.live_count() < w.live_count());
    assert!(small.live_count() <= brute::lemma11_bound(&r, &u));
}

/// Lemma 11: brute-force witnesses for a battery of conflicts are always
/// within the |R|·|U|·(k+1) bound (they are in fact much smaller).
#[test]
fn lemma11_bound_holds_for_found_witnesses() {
    let cases: Vec<(&str, Update)> = vec![
        ("x//C", Update::Insert(Insert::new(pat("x/B"), doc("C")))),
        ("a//v", Update::Delete(Delete::new(pat("a/b")).unwrap())),
        (
            "a[b][c]",
            Update::Insert(Insert::new(pat("a[b]"), doc("c"))),
        ),
    ];
    for (r_src, u) in cases {
        let r = Read::new(pat(r_src));
        let out = brute::find_witness(&r, &u, Semantics::Node, brute::Budget::default());
        let brute::SearchOutcome::Conflict(w) = out else {
            panic!("{r_src}: expected conflict");
        };
        assert!(w.live_count() <= brute::lemma11_bound(&r, &u));
    }
}

// ---------------------------------------------------------------- Theorems 4 & 6

/// Theorem 4 on the paper's own format: conflict ⇔ p ⊄ p', via the
/// constructed Figure 7d witness.
#[test]
fn theorem4_insert_reduction() {
    let p = pat("a//b");
    let q = pat("a/b");
    assert!(!containment::contains(&p, &q));
    let (r, i) = reduction::insert_instance(&p, &q);
    let t_p = containment::find_counterexample(&p, &q, 4).unwrap();
    let w = reduction::insert_witness_from_counterexample(&p, &q, &t_p);
    assert!(witness::witnesses_insert_conflict(
        &r,
        &i,
        &w,
        Semantics::Node
    ));
    // R(W) = ∅ and R(I(W)) = {root}: exactly the proof's shape.
    assert!(r.eval(&w).is_empty());
    let (after, _) = i.apply_to_copy(&w);
    assert_eq!(r.eval(&after), vec![w.root()]);
}

/// Theorem 6, same drill for deletions, Figure 8c witness.
#[test]
fn theorem6_delete_reduction() {
    let p = pat("a//b");
    let q = pat("a/b");
    let (r, d) = reduction::delete_instance(&p, &q);
    let t_p = containment::find_counterexample(&p, &q, 4).unwrap();
    let w = reduction::delete_witness_from_counterexample(&p, &q, &t_p);
    assert!(witness::witnesses_delete_conflict(
        &r,
        &d,
        &w,
        Semantics::Node
    ));
    // R(W) = {root}, R(D(W)) = ∅.
    assert_eq!(r.eval(&w), vec![w.root()]);
    let (after, _) = d.apply_to_copy(&w);
    assert!(r.eval(&after).is_empty());
}

/// Contained pairs yield conflict-free reduced instances (both theorems).
#[test]
fn reductions_silent_when_contained() {
    let battery = [("a/b", "a//b"), ("a[b][c]", "a[b]"), ("a/b", "a/*")];
    let budget = brute::Budget {
        max_nodes: 4,
        max_trees: 3_000_000,
    };
    for (p_src, q_src) in battery {
        let p = pat(p_src);
        let q = pat(q_src);
        assert!(containment::contains(&p, &q));
        let (r, i) = reduction::insert_instance(&p, &q);
        assert!(matches!(
            brute::find_witness(&r, &Update::Insert(i), Semantics::Node, budget),
            brute::SearchOutcome::NoConflictWithin(_)
        ));
        let (r2, d) = reduction::delete_instance(&p, &q);
        assert!(matches!(
            brute::find_witness(&r2, &Update::Delete(d), Semantics::Node, budget),
            brute::SearchOutcome::NoConflictWithin(_)
        ));
    }
}

// ---------------------------------------------------------------- §6 remarks

/// §6: identical insertions do not conflict under value semantics.
#[test]
fn section6_identical_inserts() {
    use cxu::core::update_update;
    let u = Update::Insert(Insert::new(pat("a//b"), doc("x(y)")));
    assert!(matches!(
        update_update::find_noncommuting_witness(&u, &u, Default::default()),
        update_update::Outcome::NoConflictWithin(_)
    ));
}

/// §6: the satisfiability-style observation — a read selecting all nodes
/// conflicts with *every* satisfiable delete that shares its root space.
#[test]
fn section6_satisfiability_encoding() {
    let read_all = Read::new(pat("*//*")); // every non-root node (plus root via */…)
    for d_src in ["*/q", "a/b/c", "*//x[y]"] {
        let d = Delete::new(pat(d_src)).unwrap();
        assert!(
            detect::read_delete_conflict(&read_all, &d, Semantics::Node).unwrap(),
            "{d_src} is satisfiable, so it must conflict with a read of all nodes"
        );
    }
}
