//! Randomized validation of the §5 reductions (experiment E5):
//! for random pattern pairs `(p, p')`, the Theorem 4/6 instances conflict
//! exactly when `p ⊄ p'`.
//!
//! Deciding the conflict side exactly is itself NP-hard, so the test uses
//! the proofs' own artifacts: a containment counterexample yields a
//! constructed witness (checked with Lemma 1); containment implies no
//! witness may exist, confirmed by bounded search on the smallest
//! instances. Pairs where the exact containment oracle exceeds its budget
//! are skipped (and counted, to ensure coverage stays meaningful).

use cxu::core::{brute, reduction};
use cxu::gen::patterns::{random_pattern, PatternParams};
use cxu::gen::rng::{Rng, SplitMix64 as SmallRng};
use cxu::pattern::{containment, eval};
use cxu::prelude::*;
use cxu::witness;

fn random_pair(seed: u64) -> (Pattern, Pattern) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let params = PatternParams {
        nodes: rng.gen_range(2..=4),
        alphabet: 2,
        branch_rate: 0.35,
        wildcard_rate: 0.2,
        descendant_rate: 0.35,
        ..PatternParams::default()
    };
    let p = random_pattern(&mut rng, &params);
    let q = random_pattern(&mut rng, &params);
    (p, q)
}

#[test]
fn insert_reduction_agrees_with_containment_randomized() {
    let mut decided = 0;
    let mut skipped = 0;
    for seed in 0..120u64 {
        let (p, q) = random_pair(seed);
        let Some(contained) = containment::contains_within(&p, &q, 1 << 14) else {
            skipped += 1;
            continue;
        };
        let (r, i) = reduction::insert_instance(&p, &q);
        if contained {
            // No conflict may exist; check no small witness does.
            let out = brute::find_witness(
                &r,
                &Update::Insert(i),
                Semantics::Node,
                brute::Budget {
                    max_nodes: 4,
                    max_trees: 300_000,
                },
            );
            assert!(
                !matches!(out, brute::SearchOutcome::Conflict(_)),
                "seed {seed}: {p} ⊆ {q} but reduced instance conflicts"
            );
        } else {
            // Build the Figure 7d witness from a counterexample. The
            // counterexample search is bounded; if it misses, fall back to
            // a canonical-model counterexample, which the oracle
            // guarantees exists.
            let t_p = containment::find_counterexample(&p, &q, 5).unwrap_or_else(|| {
                containment::canonical_models(&p, q.star_length(), &q.alphabet())
                    .find(|m| !eval::matches(&q, m))
                    .expect("non-containment ⇒ some canonical model refutes")
            });
            let w = reduction::insert_witness_from_counterexample(&p, &q, &t_p);
            assert!(
                witness::witnesses_insert_conflict(&r, &i, &w, Semantics::Node),
                "seed {seed}: {p} ⊄ {q} but constructed witness fails"
            );
        }
        decided += 1;
    }
    assert!(decided >= 100, "too many skipped pairs ({skipped})");
}

#[test]
fn delete_reduction_agrees_with_containment_randomized() {
    let mut decided = 0;
    for seed in 1000..1100u64 {
        let (p, q) = random_pair(seed);
        let Some(contained) = containment::contains_within(&p, &q, 1 << 14) else {
            continue;
        };
        let (r, d) = reduction::delete_instance(&p, &q);
        if contained {
            let out = brute::find_witness(
                &r,
                &Update::Delete(d),
                Semantics::Node,
                brute::Budget {
                    max_nodes: 4,
                    max_trees: 300_000,
                },
            );
            assert!(
                !matches!(out, brute::SearchOutcome::Conflict(_)),
                "seed {seed}: {p} ⊆ {q} but reduced delete instance conflicts"
            );
        } else {
            let t_p = containment::find_counterexample(&p, &q, 5).unwrap_or_else(|| {
                containment::canonical_models(&p, q.star_length(), &q.alphabet())
                    .find(|m| !eval::matches(&q, m))
                    .expect("non-containment ⇒ some canonical model refutes")
            });
            let w = reduction::delete_witness_from_counterexample(&p, &q, &t_p);
            assert!(
                witness::witnesses_delete_conflict(&r, &d, &w, Semantics::Node),
                "seed {seed}: {p} ⊄ {q} but constructed delete witness fails"
            );
        }
        decided += 1;
    }
    assert!(decided >= 80);
}

/// The reduced read patterns return at most the root on any tree — the
/// structural property both proofs lean on.
#[test]
fn reduced_reads_return_at_most_the_root() {
    use cxu::gen::trees::{random_tree, TreeParams};
    for seed in 0..30u64 {
        let (p, q) = random_pair(seed);
        let (r_ins, _) = reduction::insert_instance(&p, &q);
        let (r_del, _) = reduction::delete_instance(&p, &q);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
        let t = random_tree(
            &mut rng,
            &TreeParams {
                nodes: 40,
                alphabet: 4,
                ..TreeParams::default()
            },
        );
        for r in [&r_ins, &r_del] {
            let hits = r.eval(&t);
            assert!(hits.len() <= 1);
            if let Some(&n) = hits.first() {
                assert_eq!(n, t.root());
            }
        }
    }
}
