//! Fault-injection stress suite (`--features failpoints`).
//!
//! Arms the deterministic failpoint plan and drives ≥ 500 seeded random
//! programs through the scheduler under a 1 ms pair deadline. Injected
//! panics, slowdowns, and forced budget exhaustions must never abort a
//! batch: every program still yields a valid schedule that is
//! observationally equivalent to serial execution (same interpreter
//! oracle as `sched_validation.rs`), with the degradations accounted
//! for in `SchedStats`.
//!
//! The base seed comes from `CXU_FAILPOINTS_SEED` (decimal), so CI can
//! replay a fixed seed matrix; it defaults to 1.

#![cfg(feature = "failpoints")]

use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, ProgramParams};
use cxu::gen::rng::{Rng, SplitMix64};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::runtime::failpoints::{self, Plan};
use cxu::sched::validate::schedule_preserves_observation;
use cxu::sched::{SchedConfig, Scheduler};
use std::time::Duration;

fn base_seed() -> u64 {
    std::env::var("CXU_FAILPOINTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The failpoint plan is process-global state: every test arms and
/// disarms under this lock.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn scheduler_survives_injected_faults() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The injected panics are expected and caught; keep them out of the
    // test output — but let genuine assertion failures print normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("injected failpoint panic") {
            default_hook(info);
        }
    }));

    let seed = base_seed();
    failpoints::arm(Plan {
        seed,
        panic_per_mille: 60,
        sleep_per_mille: 60,
        sleep_ms: 3,
        exhaust_per_mille: 80,
    });

    let cfg = SchedConfig {
        jobs: 1, // deterministic fault sequence for a given seed
        pair_deadline: Some(Duration::from_millis(1)),
        np_max_trees: 300,
        ..SchedConfig::default()
    };
    let params = |branching: bool| ProgramParams {
        len: 6,
        update_rate: 0.5,
        delete_rate: 0.4,
        pattern: PatternParams {
            nodes: 3,
            alphabet: 3,
            branch_rate: if branching { 0.5 } else { 0.0 },
            ..PatternParams::default()
        },
    };

    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5EED_FA17);
    let mut total = cxu::sched::SchedStats::default();
    for case in 0..500 {
        let p = random_program(&mut rng, &params(case % 2 == 1));
        let doc = random_tree(
            &mut rng,
            &TreeParams {
                nodes: 8,
                alphabet: 3,
                ..TreeParams::default()
            },
        );
        // A fresh scheduler per program: no cache to soften the faults.
        let out = Scheduler::new(cfg).run_program(&p);

        // Structural validity: every op exactly once, conflicts ordered.
        let mut seen = vec![false; p.stmts.len()];
        for round in &out.schedule.rounds {
            for (i, &a) in round.iter().enumerate() {
                assert!(
                    !std::mem::replace(&mut seen[a], true),
                    "case {case}: op {a} twice"
                );
                for &b in &round[i + 1..] {
                    assert!(
                        !out.graph.conflict(a, b),
                        "case {case}: conflict in a round"
                    );
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "case {case}: op dropped");

        // Observational soundness, two random intra-round orders.
        for _ in 0..2 {
            let intra: Vec<Vec<usize>> = out
                .schedule
                .rounds
                .iter()
                .map(|r| {
                    let mut perm: Vec<usize> = (0..r.len()).collect();
                    for i in (1..perm.len()).rev() {
                        perm.swap(i, rng.gen_range(0..=i));
                    }
                    perm
                })
                .collect();
            assert!(
                schedule_preserves_observation(&p, &out.schedule, &intra, &doc),
                "case {case}: faulted schedule broke observational equivalence"
            );
        }

        total.degraded_budget += out.stats.degraded_budget;
        total.degraded_deadline += out.stats.degraded_deadline;
        total.degraded_panic += out.stats.degraded_panic;
        total.conservative += out.stats.conservative;
    }
    failpoints::disarm();
    let _ = std::panic::take_hook();

    // The plan actually bit: each degradation class was exercised.
    assert!(
        total.degraded_panic > 0,
        "no injected panic surfaced: {total:?}"
    );
    assert!(
        total.degraded_budget > 0,
        "no forced exhaustion surfaced: {total:?}"
    );
    assert!(
        total.degraded_deadline > 0,
        "no deadline degradation surfaced: {total:?}"
    );
}

/// Injected disk faults at the `store::wal::*` sites (append error,
/// short write, fsync error) must never let the in-memory state run
/// ahead of the log: a put that reports `Io` changed nothing, a put
/// that reports success is durable, and reopening the data directory
/// reconstructs exactly the successful prefix — even when a short
/// write left a genuinely torn tail behind.
#[test]
fn wal_survives_injected_disk_faults() {
    use cxu::sched::{Deadline, Op};
    use cxu::store::{DurabilityConfig, FsyncPolicy, PutPayload, Store, StoreConfig, StoreError};

    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let seed = base_seed() ^ 0xD15C;
    let dir = std::env::temp_dir().join(format!("cxu-fp-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dcfg = DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        snapshot_every: 0, // keep compaction out of the fault path
    };

    let oracle = Store::new(StoreConfig::default());
    let mut sched = Scheduler::new(SchedConfig::default());
    let deadline = Deadline::never();
    let mut check = |a: &Op, b: &Op| sched.check_pair(a, b, &deadline);
    let mut oracle_sched = Scheduler::new(SchedConfig::default());
    let mut oracle_check = |a: &Op, b: &Op| oracle_sched.check_pair(a, b, &deadline);

    failpoints::arm(Plan {
        seed,
        panic_per_mille: 0,
        sleep_per_mille: 0,
        sleep_ms: 0,
        exhaust_per_mille: 120, // the wal sites read exhaust as "disk died"
    });

    let mut rng = SplitMix64::seed_from_u64(seed);
    let tparams = TreeParams {
        nodes: 6,
        alphabet: 4,
        ..TreeParams::default()
    };
    // A short write poisons the log for the rest of the incarnation
    // (every later append refuses, keeping memory and disk in step),
    // so the workload runs as open → fault → crash cycles: each reopen
    // clears the poison, truncates any torn tail the short write left,
    // and must reconstruct exactly the successful prefix so far.
    let mut io_errors = 0u64;
    let mut successes = 0u64;
    for cycle in 0..8 {
        let durable = Store::open(StoreConfig::default(), dcfg.clone())
            .unwrap_or_else(|e| panic!("cycle {cycle}: reopen after faults: {e}"));
        assert_eq!(
            durable.doc_revs("doc"),
            oracle.doc_revs("doc"),
            "cycle {cycle}: recovery equals the successful prefix"
        );
        assert_eq!(durable.current_seq(), oracle.current_seq(), "cycle {cycle}");
        for _ in 0..10 {
            let base = durable.get("doc", None, false).ok().map(|g| g.rev);
            let tree = random_tree(&mut rng, &tparams);
            match durable.put("doc", base, PutPayload::Content(tree.clone()), &mut check) {
                Ok(out) => {
                    successes += 1;
                    let echo = oracle
                        .put(
                            "doc",
                            oracle.get("doc", None, false).ok().map(|g| g.rev),
                            PutPayload::Content(tree),
                            &mut oracle_check,
                        )
                        .expect("oracle replays the successful put");
                    assert_eq!(echo.rev, out.rev, "deterministic revision ids");
                }
                Err(StoreError::Io(_)) => io_errors += 1, // nothing changed
                Err(other) => panic!("unexpected rejection under disk faults: {other:?}"),
            }
            assert_eq!(
                durable.current_seq(),
                oracle.current_seq(),
                "memory never runs ahead of the log"
            );
        }
        drop(durable); // crash: no flush, no compact
    }
    failpoints::disarm();

    assert!(successes >= 10, "some puts must get through ({successes})");
    assert!(io_errors >= 3, "the 120/1000 plan must bite ({io_errors})");

    let recovered = Store::open(StoreConfig::default(), dcfg).expect("recover after faults");
    assert_eq!(
        recovered.doc_revs("doc"),
        oracle.doc_revs("doc"),
        "recovered tree equals the successful prefix"
    );
    assert_eq!(recovered.current_seq(), oracle.current_seq());
    let g = recovered.get("doc", None, false).expect("winner");
    let o = oracle.get("doc", None, false).expect("oracle winner");
    assert_eq!(g.rev, o.rev, "same winner after recovery");
    let _ = std::fs::remove_dir_all(&dir);
}
