//! End-to-end validation of `cxu-serve` over real sockets: verdict
//! agreement with the in-process scheduler, admission control under a
//! saturated queue, the graceful-shutdown drain guarantee, and (with
//! `--features failpoints`) panic isolation inside the worker pool.
//!
//! Every test binds an ephemeral port and serializes on one mutex: the
//! failpoint plan is process-global, and the timing-sensitive tests
//! want the machine to themselves. Metrics are *not* process-global —
//! each server owns a private registry, and the two-concurrent-servers
//! test below runs both inside one lock hold to prove it.

use cxu::gen::json::Json;
use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, Program, ProgramParams};
use cxu::gen::rng::SplitMix64;
use cxu::gen::wire;
use cxu::prelude::Semantics;
use cxu::sched::{ops_of_program, Deadline, Op, SchedConfig, Scheduler};
use cxu::serve::{ServeConfig, ServeSummary, Server, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn start(
    cfg: ServeConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ServeSummary>,
) {
    let server = Server::bind(cfg, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection mid-exchange");
        Json::parse(line.trim_end()).expect("response is JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn assert_identity(s: &ServeSummary) {
    assert_eq!(
        s.accepted,
        s.completed + s.rejected_overload + s.failed,
        "accounting identity violated: {s:?}"
    );
}

/// A seeded pool with both PTIME and exotic (budget-bound) pairs.
fn pool(seed: u64, len: usize) -> (Program, Vec<Op>, Vec<String>) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = 0.15;
    let params = ProgramParams {
        len,
        update_rate: 0.5,
        delete_rate: 0.4,
        pattern,
    };
    let program = random_program(&mut rng, &params);
    let ops = ops_of_program(&program);
    let op_json: Vec<String> = program
        .stmts
        .iter()
        .map(|s| wire::stmt_to_json(s).to_string())
        .collect();
    (program, ops, op_json)
}

const CHECK_A: &str = r#"{"route": "check", "a": {"kind": "read", "pattern": "*//C"}, "b": {"kind": "insert", "pattern": "*/B", "subtree": "C"}"#;

fn delayed_check(delay_ms: u64, id: u64) -> String {
    format!(r#"{CHECK_A}, "delay_ms": {delay_ms}, "id": {id}}}"#)
}

/// (a) Every verdict the server hands out agrees with an in-process
/// scheduler running the *same* configuration, for both the `check` and
/// the `schedule` routes.
#[test]
fn server_verdicts_agree_with_in_process_scheduler() {
    let _g = lock();
    let cfg = ServeConfig::default();
    let local_cfg = SchedConfig {
        semantics: Semantics::Value,
        ..cfg.sched
    };
    let (addr, _handle, join) = start(cfg);
    let mut c = Client::connect(addr);

    let (_program, ops, op_json) = pool(7, 16);
    let mut local = Scheduler::new(local_cfg);
    let never = Deadline::never();
    let mut checked = 0usize;
    for i in 0..ops.len() {
        for j in (i + 1)..ops.len() {
            // A deadline far beyond any detector's budgeted runtime:
            // degradations, if any, are budget ones — deterministic and
            // identical on both sides.
            let req = format!(
                r#"{{"route": "check", "id": {checked}, "deadline_ms": 60000, "a": {}, "b": {}}}"#,
                op_json[i], op_json[j]
            );
            let v = c.roundtrip(&req);
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
            assert_eq!(v.get("id").and_then(Json::as_u64), Some(checked as u64));
            let server_conflict = v.get("conflict").and_then(Json::as_bool).unwrap();
            let server_degraded = v.get("degraded").and_then(Json::as_bool).unwrap();

            let d = local.check_pair(&ops[i], &ops[j], &never);
            assert_eq!(
                server_degraded,
                d.verdict.detector.is_conservative(),
                "degradation mismatch on pair ({i}, {j}): server {v:?}, local {d:?}"
            );
            assert_eq!(
                server_conflict, d.verdict.conflict,
                "verdict mismatch on pair ({i}, {j}): server {v:?}, local {d:?}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, ops.len() * (ops.len() - 1) / 2);

    // The schedule route: same rounds as an in-process run.
    let batch = format!(
        r#"{{"route": "schedule", "deadline_ms": 60000, "ops": [{}]}}"#,
        op_json.join(", ")
    );
    let v = c.roundtrip(&batch);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    let server_rounds: Vec<Vec<u64>> = v
        .get("rounds")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|r| {
            r.as_arr()
                .unwrap()
                .iter()
                .map(|i| i.as_u64().unwrap())
                .collect()
        })
        .collect();
    let local_out = local.run(&ops);
    let local_rounds: Vec<Vec<u64>> = local_out
        .schedule
        .rounds
        .iter()
        .map(|r| r.iter().map(|&i| i as u64).collect())
        .collect();
    assert_eq!(server_rounds, local_rounds);
    let stats = v.get("stats").unwrap();
    assert_eq!(
        stats.get("ops").and_then(Json::as_u64),
        Some(ops.len() as u64)
    );

    // Metrics route exposes the serve.* catalog.
    let v = c.roundtrip(r#"{"route": "metrics"}"#);
    let counters = v.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert!(counters.get("serve.accepted").and_then(Json::as_u64) >= Some(1));

    let v = c.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(c);
    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.rejected_overload, 0);
}

/// (b) A full queue answers `overloaded` immediately — it does not hang
/// the client, and the server keeps serving.
#[test]
fn full_queue_rejects_overloaded_without_hanging() {
    let _g = lock();
    let (addr, handle, join) = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });

    // Occupy the single worker …
    let mut busy = Client::connect(addr);
    busy.send(&delayed_check(400, 1));
    std::thread::sleep(Duration::from_millis(100));
    // … and the single queue slot.
    let mut queued = Client::connect(addr);
    queued.send(&delayed_check(400, 2));
    std::thread::sleep(Duration::from_millis(100));

    // The third request must bounce on the spot.
    let mut burst = Client::connect(addr);
    let t0 = Instant::now();
    let v = burst.roundtrip(&delayed_check(0, 3));
    let elapsed = t0.elapsed();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v:?}");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"));
    assert!(
        elapsed < Duration::from_millis(500),
        "overload rejection took {elapsed:?}; admission control must not queue-wait"
    );

    // The admitted requests still complete.
    for c in [&mut busy, &mut queued] {
        let v = c.recv();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    }
    handle.shutdown();
    drop((busy, queued, burst));
    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert_eq!(summary.rejected_overload, 1);
    assert_eq!(summary.completed, 2);
}

/// (c) Graceful shutdown drains in-flight work: a request admitted
/// before the shutdown still gets its real answer.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });

    let mut slow = Client::connect(addr);
    slow.send(&delayed_check(300, 9));
    std::thread::sleep(Duration::from_millis(100));

    // Shutdown arrives while the delayed request is mid-flight.
    let mut admin = Client::connect(addr);
    let v = admin.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));

    // The in-flight request is answered, not dropped.
    let v = slow.recv();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    assert_eq!(v.get("conflict").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(9));

    drop((slow, admin));
    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert_eq!(summary.completed, 2, "delayed check + shutdown ack");
    assert_eq!(summary.failed, 0);
}

/// (d) An injected detector panic fails one request and leaves the
/// worker pool alive (`--features failpoints`).
#[cfg(feature = "failpoints")]
#[test]
fn injected_panics_fail_requests_but_not_the_pool() {
    use cxu::runtime::failpoints::{self, Plan};

    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr);

    failpoints::arm(Plan {
        seed: 1,
        panic_per_mille: 1000,
        sleep_per_mille: 0,
        sleep_ms: 0,
        exhaust_per_mille: 0,
    });
    let mut failed = 0;
    for id in 0..6 {
        let v = c.roundtrip(&delayed_check(0, id));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v:?}");
        assert_eq!(v.get("error").and_then(Json::as_str), Some("internal"));
        failed += 1;
    }
    failpoints::disarm();

    // The pool survived every panic: the next request succeeds.
    let v = c.roundtrip(&delayed_check(0, 99));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    assert_eq!(v.get("conflict").and_then(Json::as_bool), Some(true));

    let v = c.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(c);
    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert_eq!(summary.failed, failed);
    assert!(summary.completed >= 2);
}

/// (e) An oversized request line is answered `bad-request` and the
/// connection closed before the line ever reaches the parser — the
/// server never buffers an attacker-controlled line without bound.
/// The reject still lands in the accounting identity as a failure.
#[test]
fn oversized_request_line_is_rejected_at_the_socket() {
    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig {
        workers: 1,
        max_line_bytes: 256,
        ..ServeConfig::default()
    });

    let mut c = Client::connect(addr);
    let huge = format!(r#"{{"route": "check", "pad": "{}"}}"#, "x".repeat(4096));
    c.send(&huge);
    let v = c.recv();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v:?}");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("bad-request"));
    // The connection is closed behind the rejection.
    let mut rest = String::new();
    assert_eq!(c.reader.read_line(&mut rest).unwrap_or(0), 0, "closed");

    // A well-behaved client on a fresh connection is unaffected.
    let mut ok = Client::connect(addr);
    let v = ok.roundtrip(&delayed_check(0, 1));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");

    let v = ok.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(ok);
    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert!(summary.failed >= 1, "the oversized line counts as failed");
}

/// (f) A slow-loris connection — bytes trickling in with no newline —
/// is answered `timeout` and closed once the partial line has stalled
/// past the read timeout. An *idle* connection (no partial line) stays
/// open indefinitely.
#[test]
fn slow_loris_partial_line_times_out_but_idle_does_not() {
    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig {
        workers: 1,
        read_timeout: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    });

    // Idle longer than the timeout, then speak: still served.
    let mut idle = Client::connect(addr);
    std::thread::sleep(Duration::from_millis(400));
    let v = idle.roundtrip(&delayed_check(0, 7));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");

    // Trickle half a request and stall: timed out and closed.
    let mut loris = Client::connect(addr);
    loris
        .writer
        .write_all(br#"{"route": "che"#)
        .expect("trickle");
    loris.writer.flush().expect("flush trickle");
    let t0 = Instant::now();
    let v = loris.recv();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{v:?}");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("timeout"));
    assert!(
        t0.elapsed() >= Duration::from_millis(100),
        "the guard waits out the timeout before closing"
    );
    let mut rest = String::new();
    assert_eq!(loris.reader.read_line(&mut rest).unwrap_or(0), 0, "closed");

    let v = idle.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(idle);
    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert!(summary.failed >= 1, "the stalled line counts as failed");
}

/// (g) A durable server restarted over the same data directory serves
/// the documents the previous incarnation acked — the socket-level
/// restart path the crash harness exercises with SIGKILL, here driven
/// in-process through graceful and non-graceful drops.
#[test]
fn durable_server_restart_preserves_acked_documents() {
    let _g = lock();
    let dir = std::env::temp_dir().join(format!("cxu-serve-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = || ServeConfig {
        workers: 2,
        data_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    let (addr, _handle, join) = start(cfg());
    let mut c = Client::connect(addr);
    let v = c.roundtrip(r#"{"route": "doc_put", "doc": "d", "content": "a(b c)"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    let rev1 = v.get("rev").and_then(Json::as_str).unwrap().to_owned();
    let v = c.roundtrip(&format!(
        r#"{{"route": "doc_put", "doc": "d", "base_rev": "{rev1}", "content": "a(b c d)"}}"#
    ));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    let rev2 = v.get("rev").and_then(Json::as_str).unwrap().to_owned();
    let v = c.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(c);
    join.join().unwrap();

    // Second incarnation: both acked revisions are readable, the
    // winner is the later one, and the changes feed has the document.
    let (addr, _handle, join) = start(cfg());
    let mut c = Client::connect(addr);
    for rev in [&rev1, &rev2] {
        let v = c.roundtrip(&format!(
            r#"{{"route": "doc_get", "doc": "d", "rev": "{rev}"}}"#
        ));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
        assert_ne!(v.get("found").and_then(Json::as_bool), Some(false), "{v:?}");
    }
    let v = c.roundtrip(r#"{"route": "doc_get", "doc": "d"}"#);
    assert_eq!(v.get("rev").and_then(Json::as_str), Some(rev2.as_str()));
    assert_eq!(v.get("content").and_then(Json::as_str), Some("a(b c d)"));
    let v = c.roundtrip(r#"{"route": "doc_changes"}"#);
    let results = v.get("results").and_then(Json::as_arr).unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].get("doc").and_then(Json::as_str), Some("d"));

    let v = c.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(c);
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// (h) Two servers in one process keep their metrics apart: traffic on
/// one never shows up in the other's `metrics` snapshot, even while
/// both are live and interleaved. (Before per-server registries this
/// was impossible — the counters were process globals.)
#[test]
fn two_concurrent_servers_keep_metrics_isolated() {
    let _g = lock();
    let (addr_a, _ha, join_a) = start(ServeConfig::default());
    let (addr_b, _hb, join_b) = start(ServeConfig::default());
    let mut a = Client::connect(addr_a);
    let mut b = Client::connect(addr_b);

    // Interleave: a doc_put on A between two checks on B.
    let v = b.roundtrip(&delayed_check(0, 1));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    let v = a.roundtrip(r#"{"route": "doc_put", "doc": "iso", "content": "a(b)"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    let v = b.roundtrip(&delayed_check(0, 2));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");

    let counters_of = |v: &Json| -> Json {
        v.get("metrics")
            .and_then(|m| m.get("counters"))
            .expect("counters")
            .clone()
    };
    let ca = counters_of(&a.roundtrip(r#"{"route": "metrics"}"#));
    let cb = counters_of(&b.roundtrip(r#"{"route": "metrics"}"#));

    // A saw exactly its own two requests (the put and this metrics
    // call) and exactly one store put; B saw its two checks plus the
    // metrics call and *no* puts — A's write did not bleed over.
    assert_eq!(ca.get("serve.accepted").and_then(Json::as_u64), Some(2));
    assert_eq!(ca.get("serve.completed").and_then(Json::as_u64), Some(2));
    assert_eq!(ca.get("store.puts").and_then(Json::as_u64), Some(1));
    assert_eq!(cb.get("serve.accepted").and_then(Json::as_u64), Some(3));
    assert_eq!(cb.get("serve.completed").and_then(Json::as_u64), Some(3));
    assert_eq!(
        cb.get("store.puts").and_then(Json::as_u64).unwrap_or(0),
        0,
        "server B's snapshot contains server A's puts: {cb:?}"
    );

    // A: put + metrics + shutdown; B: two checks + metrics + shutdown.
    for (c, join, expect_accepted) in [(&mut a, join_a, 3), (&mut b, join_b, 4)] {
        let v = c.roundtrip(r#"{"route": "shutdown"}"#);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
        let summary = join.join().unwrap();
        assert_identity(&summary);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.accepted, expect_accepted);
    }
}

/// (i) The read timeout charges *client* stall, not response drain: a
/// pipelined client that sends a batch of slow requests plus a partial
/// next line, then pauses to read the responses, must not be
/// disconnected as a slow-loris — the server owes it output the whole
/// time. Only once the server is quiet does the partial line's clock
/// run (and the client finishes it within budget).
#[test]
fn pipelined_response_drain_is_not_charged_to_the_read_timeout() {
    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig {
        workers: 1,
        read_timeout: Some(Duration::from_millis(250)),
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr);

    // One write: three 150 ms checks (450 ms of serial work on one
    // worker — well past the 250 ms read timeout) and the *start* of a
    // fourth request, no newline.
    let full: String = delayed_check(150, 3);
    let (head, tail) = full.split_at(14);
    let mut batch = String::new();
    for id in 0..3u64 {
        batch.push_str(&delayed_check(150, id));
        batch.push('\n');
    }
    batch.push_str(head);
    c.writer.write_all(batch.as_bytes()).expect("batch write");

    let t0 = Instant::now();
    for id in 0..3u64 {
        let v = c.recv();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(id));
        assert_ne!(
            v.get("error").and_then(Json::as_str),
            Some("timeout"),
            "response drain misclassified as a read timeout: {v:?}"
        );
    }
    let drained = t0.elapsed();
    assert!(
        drained >= Duration::from_millis(400),
        "three serial 150 ms checks finished implausibly fast ({drained:?})"
    );

    // The connection is now quiet with a 250 ms budget on the partial
    // line. Pause inside the budget, then finish the request: served.
    std::thread::sleep(Duration::from_millis(100));
    let v = c.roundtrip(tail);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));

    let v = c.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(c);
    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert_eq!(summary.failed, 0, "nothing may be accounted as timed out");
    assert_eq!(summary.completed, 5);
}

/// (j) Pipelining composes with graceful shutdown: a single write
/// carrying a whole window of checks *and* the shutdown request drains
/// completely, in request order, before the server closes the
/// connection.
#[test]
fn pipelined_window_drains_in_order_through_shutdown() {
    let _g = lock();
    const WINDOW: u64 = 16;
    let (addr, _handle, join) = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr);

    let mut batch = String::new();
    for id in 0..WINDOW {
        batch.push_str(&delayed_check(5, id));
        batch.push('\n');
    }
    batch.push_str("{\"route\": \"shutdown\"}\n");
    c.writer.write_all(batch.as_bytes()).expect("batch write");

    for id in 0..WINDOW {
        let v = c.recv();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
        assert_eq!(
            v.get("id").and_then(Json::as_u64),
            Some(id),
            "pipelined responses must arrive in request order"
        );
    }
    let v = c.recv();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    // After the drain the server closes the connection: clean EOF.
    let mut line = String::new();
    assert_eq!(c.reader.read_line(&mut line).expect("eof read"), 0);

    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert_eq!(summary.accepted, WINDOW + 1);
    assert_eq!(summary.completed, WINDOW + 1);
    assert_eq!(summary.rejected_overload, 0);
    assert_eq!(summary.failed, 0);
}

/// (k) The grounded `doc_check` route end to end: every verdict the
/// server hands out over the socket agrees with the in-process Lemma 1
/// witness check on the same stored document, across all three
/// semantics; a missing document is a rejection (not an error); and
/// repeated checks against the same winner reuse the cached index.
#[test]
fn doc_check_answers_grounded_verdicts_over_the_socket() {
    use cxu::gen::program::Stmt;

    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(addr);

    // The paper's §1 document, plus enough structure for delete cases.
    let content = "x(B(C E) A(B C))";
    let v = c.roundtrip(&format!(
        r#"{{"route": "doc_put", "doc": "g", "content": "{content}"}}"#
    ));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    let rev = v.get("rev").and_then(Json::as_str).unwrap().to_owned();
    let doc = cxu::tree::text::parse(content).unwrap();

    let pairs = [
        // The §1 motivating pair: the insert creates a new x//C match.
        (
            r#"{"kind": "read", "pattern": "x//C"}"#,
            r#"{"kind": "insert", "pattern": "x/B", "subtree": "C"}"#,
        ),
        // Insert elsewhere: no new match for the read.
        (
            r#"{"kind": "read", "pattern": "x/B"}"#,
            r#"{"kind": "insert", "pattern": "x/A", "subtree": "D"}"#,
        ),
        // Insert below a returned node: tree/value-only conflict.
        (
            r#"{"kind": "read", "pattern": "x/B"}"#,
            r#"{"kind": "insert", "pattern": "x/B", "subtree": "F"}"#,
        ),
        // Delete a subtree the read matches inside.
        (
            r#"{"kind": "read", "pattern": "x//C"}"#,
            r#"{"kind": "delete", "pattern": "x/A"}"#,
        ),
        // Delete something the read never sees... except by value.
        (
            r#"{"kind": "read", "pattern": "x/B/E"}"#,
            r#"{"kind": "delete", "pattern": "x/A/C"}"#,
        ),
        // Branching read pattern (table path, not the chain path).
        (
            r#"{"kind": "read", "pattern": "x/B[C]"}"#,
            r#"{"kind": "delete", "pattern": "x/B/C"}"#,
        ),
    ];
    for sem in Semantics::ALL {
        for (r, u) in &pairs {
            let read = match wire::stmt_from_json(&Json::parse(r).unwrap()).unwrap() {
                Stmt::Read(read) => read,
                other => panic!("not a read: {other:?}"),
            };
            let update = match wire::stmt_from_json(&Json::parse(u).unwrap()).unwrap() {
                Stmt::Update(update) => update,
                other => panic!("not an update: {other:?}"),
            };
            let expect = cxu::ops::witness::witnesses_update_conflict(&read, &update, &doc, sem);
            let v = c.roundtrip(&format!(
                r#"{{"route": "doc_check", "doc": "g", "semantics": "{}", "read": {r}, "update": {u}}}"#,
                sem.name()
            ));
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
            assert_eq!(v.get("rev").and_then(Json::as_str), Some(rev.as_str()));
            assert_eq!(
                v.get("conflict").and_then(Json::as_bool),
                Some(expect),
                "socket verdict disagrees with the witness check \
                 for {r} vs {u} under {sem:?}: {v:?}"
            );
            assert_eq!(
                v.get("nodes").and_then(Json::as_u64),
                Some(doc.live_count() as u64),
                "{v:?}"
            );
        }
    }

    // A missing document is an answer about state, not a failure.
    let v = c.roundtrip(
        r#"{"route": "doc_check", "doc": "nope",
            "read": {"kind": "read", "pattern": "a//b"},
            "update": {"kind": "delete", "pattern": "a/b"}}"#
            .replace('\n', " ")
            .as_str(),
    );
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    assert_eq!(v.get("result").and_then(Json::as_str), Some("rejected"));

    // The index was built once and then served warm from the cache.
    let m = c.roundtrip(r#"{"route": "metrics"}"#);
    let counters = m.get("metrics").and_then(|m| m.get("counters")).unwrap();
    let misses = counters
        .get("index.cache.misses")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let hits = counters
        .get("index.cache.hits")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let grounded = counters
        .get("index.grounded_checks")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert_eq!(misses, 1, "one cold build for the winner: {m}");
    assert_eq!(
        hits + misses,
        (pairs.len() * Semantics::ALL.len()) as u64,
        "every check hit the cache after the first: {m}"
    );
    assert_eq!(grounded, hits + misses, "every check was index-grounded");

    let v = c.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(c);
    let summary = join.join().unwrap();
    assert_identity(&summary);
    assert_eq!(summary.failed, 0);
}
