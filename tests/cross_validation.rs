//! Property-based cross-validation: every production algorithm is checked
//! against an independent oracle on randomized inputs.
//!
//! * two-pass evaluation vs exhaustive embedding enumeration;
//! * PrefixMatcher DP vs per-prefix NFA intersection;
//! * PTIME conflict detectors vs bounded brute-force witness search;
//! * homomorphism soundness and exact containment vs counterexample
//!   search;
//! * isomorphism invariants.
//!
//! Random structures come from `cxu-gen`, driven by proptest-chosen
//! seeds, so failures shrink to a seed that reproduces deterministically.

// Gated: needs the external `proptest` crate (see the workspace
// Cargo.toml note on hermetic builds).
#![cfg(feature = "proptest")]

use cxu::core::{brute, matching};
use cxu::detect;
use cxu::gen::patterns::{random_delete_pattern, random_pattern, PatternParams};
use cxu::gen::rng::{Rng, SplitMix64 as SmallRng};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::pattern::{containment, embed, eval, Pattern};
use cxu::prelude::*;
use proptest::prelude::*;

fn small_pattern(seed: u64, branching: bool) -> Pattern {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes = rng.gen_range(1..=5);
    let params = PatternParams {
        nodes,
        alphabet: 3,
        branch_rate: if branching { 0.4 } else { 0.0 },
        ..PatternParams::default()
    };
    random_pattern(&mut rng, &params)
}

fn small_tree(seed: u64, nodes: usize) -> Tree {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_tree(
        &mut rng,
        &TreeParams {
            nodes,
            alphabet: 3,
            ..TreeParams::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The two-pass evaluator equals the exhaustive-enumeration oracle.
    #[test]
    fn eval_equals_naive(pseed in any::<u64>(), tseed in any::<u64>(), n in 1usize..30) {
        let p = small_pattern(pseed, true);
        let t = small_tree(tseed, n);
        prop_assert_eq!(eval::eval(&p, &t), embed::eval_naive(&p, &t));
    }

    /// `matches` ⇔ nonempty result ⇔ an embedding exists.
    #[test]
    fn matches_consistency(pseed in any::<u64>(), tseed in any::<u64>(), n in 1usize..25) {
        let p = small_pattern(pseed, true);
        let t = small_tree(tseed, n);
        let m = eval::matches(&p, &t);
        prop_assert_eq!(m, !eval::eval(&p, &t).is_empty());
        prop_assert_eq!(m, embed::embeds(&p, &t));
    }

    /// The all-prefixes DP matcher equals per-prefix NFA intersection.
    #[test]
    fn prefix_matcher_equals_nfa(useed in any::<u64>(), rseed in any::<u64>()) {
        let u = small_pattern(useed, false);
        let r = small_pattern(rseed, false);
        let pm = matching::PrefixMatcher::new(&u, &r);
        let k = matching::spine_nodes(&r).len();
        for j in 1..=k {
            let prefix = matching::read_prefix(&r, j);
            prop_assert_eq!(pm.strong(j), matching::match_strong(&u, &prefix));
            prop_assert_eq!(pm.weak(j), matching::match_weak(&u, &prefix));
        }
    }

    /// Weak matching is implied by strong matching.
    #[test]
    fn strong_implies_weak(aseed in any::<u64>(), bseed in any::<u64>()) {
        let a = small_pattern(aseed, false);
        let b = small_pattern(bseed, false);
        if matching::match_strong(&a, &b) {
            prop_assert!(matching::match_weak(&a, &b));
        }
    }

    /// The PTIME read-insert detector agrees with bounded brute force:
    /// a found witness implies the detector fires; detector silence
    /// implies no small witness.
    #[test]
    fn linear_insert_detector_vs_brute(
        rseed in any::<u64>(),
        iseed in any::<u64>(),
        xseed in any::<u64>(),
    ) {
        let r = Read::new(small_pattern(rseed, false));
        let ipat = small_pattern(iseed, false);
        let x = small_tree(xseed, 2);
        let i = Insert::new(ipat, x);
        let u = Update::Insert(i.clone());
        for sem in [Semantics::Node, Semantics::Tree] {
            let fast = detect::read_insert_conflict(&r, &i, sem).unwrap();
            let slow = brute::find_witness(&r, &u, sem, brute::Budget {
                max_nodes: 4,
                max_trees: 500_000,
            });
            match slow {
                brute::SearchOutcome::Conflict(w) => {
                    prop_assert!(fast,
                        "witness {:?} found but detector silent ({:?}, read {}, ins {})",
                        w, sem, r.pattern(), i.pattern());
                }
                brute::SearchOutcome::NoConflictWithin(_) => {
                    // Detector may still answer "conflict" if all
                    // witnesses are larger than 4 nodes; nothing to check.
                }
                brute::SearchOutcome::BudgetExceeded(_)
                | brute::SearchOutcome::DeadlineExceeded => {}
            }
        }
    }

    /// Same for read-delete.
    #[test]
    fn linear_delete_detector_vs_brute(
        rseed in any::<u64>(),
        dseed in any::<u64>(),
    ) {
        let r = Read::new(small_pattern(rseed, false));
        let mut rng = SmallRng::seed_from_u64(dseed);
        let dpat = random_delete_pattern(&mut rng, &PatternParams::linear(3));
        let d = Delete::new(dpat).unwrap();
        let u = Update::Delete(d.clone());
        for sem in [Semantics::Node, Semantics::Tree] {
            let fast = detect::read_delete_conflict(&r, &d, sem).unwrap();
            let slow = brute::find_witness(&r, &u, sem, brute::Budget {
                max_nodes: 4,
                max_trees: 500_000,
            });
            if let brute::SearchOutcome::Conflict(w) = slow {
                prop_assert!(fast,
                    "witness {:?} found but detector silent ({:?}, read {}, del {})",
                    w, sem, r.pattern(), d.pattern());
            }
        }
    }

    /// TWO-SIDED detector validation (the strongest property here): for
    /// random linear instances, the PTIME detector says "conflict" iff a
    /// concrete witness can be constructed — and every constructed
    /// witness passes the Lemma 1 checker. Soundness and completeness in
    /// one property, for both update kinds and all three semantics.
    #[test]
    fn detector_iff_constructible_witness(
        rseed in any::<u64>(),
        useed in any::<u64>(),
        xseed in any::<u64>(),
        kind in 0u8..2,
    ) {
        use cxu::core::construct;
        use cxu::witness::witnesses_update_conflict;
        let r = Read::new(small_pattern(rseed, false));
        let u = if kind == 0 {
            let x = small_tree(xseed, 2);
            Update::Insert(Insert::new(small_pattern(useed, false), x))
        } else {
            let mut rng = SmallRng::seed_from_u64(useed);
            let dpat = random_delete_pattern(&mut rng, &PatternParams::linear(3));
            Update::Delete(Delete::new(dpat).unwrap())
        };
        for sem in Semantics::ALL {
            let says = detect::read_update_conflict(&r, &u, sem).unwrap();
            let witness = construct::construct_witness(&r, &u, sem);
            prop_assert_eq!(
                says,
                witness.is_some(),
                "detector {} vs witness {:?} ({:?}, read {}, update {:?})",
                says, witness, sem, r.pattern(), u
            );
            if let Some(w) = witness {
                prop_assert!(witnesses_update_conflict(&r, &u, &w, sem));
            }
        }
    }

    /// Same property with BRANCHING update patterns (Corollaries 1–2).
    #[test]
    fn detector_iff_witness_branching_update(
        rseed in any::<u64>(),
        useed in any::<u64>(),
    ) {
        use cxu::core::construct;
        use cxu::witness::witnesses_update_conflict;
        let r = Read::new(small_pattern(rseed, false));
        let upat = small_pattern(useed, true);
        let u = Update::Insert(Insert::new(upat, small_tree(useed ^ 1, 2)));
        let says = detect::read_update_conflict(&r, &u, Semantics::Node).unwrap();
        let witness = construct::construct_witness(&r, &u, Semantics::Node);
        prop_assert_eq!(says, witness.is_some(),
            "read {} update {:?}", r.pattern(), u);
        if let Some(w) = witness {
            prop_assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
        }
    }

    /// Homomorphism is sound for containment; exact containment admits no
    /// small counterexample.
    #[test]
    fn containment_soundness(aseed in any::<u64>(), bseed in any::<u64>()) {
        let p = small_pattern(aseed, true);
        let q = small_pattern(bseed, true);
        let hom = containment::homomorphism(&p, &q);
        if let Some(exact) = containment::contains_within(&p, &q, 1 << 16) {
            if hom {
                prop_assert!(exact, "hom ⊆ exact violated: {p} vs {q}");
            }
            if exact {
                prop_assert!(
                    containment::find_counterexample(&p, &q, 4).is_none(),
                    "contained but counterexample found: {p} vs {q}"
                );
            }
        }
    }

    /// A containment counterexample refutes exact containment.
    #[test]
    fn counterexample_refutes(aseed in any::<u64>(), bseed in any::<u64>()) {
        let p = small_pattern(aseed, true);
        let q = small_pattern(bseed, true);
        if let Some(w) = containment::find_counterexample(&p, &q, 4) {
            prop_assert!(eval::matches(&p, &w));
            prop_assert!(!eval::matches(&q, &w));
            if let Some(exact) = containment::contains_within(&p, &q, 1 << 16) {
                prop_assert!(!exact);
            }
        }
    }

    /// The linear update-update analysis is sound in both decided
    /// directions: `Commute` verdicts survive bounded counterexample
    /// search, and `Conflict` witnesses really refute commutation.
    #[test]
    fn linear_commutativity_sound(aseed in any::<u64>(), bseed in any::<u64>(), kinds in 0u8..4) {
        use cxu::core::update_update::{commute_on, find_noncommuting_witness, Budget, Outcome};
        use cxu::core::update_update_linear::{commutativity, Commutativity};
        let mk = |seed: u64, deletion: bool| -> Update {
            if deletion {
                let mut rng = SmallRng::seed_from_u64(seed);
                Update::Delete(Delete::new(
                    random_delete_pattern(&mut rng, &PatternParams::linear(3)),
                ).unwrap())
            } else {
                Update::Insert(Insert::new(small_pattern(seed, false), small_tree(seed ^ 3, 2)))
            }
        };
        let u1 = mk(aseed, kinds & 1 != 0);
        let u2 = mk(bseed, kinds & 2 != 0);
        match commutativity(&u1, &u2).expect("linear inputs") {
            Commutativity::Commute => {
                let out = find_noncommuting_witness(&u1, &u2, Budget {
                    max_nodes: 4,
                    max_trees: 400_000,
                });
                prop_assert!(
                    !matches!(out, Outcome::Conflict(_)),
                    "Commute verdict refuted: {:?} vs {:?} ({:?})", u1, u2, out
                );
            }
            Commutativity::Conflict(w) => {
                prop_assert!(!commute_on(&u1, &u2, &w));
            }
            Commutativity::Unknown => {}
        }
    }

    /// XPath surface syntax round-trips: `parse(to_xpath(p))` is
    /// structurally equal to `p` for arbitrary generated patterns.
    #[test]
    fn xpath_roundtrip(seed in any::<u64>(), branching in proptest::bool::ANY) {
        use cxu::pattern::xpath;
        let p = small_pattern(seed, branching);
        let rendered = xpath::to_xpath(&p);
        let q = xpath::parse(&rendered).unwrap_or_else(|e| {
            panic!("rendered form does not parse: {rendered} ({e})")
        });
        prop_assert!(p.structurally_eq(&q), "{} → {} → {}", p, rendered, q);
    }

    /// Lemma 2, randomized: for linear instances, tree conflicts and
    /// value conflicts agree under bounded brute-force search.
    #[test]
    fn lemma2_randomized(rseed in any::<u64>(), useed in any::<u64>(), kind in 0u8..2) {
        let r = Read::new(small_pattern(rseed, false));
        let u = if kind == 0 {
            Update::Insert(Insert::new(small_pattern(useed, false), small_tree(useed ^ 2, 2)))
        } else {
            let mut rng = SmallRng::seed_from_u64(useed);
            Update::Delete(Delete::new(
                random_delete_pattern(&mut rng, &PatternParams::linear(3)),
            ).unwrap())
        };
        let budget = brute::Budget { max_nodes: 4, max_trees: 400_000 };
        let tree_c = brute::find_witness(&r, &u, Semantics::Tree, budget).decided();
        let value_c = brute::find_witness(&r, &u, Semantics::Value, budget).decided();
        if let (Some(t), Some(v)) = (tree_c, value_c) {
            prop_assert_eq!(t, v, "Lemma 2 violated: read {} update {:?}", r.pattern(), u);
        }
    }

    /// §6 / Amer-Yahia et al.: for the star-free fragment P^{//,[]} the
    /// polynomial homomorphism test is *complete* — it agrees with the
    /// exact canonical-model procedure on random star-free pairs.
    #[test]
    fn homomorphism_complete_without_stars(aseed in any::<u64>(), bseed in any::<u64>()) {
        let starless = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            random_pattern(&mut rng, &PatternParams {
                nodes: 4,
                alphabet: 2,
                wildcard_rate: 0.0,
                branch_rate: 0.4,
                descendant_rate: 0.4,
                ..PatternParams::default()
            })
        };
        let p = starless(aseed);
        let q = starless(bseed);
        if let Some(exact) = containment::contains_within(&p, &q, 1 << 14) {
            prop_assert_eq!(
                containment::homomorphism(&p, &q),
                exact,
                "hom vs exact on star-free pair {} ⊆ {}", p, q
            );
        }
    }

    /// Incremental read maintenance equals full re-evaluation after any
    /// random sequence of updates.
    #[test]
    fn incremental_read_matches_oracle(
        rseed in any::<u64>(),
        tseed in any::<u64>(),
        script in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..6),
    ) {
        use cxu::core::incremental::IncrementalRead;
        let r = Read::new(small_pattern(rseed, false));
        let mut t = small_tree(tseed, 15);
        let mut inc = IncrementalRead::new(r, &t).expect("linear");
        for (useed, is_insert) in script {
            if is_insert {
                let i = Insert::new(small_pattern(useed, false), small_tree(useed ^ 5, 2));
                inc.apply_insert(&mut t, &i);
            } else {
                let mut rng = SmallRng::seed_from_u64(useed);
                let d = Delete::new(
                    random_delete_pattern(&mut rng, &PatternParams::linear(3)),
                ).unwrap();
                inc.apply_delete(&mut t, &d);
            }
            let oracle = eval::eval(inc.read().pattern(), &t);
            prop_assert_eq!(
                inc.result(),
                oracle.as_slice(),
                "incremental drifted from oracle"
            );
        }
    }

    /// Minimization is equivalence-preserving: the minimized pattern
    /// computes the same result set as the original on every small tree.
    #[test]
    fn minimize_preserves_results(seed in any::<u64>(), n in 1usize..20) {
        use cxu::pattern::minimize::minimize;
        let p = small_pattern(seed, true);
        let m = minimize(&p, 1 << 14);
        prop_assert!(m.len() <= p.len());
        let t = small_tree(seed ^ 0x99, n);
        prop_assert_eq!(
            eval::eval(&p, &t),
            eval::eval(&m, &t),
            "minimize changed semantics: {} → {}", p, m
        );
    }

    /// Result containment is refuted by brute force exactly when the
    /// canonical-model procedure says "not contained" with a small
    /// counterexample available.
    #[test]
    fn result_containment_vs_brute(aseed in any::<u64>(), bseed in any::<u64>(), n in 1usize..16) {
        let p = small_pattern(aseed, true);
        let q = small_pattern(bseed, true);
        if let Some(exact) = containment::result_contains(&p, &q, 1 << 12) {
            // Probe a random tree: any node in ⟦p⟧ \ ⟦q⟧ refutes.
            let t = small_tree(aseed ^ bseed, n);
            let pe = eval::eval(&p, &t);
            let qe = eval::eval(&q, &t);
            let refuted = pe.iter().any(|x| !qe.contains(x));
            if refuted {
                prop_assert!(!exact, "{} ⊑res {} refuted by {:?}", p, q, t);
            }
        }
    }

    /// Isomorphism is invariant under child-order shuffling and detects
    /// label edits.
    #[test]
    fn iso_invariants(seed in any::<u64>(), n in 2usize..20) {
        use cxu::tree::iso;
        let t = small_tree(seed, n);
        // Rebuild the same tree through the canonical text form (which
        // sorts children): must stay isomorphic.
        let rebuilt = cxu::tree::text::parse(&cxu::tree::text::to_text(&t)).unwrap();
        prop_assert!(iso::isomorphic(&t, &rebuilt));
        // Grafting one extra node breaks isomorphism.
        let mut bigger = t.clone();
        let fresh = cxu::tree::Tree::new(Symbol::intern("iso-breaker"));
        let root = bigger.root();
        bigger.graft(root, &fresh);
        prop_assert!(!iso::isomorphic(&t, &bigger));
    }

    /// Insert then eval: the paper's §3 semantics — evaluation points are
    /// computed before grafting, and applying the same insert twice keeps
    /// adding disjoint copies.
    #[test]
    fn insert_semantics_invariants(tseed in any::<u64>(), iseed in any::<u64>(), n in 1usize..20) {
        let t = small_tree(tseed, n);
        let ipat = small_pattern(iseed, false);
        let x = small_tree(iseed.wrapping_add(1), 2);
        let i = Insert::new(ipat, x);
        let before = t.live_count();
        let (t1, points) = i.apply_to_copy(&t);
        prop_assert_eq!(t1.live_count(), before + points.len() * 2);
        // Original untouched.
        prop_assert_eq!(t.live_count(), before);
        // All insertion points were nodes of the original tree.
        for &p in &points {
            prop_assert!(t.is_alive(p));
        }
    }

    /// Delete semantics: points are removed along with their subtrees;
    /// deleting twice is idempotent.
    #[test]
    fn delete_semantics_invariants(tseed in any::<u64>(), dseed in any::<u64>(), n in 1usize..20) {
        let t = small_tree(tseed, n);
        let mut rng = SmallRng::seed_from_u64(dseed);
        let dpat = random_delete_pattern(&mut rng, &PatternParams::linear(3));
        let d = Delete::new(dpat).unwrap();
        let (t1, points) = d.apply_to_copy(&t);
        for &p in &points {
            prop_assert!(!t1.is_alive(p), "deletion point survived");
        }
        prop_assert!(t1.is_alive(t1.root()));
        let (t2, points2) = d.apply_to_copy(&t1);
        prop_assert!(points2.is_empty() || points2.iter().all(|&p| t1.is_alive(p)));
        // Idempotence at the value level: deleting again changes nothing
        // (all matching subtrees are already gone) — unless the pattern
        // can re-match structure revealed by deletion, which cannot
        // happen: deletion only removes nodes.
        prop_assert_eq!(t2.live_count(), t1.live_count());
    }
}

/// Non-proptest spot check: the detectors never panic on big generated
/// instances (smoke for the O(·) claims).
#[test]
fn detectors_handle_large_linear_patterns() {
    let mut rng = SmallRng::seed_from_u64(99);
    let r = Read::new(random_pattern(&mut rng, &PatternParams::linear(200)));
    let i = Insert::new(
        random_pattern(&mut rng, &PatternParams::linear(200)),
        random_tree(
            &mut rng,
            &TreeParams {
                nodes: 50,
                ..Default::default()
            },
        ),
    );
    let _ = detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap();
    let d = Delete::new({
        let mut rng2 = SmallRng::seed_from_u64(100);
        random_delete_pattern(&mut rng2, &PatternParams::linear(200))
    })
    .unwrap();
    let _ = detect::read_delete_conflict(&r, &d, Semantics::Node).unwrap();
}
