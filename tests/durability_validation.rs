//! Validation of the durability subsystem (`cxu-store`'s WAL,
//! snapshots, and recovery):
//!
//! * **Recovery equivalence** — 200 seeds: a random op sequence runs
//!   against a WAL-backed store, the process "dies" (the store is
//!   dropped without compaction) and its log is truncated at a random
//!   record boundary with a torn fragment of the next record appended;
//!   the recovered store must equal, document for document and
//!   revision for revision, an in-memory store that replayed exactly
//!   the durable prefix of commits. Winners, tombstones, parents,
//!   content, the changes feed, and the sequence counter all agree.
//! * **Torn-tail rule** — the appended mid-record fragment is
//!   discarded and reported, never an error; mid-log corruption (a
//!   flipped body byte with records following) refuses to open.
//! * **Snapshot compaction** — with `snapshot_every = 4` the log stays
//!   bounded, recovery loads the snapshot and replays only the tail,
//!   and the recovered state still equals the live fingerprint.
//!
//! Serialized on one mutex: store metrics are process-global.

use cxu::gen::rng::{Rng, SplitMix64};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::ops::{Insert, Update};
use cxu::prelude::*;
use cxu::sched::{Deadline, Op, SchedConfig, Scheduler};
use cxu::store::wal::WAL_FILE;
use cxu::store::{
    DurabilityConfig, FsyncPolicy, PutPayload, PutResult, RevId, Store, StoreConfig, StoreError,
};
use cxu::tree::text;
use std::path::PathBuf;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cxu-durval-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

fn sched_check<'a>(
    sched: &'a mut Scheduler,
) -> impl FnMut(&Op, &Op) -> cxu::sched::PairDecision + 'a {
    let deadline = Deadline::never();
    move |a: &Op, b: &Op| sched.check_pair(a, b, &deadline)
}

/// One abstract operation of the random workload. Base revisions are
/// *indices into the document's known-revision list*, so the same
/// script replays identically against any store that executes the same
/// prefix — which is exactly what the equivalence check needs.
#[derive(Clone, Debug)]
enum Script {
    Create {
        doc: usize,
        content: Tree,
    },
    Put {
        doc: usize,
        update: Update,
        base: usize,
    },
    Delete {
        doc: usize,
        base: usize,
    },
}

fn random_script(rng: &mut SplitMix64, docs: usize, len: usize) -> Vec<Script> {
    let tparams = TreeParams {
        nodes: 8,
        alphabet: 5,
        ..TreeParams::default()
    };
    let mut out = Vec::with_capacity(len);
    for d in 0..docs {
        out.push(Script::Create {
            doc: d,
            content: random_tree(rng, &tparams),
        });
    }
    let labels = ["a", "b", "c", "d", "e"];
    for _ in 0..len {
        let doc = rng.gen_range(0..docs);
        let base = rng.gen_range(0..64); // resolved mod known-revs at run time
        if rng.gen_bool(0.12) {
            out.push(Script::Delete { doc, base });
        } else {
            // Small seeded inserts at varying depths: shallow paths hit
            // the applied rung, stale bases exercise merge vs branch.
            let path = match rng.gen_range(0..3) {
                0 => labels[rng.gen_range(0..labels.len())].to_string(),
                1 => format!(
                    "{}/{}",
                    labels[rng.gen_range(0..labels.len())],
                    labels[rng.gen_range(0..labels.len())]
                ),
                _ => format!(
                    "{}//{}",
                    labels[rng.gen_range(0..labels.len())],
                    labels[rng.gen_range(0..labels.len())]
                ),
            };
            let sub = text::parse(labels[rng.gen_range(0..labels.len())]).unwrap();
            let Ok(pattern) = cxu::pattern::xpath::parse(&path) else {
                continue;
            };
            out.push(Script::Put {
                doc,
                update: Update::Insert(Insert::new(pattern, sub)),
                base,
            });
        }
    }
    out
}

/// Executes `script` against `store`, stopping after `max_commits`
/// successful commits (`None` = run everything). Returns how many
/// commits actually landed. Known-revision lists grow deterministically
/// (every minted rev appends), so base selection replays exactly.
fn run_script(
    store: &Store,
    script: &[Script],
    max_commits: Option<u64>,
) -> Result<u64, StoreError> {
    let mut sched = Scheduler::new(SchedConfig {
        jobs: 1,
        ..SchedConfig::default()
    });
    let mut check = sched_check(&mut sched);
    let mut known: Vec<Vec<RevId>> = Vec::new();
    let mut commits = 0u64;
    for op in script {
        if let Some(cap) = max_commits {
            if commits >= cap {
                break;
            }
        }
        let outcome = match op {
            Script::Create { doc, content } => {
                while known.len() <= *doc {
                    known.push(Vec::new());
                }
                store.put(
                    &format!("doc-{doc}"),
                    None,
                    PutPayload::Content(content.clone()),
                    &mut check,
                )
            }
            Script::Put { doc, update, base } => {
                let revs = &known[*doc];
                if revs.is_empty() {
                    continue;
                }
                let base_rev = revs[base % revs.len()];
                store.put(
                    &format!("doc-{doc}"),
                    Some(base_rev),
                    PutPayload::Op(update.clone()),
                    &mut check,
                )
            }
            Script::Delete { doc, base } => {
                let revs = &known[*doc];
                if revs.is_empty() {
                    continue;
                }
                store.delete(&format!("doc-{doc}"), revs[base % revs.len()])
            }
        };
        match outcome {
            Ok(o) if o.result != PutResult::Noop => {
                commits += 1;
                let doc = match op {
                    Script::Create { doc, .. }
                    | Script::Put { doc, .. }
                    | Script::Delete { doc, .. } => *doc,
                };
                known[doc].push(o.rev);
            }
            Ok(_) => {} // noop: nothing minted, nothing logged
            Err(StoreError::Io(_)) | Err(StoreError::Corrupt(_)) => {
                return outcome.map(|_| 0); // durability failures are test bugs
            }
            Err(_) => {} // rejection: an answer, not a commit
        }
    }
    Ok(commits)
}

/// Full state fingerprint: every document's sorted revision set plus
/// winner, the changes feed, and the sequence counter.
#[allow(clippy::type_complexity)]
fn fingerprint(
    store: &Store,
    docs: usize,
) -> (
    Vec<Option<Vec<(RevId, Option<RevId>, bool, Option<String>)>>>,
    Vec<Option<(RevId, bool)>>,
    Vec<(u64, String, RevId, bool)>,
    u64,
) {
    let revs: Vec<_> = (0..docs)
        .map(|d| store.doc_revs(&format!("doc-{d}")))
        .collect();
    let winners: Vec<_> = (0..docs)
        .map(|d| {
            store
                .get(&format!("doc-{d}"), None, false)
                .ok()
                .map(|g| (g.rev, g.deleted))
        })
        .collect();
    let (changes, _) = store.changes(0, None);
    let feed: Vec<_> = changes
        .into_iter()
        .map(|e| (e.seq, e.doc, e.rev, e.deleted))
        .collect();
    (revs, winners, feed, store.current_seq())
}

/// The tentpole property: recovery from a crash-truncated log equals
/// an in-memory store that executed exactly the durable prefix.
#[test]
fn recovered_state_equals_in_memory_prefix_across_200_seeds() {
    let _g = lock();
    const DOCS: usize = 3;
    for seed in 0..200u64 {
        let mut rng = SplitMix64::seed_from_u64(0xD0C5_0000 ^ seed);
        let script = random_script(&mut rng, DOCS, 24);
        let dir = tempdir(&format!("prefix-{seed}"));

        // Run everything durably, then "crash" (drop without compact).
        let dcfg = DurabilityConfig {
            dir: dir.clone(),
            fsync: FsyncPolicy::Never, // speed; Drop's best-effort sync still runs
            snapshot_every: 0,         // keep record == commit over the whole log
        };
        let store = Store::open(StoreConfig::default(), dcfg.clone()).expect("open fresh");
        let total_commits = run_script(&store, &script, None).expect("durable run");
        store.flush().expect("flush before the staged crash");
        drop(store);

        // Truncate the log at a random record boundary and append a
        // torn fragment of the next record.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).expect("read wal");
        let scan = cxu::store::wal::scan(&bytes).expect("clean log scans");
        assert_eq!(
            scan.records.len() as u64,
            total_commits,
            "seed {seed}: one WAL record per commit"
        );
        let keep = rng.gen_range(0..scan.records.len() + 1) as u64;
        let cut = if keep == total_commits {
            bytes.len()
        } else {
            scan.offsets[keep as usize] as usize
        };
        let mut image = bytes[..cut].to_vec();
        let mut torn = 0usize;
        if cut < bytes.len() {
            // 1..header+body-1 bytes of the next frame: always torn.
            let next_len = bytes.len().min(cut + 96) - cut;
            torn = 1 + rng.gen_range(0..next_len.max(2) - 1);
            image.extend_from_slice(&bytes[cut..cut + torn]);
        }
        std::fs::write(&wal_path, &image).expect("write truncated wal");

        // Recover, and build the oracle at the same commit prefix.
        let recovered = Store::open(StoreConfig::default(), dcfg).expect("recover");
        let report = recovered.recovery_report().expect("durable stores report");
        assert_eq!(
            report.replayed_records, keep,
            "seed {seed}: replay count is the durable prefix"
        );
        assert_eq!(
            report.torn_bytes, torn as u64,
            "seed {seed}: the torn fragment is discarded and counted"
        );
        let oracle = Store::new(StoreConfig::default());
        let oracle_commits = run_script(&oracle, &script, Some(keep)).expect("oracle run");
        assert_eq!(
            oracle_commits, keep,
            "seed {seed}: oracle reaches the prefix"
        );

        assert_eq!(
            fingerprint(&recovered, DOCS),
            fingerprint(&oracle, DOCS),
            "seed {seed}: recovered state diverges from the durable prefix"
        );
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Mid-log corruption — a flipped byte with valid records following —
/// must refuse to open, not silently drop a prefix the server acked.
#[test]
fn mid_log_corruption_fails_loudly() {
    let _g = lock();
    let dir = tempdir("midlog");
    let dcfg = DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Never,
        snapshot_every: 0,
    };
    let store = Store::open(StoreConfig::default(), dcfg.clone()).expect("open fresh");
    let mut rng = SplitMix64::seed_from_u64(99);
    let script = random_script(&mut rng, 2, 12);
    let commits = run_script(&store, &script, None).expect("run");
    assert!(commits >= 3, "need a few records to corrupt the middle");
    store.flush().expect("flush");
    drop(store);

    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).expect("read wal");
    let scan = cxu::store::wal::scan(&bytes).expect("clean scan");
    // Flip one byte inside the FIRST record's body: checksum mismatch
    // with records following.
    let target = scan.offsets[0] as usize + 12 + 2;
    bytes[target] ^= 0x5A;
    std::fs::write(&wal_path, &bytes).expect("write corrupted wal");

    match Store::open(StoreConfig::default(), dcfg) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(
                msg.contains("checksum"),
                "corruption reason names the checksum: {msg}"
            );
        }
        Err(other) => panic!("mid-log corruption must refuse to open, got {other:?}"),
        Ok(_) => panic!("mid-log corruption must refuse to open, but it opened"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compaction keeps the log bounded and recovery snapshot-first: after
/// `snapshot_every = 4` the WAL holds only the records since the last
/// snapshot, and reopening replays just that tail — with the exact
/// same resulting state.
#[test]
fn snapshot_compaction_bounds_the_log_and_recovery() {
    let _g = lock();
    const DOCS: usize = 2;
    let dir = tempdir("compact");
    let dcfg = DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Never,
        snapshot_every: 4,
    };
    let store = Store::open(StoreConfig::default(), dcfg.clone()).expect("open fresh");
    let mut rng = SplitMix64::seed_from_u64(4242);
    let script = random_script(&mut rng, DOCS, 30);
    let commits = run_script(&store, &script, None).expect("run");
    assert!(commits > 8, "workload must cross several compaction points");
    assert!(
        store.wal_records() < commits,
        "compaction must have drained the log at least once \
         ({} records for {commits} commits)",
        store.wal_records()
    );
    let live = fingerprint(&store, DOCS);
    let tail = store.wal_records();
    store.flush().expect("flush");
    drop(store);

    let recovered = Store::open(StoreConfig::default(), dcfg).expect("recover");
    let report = recovered.recovery_report().expect("report");
    assert!(report.snapshot_loaded, "recovery must be snapshot-first");
    assert_eq!(
        report.replayed_records, tail,
        "recovery replays only the post-snapshot tail"
    );
    assert_eq!(
        fingerprint(&recovered, DOCS),
        live,
        "snapshot + tail reconstruct the live state exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful shutdown (flush + compact) leaves a log the next boot
/// replays nothing from — recovery cost is bounded by the snapshot.
#[test]
fn graceful_compact_leaves_an_empty_log() {
    let _g = lock();
    let dir = tempdir("graceful");
    let dcfg = DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        snapshot_every: 0,
    };
    let store = Store::open(StoreConfig::default(), dcfg.clone()).expect("open fresh");
    let mut rng = SplitMix64::seed_from_u64(7);
    let script = random_script(&mut rng, 2, 10);
    run_script(&store, &script, None).expect("run");
    let live = fingerprint(&store, 2);
    store.flush().expect("flush");
    store.compact().expect("compact");
    assert_eq!(store.wal_records(), 0, "compaction resets the log");
    drop(store);

    let recovered = Store::open(StoreConfig::default(), dcfg).expect("recover");
    let report = recovered.recovery_report().expect("report");
    assert_eq!(report.replayed_records, 0, "nothing to replay");
    assert!(report.snapshot_loaded);
    assert_eq!(fingerprint(&recovered, 2), live);
    let _ = std::fs::remove_dir_all(&dir);
}
