//! Differential validation of the structural index (PR 9).
//!
//! Three equivalences, each over seeded generated corpora:
//!
//! 1. index-backed pattern evaluation ≡ the tree-walk evaluator
//!    (`cxu_pattern::eval::eval`) — 600 seeds, mixed linear/branching;
//! 2. `detect_grounded` ≡ the Lemma 1 tree-walk witness check
//!    (`witnesses_update_conflict`) across all three semantics — 600
//!    seeds × insert/delete × {node, tree, value};
//! 3. the streaming reader round-trips: `parse_stream(to_xml(t))` is
//!    isomorphic to `t` on an attribute/text/entity-heavy corpus, and
//!    `DocIndex::from_xml` ≡ `DocIndex::from_tree ∘ parse_stream`.

use cxu::gen::rng::{Rng, SplitMix64};
use cxu::gen::{patterns, trees};
use cxu::index::{detect_grounded, DocIndex};
use cxu::ops::witness::witnesses_update_conflict;
use cxu::prelude::*;
use cxu::tree::{iso, xml, NodeId, Tree};

fn tree_params(rng: &mut SplitMix64) -> trees::TreeParams {
    trees::TreeParams {
        nodes: 1 + rng.gen_range(0..60),
        alphabet: 1 + rng.gen_range(0..4),
        labels: Vec::new(),
        deep_bias: (rng.gen_range(0..10) as f64) / 10.0,
    }
}

fn pattern_params(rng: &mut SplitMix64, tp: &trees::TreeParams) -> patterns::PatternParams {
    patterns::PatternParams {
        nodes: 1 + rng.gen_range(0..6),
        alphabet: tp.alphabet,
        labels: Vec::new(),
        wildcard_rate: 0.2,
        descendant_rate: 0.4,
        branch_rate: if rng.gen_bool(0.5) { 0.0 } else { 0.5 },
    }
}

fn index_eval_ids(p: &Pattern, t: &Tree, idx: &DocIndex) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = cxu::index::eval::eval(p, idx)
        .into_iter()
        .map(|u| {
            idx.node_at(u)
                .expect("from_tree index maps every position to a node")
        })
        .collect();
    ids.sort_unstable();
    let _ = t;
    ids
}

#[test]
fn index_eval_matches_tree_walk_on_600_seeds() {
    for seed in 0..600u64 {
        let mut rng = SplitMix64::seed_from_u64(0xE7A1 ^ seed);
        let tp = tree_params(&mut rng);
        let t = trees::random_tree(&mut rng, &tp);
        let idx = DocIndex::from_tree(&t);
        let pp = pattern_params(&mut rng, &tp);
        for _ in 0..3 {
            let p = patterns::random_pattern(&mut rng, &pp);
            let via_index = index_eval_ids(&p, &t, &idx);
            let via_walk = cxu::pattern::eval::eval(&p, &t);
            assert_eq!(via_index, via_walk, "seed {seed}: pattern {p:?}");
        }
    }
}

#[test]
fn grounded_check_matches_witness_walk_on_600_seeds() {
    let mut disagreements = 0u32;
    for seed in 0..600u64 {
        let mut rng = SplitMix64::seed_from_u64(0x6D0C ^ seed);
        let tp = tree_params(&mut rng);
        let t = trees::random_tree(&mut rng, &tp);
        let idx = DocIndex::from_tree(&t);
        let pp = pattern_params(&mut rng, &tp);
        let read = Read::new(patterns::random_pattern(&mut rng, &pp));
        let update = if rng.gen_bool(0.5) {
            let xp = trees::TreeParams {
                nodes: 1 + rng.gen_range(0..5),
                ..tp.clone()
            };
            let x = trees::random_tree(&mut rng, &xp);
            Update::Insert(Insert::new(patterns::random_pattern(&mut rng, &pp), x))
        } else {
            Update::Delete(
                Delete::new(patterns::random_delete_pattern(&mut rng, &pp))
                    .expect("random_delete_pattern guarantees output != root"),
            )
        };
        for sem in Semantics::ALL {
            let walked = witnesses_update_conflict(&read, &update, &t, sem);
            let grounded = detect_grounded(&read, &update, &t, &idx, sem);
            if walked != grounded {
                disagreements += 1;
                eprintln!(
                    "seed {seed} {sem:?}: grounded={grounded} walked={walked}\n  read {:?}\n  update {update:?}",
                    read.pattern()
                );
            }
        }
    }
    assert_eq!(disagreements, 0, "grounded/tree-walk disagreements");
}

/// The attribute/text/entity-heavy corpus from the tree crate's fuzz
/// suite, driven by the shared workspace PRNG.
fn random_document(rng: &mut SplitMix64) -> Tree {
    const POOL: &[char] = &[
        '<', '>', '&', '"', '\'', ' ', '\t', '\n', 'x', 'y', '7', '\u{e9}', '\u{3}',
    ];
    fn rand_text(rng: &mut SplitMix64) -> String {
        (0..1 + rng.gen_range(0..6))
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect()
    }
    fn grow(t: &mut Tree, at: NodeId, depth: usize, rng: &mut SplitMix64) {
        if rng.gen_bool(0.5) {
            let label = format!("@k{}={}", rng.gen_range(0..3), rand_text(rng));
            t.build_child(at, label.as_str());
        }
        if rng.gen_bool(0.5) {
            t.build_child(at, format!("#text={}", rand_text(rng)).as_str());
        }
        if depth < 4 {
            for _ in 0..rng.gen_range(0..3) {
                let c = t.build_child(at, ["a", "b", "c"][rng.gen_range(0..3)]);
                grow(t, c, depth + 1, rng);
            }
        }
    }
    let mut t = Tree::new("root");
    let root = t.root();
    grow(&mut t, root, 0, rng);
    t
}

#[test]
fn streaming_reader_roundtrips_the_xml_corpus() {
    let mut rng = SplitMix64::seed_from_u64(0x57_2EA8);
    for case in 0..300 {
        let t = random_document(&mut rng);
        let src = xml::to_xml(&t);
        let t2 = xml::parse_stream(&src).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        assert!(iso::isomorphic(&t, &t2), "case {case}:\n{src}");
    }
}

#[test]
fn streamed_index_equals_tree_index_on_the_corpus() {
    let mut rng = SplitMix64::seed_from_u64(0xD0C5);
    for case in 0..200 {
        let t = random_document(&mut rng);
        let src = xml::to_xml(&t);
        let streamed = DocIndex::from_xml(&src).unwrap_or_else(|e| panic!("case {case}: {e}"));
        let parsed = DocIndex::from_tree(&xml::parse_stream(&src).unwrap());
        assert_eq!(streamed.len(), parsed.len(), "case {case}");
        for u in 0..streamed.len() as u32 {
            assert_eq!(streamed.label(u), parsed.label(u), "case {case} label {u}");
            assert_eq!(
                streamed.parent(u),
                parsed.parent(u),
                "case {case} parent {u}"
            );
            assert_eq!(streamed.end(u), parsed.end(u), "case {case} end {u}");
            assert_eq!(streamed.code(u), parsed.code(u), "case {case} code {u}");
        }
    }
}

#[test]
fn grounded_check_on_streamed_multi_kb_document() {
    // A grounded check against an index built straight from XML bytes:
    // the document never exists as a parsed tree on the check path.
    let mut rng = SplitMix64::seed_from_u64(7);
    let t = trees::random_tree(
        &mut rng,
        &trees::TreeParams {
            nodes: 5000,
            alphabet: 6,
            labels: Vec::new(),
            deep_bias: 0.4,
        },
    );
    let src = xml::to_xml(&t);
    assert!(src.len() > 10_000);
    let idx = DocIndex::from_xml(&src).unwrap();
    assert_eq!(idx.len(), 5000);
    let doc = xml::parse_stream(&src).unwrap();
    let read = Read::new(cxu::pattern::xpath::parse("l0//l1").unwrap());
    let del = Update::Delete(Delete::new(cxu::pattern::xpath::parse("l0//l1/*").unwrap()).unwrap());
    for sem in Semantics::ALL {
        // `doc` was re-parsed from the same bytes, so node identities line
        // up with preorder positions for the witness comparison.
        let idx2 = DocIndex::from_tree(&doc);
        assert_eq!(
            detect_grounded(&read, &del, &doc, &idx2, sem),
            witnesses_update_conflict(&read, &del, &doc, sem),
            "{sem:?}"
        );
        let _ = &idx;
    }
}
