//! End-to-end validation of the `cxu-sched` subsystem.
//!
//! Three independent checks, all against sources of truth *outside* the
//! scheduler:
//!
//! 1. **Observational soundness** — on random programs, executing the
//!    schedule with random intra-round orders is observationally
//!    equivalent to serial execution (the `gen::program` interpreter is
//!    the oracle).
//! 2. **Detector agreement** — conflict-graph verdicts agree with
//!    calling the underlying detectors (`detect::read_update_conflict`,
//!    `update_update_linear::commutativity`) directly.
//! 3. **Cache transparency** — memoized verdicts are identical to
//!    uncached ones, and repeated-shape batches actually hit the cache.
//!
//! Seeded `SplitMix64` throughout: deterministic, no external crates.

use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, Program, ProgramParams, Stmt};
use cxu::gen::rng::{Rng, SplitMix64};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::prelude::*;
use cxu::sched::validate::schedule_preserves_observation;
use cxu::sched::{analyze_pair, Detector, Op, SchedConfig, Scheduler};

fn sched_cfg() -> SchedConfig {
    SchedConfig {
        semantics: Semantics::Value,
        jobs: 1,
        // Keep NP-side instances cheap: oversized ones go conservative,
        // which is exactly what soundness validation should exercise.
        np_max_trees: 300,
        ..SchedConfig::default()
    }
}

fn program_params(branching: bool) -> ProgramParams {
    ProgramParams {
        len: 6,
        update_rate: 0.5,
        delete_rate: 0.4,
        pattern: PatternParams {
            nodes: 3,
            alphabet: 3,
            branch_rate: if branching { 0.4 } else { 0.0 },
            ..PatternParams::default()
        },
    }
}

fn doc_for(rng: &mut SplitMix64) -> cxu::tree::Tree {
    random_tree(
        rng,
        &TreeParams {
            nodes: 8,
            alphabet: 3,
            ..TreeParams::default()
        },
    )
}

fn shuffled(rng: &mut SplitMix64, len: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    perm
}

/// Acceptance: intra-round reordering is observationally equivalent to
/// serial execution on ≥ 1000 random programs (linear and branching).
#[test]
fn intra_round_reordering_is_observationally_serial() {
    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    let mut checked = 0usize;
    // One scheduler across all programs: recurring shapes hit the memo
    // cache, which is both the intended usage and what keeps 1000
    // programs fast.
    let mut scheduler = Scheduler::new(sched_cfg());
    for case in 0..1000 {
        let branching = case % 4 == 3;
        let p = random_program(&mut rng, &program_params(branching));
        let doc = doc_for(&mut rng);
        let out = scheduler.run_program(&p);
        // Two random intra-round orders per program.
        for _ in 0..2 {
            let intra: Vec<Vec<usize>> = out
                .schedule
                .rounds
                .iter()
                .map(|r| shuffled(&mut rng, r.len()))
                .collect();
            assert!(
                schedule_preserves_observation(&p, &out.schedule, &intra, &doc),
                "case {case}: schedule {:?} broke observational equivalence \
                 for program {:?} on doc {}",
                out.schedule.rounds,
                p.stmts.iter().map(|s| format!("{s:?}")).collect::<Vec<_>>(),
                cxu::tree::text::to_text(&doc),
            );
            checked += 1;
        }
    }
    assert!(checked >= 2000);
}

/// Acceptance: a generated 200-op program schedules into rounds that are
/// pairwise conflict-free and cover every op exactly once.
#[test]
fn two_hundred_op_program_gets_conflict_free_rounds() {
    let mut rng = SplitMix64::seed_from_u64(42);
    let p = random_program(
        &mut rng,
        &ProgramParams {
            len: 200,
            update_rate: 0.5,
            delete_rate: 0.4,
            // A wider alphabet: fewer overlapping update pairs, so most
            // pairs take the PTIME fast path and the batch stays quick.
            pattern: PatternParams {
                nodes: 3,
                alphabet: 5,
                branch_rate: 0.0,
                ..PatternParams::default()
            },
        },
    );
    let out = Scheduler::new(sched_cfg()).run_program(&p);
    let mut seen = [false; 200];
    for round in &out.schedule.rounds {
        for (i, &a) in round.iter().enumerate() {
            assert!(
                !std::mem::replace(&mut seen[a], true),
                "op {a} scheduled twice"
            );
            for &b in &round[i + 1..] {
                assert!(
                    !out.graph.conflict(a, b),
                    "ops {a} and {b} share a round but conflict"
                );
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "every op is scheduled");
    assert!(out.stats.rounds >= 1);
}

fn random_ops(rng: &mut SplitMix64, n: usize, branching: bool) -> Vec<Op> {
    let p = random_program(
        rng,
        &ProgramParams {
            len: n,
            ..program_params(branching)
        },
    );
    cxu::sched::ops_of_program(&p)
}

/// The conflict graph agrees with the underlying detectors, pair by
/// pair, on ≥ 1000 random pairs — both against `analyze_pair` (the
/// routing layer, called directly without any interning or caching) and,
/// where a PTIME detector decided, against `detect` / `commutativity`
/// themselves.
#[test]
fn graph_agrees_with_direct_detectors() {
    use cxu::core::update_update::Budget;
    use cxu::core::update_update_linear::{commutativity_with_budget, Commutativity};

    let mut rng = SplitMix64::seed_from_u64(0xDECADE);
    let cfg = sched_cfg();
    let mut compared = 0usize;
    while compared < 1000 {
        let ops = random_ops(&mut rng, 2, compared % 3 == 2);
        let (graph, _) = Scheduler::new(cfg).analyze(&ops);
        let edge = graph.edges()[0];
        if edge.verdict.detector == Detector::Trivial {
            // Read–read or identical keys: justified without detectors.
            assert!(!edge.verdict.conflict);
            continue;
        }
        if edge.verdict.detector == Detector::PrefilterNoConflict {
            // The direct routing layer never takes the engine's batch
            // pre-filter route, so detectors differ by construction —
            // but the answers must agree: prefiltered means provably
            // conflict-free.
            assert!(!edge.verdict.conflict);
            assert!(
                !analyze_pair(&ops[0], &ops[1], &cfg).conflict,
                "prefilter disagrees with direct routing on {:?} / {:?}",
                ops[0],
                ops[1]
            );
            compared += 1;
            continue;
        }
        assert_eq!(
            edge.verdict,
            analyze_pair(&ops[0], &ops[1], &cfg),
            "graph and direct routing disagree on {:?} / {:?}",
            ops[0],
            ops[1]
        );
        match (&ops[0], &ops[1]) {
            (Op::Read(r), Op::Update(u)) | (Op::Update(u), Op::Read(r))
                if r.pattern().is_linear() =>
            {
                let direct = cxu::detect::read_update_conflict(r, u, cfg.semantics).unwrap();
                assert_eq!(edge.verdict.conflict, direct);
                assert_eq!(edge.verdict.detector, Detector::PtimeLinearRead);
            }
            (Op::Update(u1), Op::Update(u2)) => match commutativity_with_budget(
                u1,
                u2,
                Budget {
                    max_nodes: cfg.np_max_nodes,
                    max_trees: cfg.np_max_trees,
                },
            ) {
                Some(Commutativity::Commute) => assert!(!edge.verdict.conflict),
                Some(Commutativity::Conflict(_)) => assert!(edge.verdict.conflict),
                // Unknown or branching: the scheduler must not have
                // parallelized unless a search proved independence.
                _ => {
                    if !edge.verdict.conflict {
                        assert_eq!(edge.verdict.detector, Detector::WitnessSearch);
                    }
                }
            },
            _ => {}
        }
        compared += 1;
    }
}

/// Cached verdicts are bit-identical to uncached ones: a warm scheduler
/// and a cold one produce the same graph on the same batch.
#[test]
fn cached_verdicts_equal_uncached() {
    let mut rng = SplitMix64::seed_from_u64(0xFACADE);
    for case in 0..50 {
        let ops = random_ops(&mut rng, 12, case % 2 == 1);
        let mut warm = Scheduler::new(sched_cfg());
        let (cold_graph, cold_stats) = warm.analyze(&ops);
        // Second run over the same batch: everything non-trivial is a
        // cache hit, and every verdict is unchanged.
        let (warm_graph, warm_stats) = warm.analyze(&ops);
        assert_eq!(warm_stats.pairs_analyzed, 0, "case {case}");
        assert_eq!(
            warm_stats.cache_hits + warm_stats.trivial,
            warm_stats.pairs_total
        );
        assert_eq!(cold_stats.pairs_total, warm_stats.pairs_total);
        for (c, w) in cold_graph.edges().iter().zip(warm_graph.edges()) {
            assert_eq!((c.a, c.b), (w.a, w.b));
            assert_eq!(c.verdict, w.verdict, "case {case}: verdict drifted");
        }
    }
}

/// Acceptance: `SchedStats` reports cache hits on batches with repeated
/// operation shapes.
#[test]
fn repeated_shapes_hit_the_cache() {
    let mut rng = SplitMix64::seed_from_u64(7);
    // A small shape pool repeated across a 60-op batch.
    let pool = random_ops(&mut rng, 6, false);
    let ops: Vec<Op> = (0..60).map(|i| pool[i % pool.len()].clone()).collect();
    let out = Scheduler::new(sched_cfg()).run(&ops);
    assert!(
        out.stats.cache_hits > 0,
        "expected cache hits, got {:?}",
        out.stats
    );
    assert!(out.stats.pairs_analyzed <= pool.len() * (pool.len() - 1) / 2);
    assert_eq!(
        out.stats.trivial
            + out.stats.cache_hits
            + out.stats.pairs_analyzed
            + out.stats.prefilter_skips,
        out.stats.pairs_total
    );
}

/// Acceptance: on a 500-op batch the parallel engine agrees with the
/// single-worker one, and (given >1 CPU) is faster.
#[test]
fn parallel_engine_on_500_op_batch() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    // Diverse patterns so the batch holds many distinct pairs.
    let p = random_program(
        &mut rng,
        &ProgramParams {
            len: 500,
            update_rate: 0.5,
            delete_rate: 0.4,
            pattern: PatternParams {
                nodes: 4,
                alphabet: 6,
                branch_rate: 0.0,
                ..PatternParams::default()
            },
        },
    );
    let run = |jobs: usize| {
        let cfg = SchedConfig {
            jobs,
            ..sched_cfg()
        };
        let start = std::time::Instant::now();
        let out = Scheduler::new(cfg).run_program(&p);
        (out, start.elapsed())
    };
    let (serial, t1) = run(1);
    let (parallel, t4) = run(4);
    assert_eq!(serial.schedule, parallel.schedule);
    assert_eq!(serial.stats.conflict_edges, parallel.stats.conflict_edges);
    for (a, b) in serial.graph.edges().iter().zip(parallel.graph.edges()) {
        assert_eq!(a.verdict, b.verdict);
    }
    assert!(serial.stats.pairs_analyzed > 100, "{:?}", serial.stats);
    // Wall-clock comparison only means something with real parallelism
    // available; single-core runners still verify agreement above.
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    if cores > 1 {
        assert!(
            t4 < t1,
            "4 workers ({t4:?}) should beat 1 worker ({t1:?}) on {cores} cores"
        );
    }
}

/// The schedule respects program order for every conflicting pair — the
/// structural invariant behind the observational result.
#[test]
fn conflicting_pairs_stay_ordered() {
    let mut rng = SplitMix64::seed_from_u64(0xABBA);
    for case in 0..100 {
        let p: Program = random_program(&mut rng, &program_params(case % 2 == 0));
        let out = Scheduler::new(sched_cfg()).run_program(&p);
        let round = out.schedule.round_of();
        for e in out.graph.edges() {
            if e.verdict.conflict {
                assert!(
                    round[e.a] < round[e.b],
                    "case {case}: pair ({}, {})",
                    e.a,
                    e.b
                );
            }
        }
        let n: usize = out.schedule.rounds.iter().map(Vec::len).sum();
        assert_eq!(n, p.stmts.len());
        assert!(p
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::Read(_) | Stmt::Update(_))));
    }
}
