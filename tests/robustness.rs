//! The deadline/cancellation robustness layer, end to end.
//!
//! Degradation is *observable* (new `Detector` variants, `degraded_*`
//! stats) and *sound* (degraded pairs stay ordered, so every schedule
//! produced under pressure is still observationally serial-equivalent —
//! validated against the `gen::program` interpreter, the same oracle as
//! `sched_validation.rs`).

use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, ProgramParams};
use cxu::gen::rng::{Rng, SplitMix64};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::prelude::*;
use cxu::runtime::{CancelToken, Deadline};
use cxu::sched::validate::schedule_preserves_observation;
use cxu::sched::{BatchResult, SchedConfig, Scheduler};
use std::time::Duration;

fn program_params(branching: bool) -> ProgramParams {
    ProgramParams {
        len: 6,
        update_rate: 0.5,
        delete_rate: 0.4,
        pattern: PatternParams {
            nodes: 3,
            alphabet: 3,
            branch_rate: if branching { 0.5 } else { 0.0 },
            ..PatternParams::default()
        },
    }
}

fn shuffled(rng: &mut SplitMix64, len: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    perm
}

/// Checks that `out` is a well-formed schedule for an `n`-op batch:
/// every op exactly once, conflicting pairs in distinct ordered rounds.
fn assert_valid_schedule(out: &BatchResult, n: usize, ctx: &str) {
    let mut seen = vec![false; n];
    for round in &out.schedule.rounds {
        for (i, &a) in round.iter().enumerate() {
            assert!(
                !std::mem::replace(&mut seen[a], true),
                "{ctx}: op {a} twice"
            );
            for &b in &round[i + 1..] {
                assert!(
                    !out.graph.conflict(a, b),
                    "{ctx}: ops {a},{b} share a round but conflict"
                );
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "{ctx}: op dropped from schedule");
    let round = out.schedule.round_of();
    for e in out.graph.edges() {
        if e.verdict.conflict {
            assert!(round[e.a] < round[e.b], "{ctx}: conflict order violated");
        }
    }
}

/// A zero deadline degrades every NP-side pair, yet every batch still
/// yields a valid, observationally serial-equivalent schedule.
#[test]
fn zero_deadline_degrades_but_stays_sound() {
    let mut rng = SplitMix64::seed_from_u64(0xDEAD11);
    let cfg = SchedConfig {
        jobs: 1,
        pair_deadline: Some(Duration::ZERO),
        np_max_trees: 300,
        ..SchedConfig::default()
    };
    let mut degraded = 0usize;
    for case in 0..200 {
        let p = random_program(&mut rng, &program_params(case % 2 == 1));
        let doc = random_tree(
            &mut rng,
            &TreeParams {
                nodes: 8,
                alphabet: 3,
                ..TreeParams::default()
            },
        );
        // Fresh scheduler: the memo cache must not rescue degraded pairs.
        let out = Scheduler::new(cfg).run_program(&p);
        assert_valid_schedule(&out, p.stmts.len(), &format!("case {case}"));
        degraded += out.stats.degraded_deadline;
        let intra: Vec<Vec<usize>> = out
            .schedule
            .rounds
            .iter()
            .map(|r| shuffled(&mut rng, r.len()))
            .collect();
        assert!(
            schedule_preserves_observation(&p, &out.schedule, &intra, &doc),
            "case {case}: degraded schedule broke observational equivalence"
        );
    }
    assert!(
        degraded > 0,
        "branching programs under a zero deadline must degrade some pairs"
    );
}

/// Cancelling a batch's token degrades its undecided NP pairs to
/// conservative conflicts; the batch completes instead of aborting.
#[test]
fn cancellation_completes_with_conservative_verdicts() {
    let mut rng = SplitMix64::seed_from_u64(0xCA11CE);
    let token = CancelToken::new();
    token.cancel();
    let cfg = SchedConfig {
        jobs: 1,
        np_max_trees: 300,
        ..SchedConfig::default()
    };
    let mut degraded = 0usize;
    for case in 0..50 {
        let p = random_program(&mut rng, &program_params(true));
        let mut s = Scheduler::new(cfg);
        let out = s.run_with_cancel(&cxu::sched::ops_of_program(&p), &token);
        assert_valid_schedule(&out, p.stmts.len(), &format!("case {case}"));
        degraded += out.stats.degraded_deadline;
    }
    assert!(degraded > 0, "a cancelled token must degrade NP pairs");
}

/// Deadlines thread through every NP-side entry point in the workspace.
#[test]
fn deadline_reaches_every_search_layer() {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    // One deadline per search: the poll stride counts per handle, so a
    // shared handle would check the clock at different iterations.
    let dl = Deadline::after(Duration::ZERO);

    // core::brute
    let r = Read::new(parse("a[b][c]"));
    let u = Update::Insert(Insert::new(
        parse("a[b]"),
        cxu::tree::text::parse("c").unwrap(),
    ));
    assert!(matches!(
        cxu::core::brute::decide_outcome(&r, &u, Semantics::Node, 200_000, &dl),
        cxu::core::brute::SearchOutcome::DeadlineExceeded
    ));

    // core::update_update
    let u1 = Update::Insert(Insert::new(
        parse("a/b"),
        cxu::tree::text::parse("x").unwrap(),
    ));
    let u2 = Update::Delete(Delete::new(parse("a/c")).unwrap());
    assert!(matches!(
        cxu::core::update_update::find_noncommuting_witness_deadline(
            &u1,
            &u2,
            cxu::core::update_update::Budget::default(),
            &Deadline::after(Duration::ZERO)
        ),
        cxu::core::update_update::Outcome::DeadlineExceeded
    ));

    // schema search
    let dtd = cxu::schema::Dtd::new("a").element("a", vec![cxu::schema::ChildSpec::star("b")]);
    assert!(matches!(
        cxu::schema::find_witness_conforming_deadline(
            &Read::new(parse("a//b")),
            &u1,
            Semantics::Node,
            &dtd,
            5,
            10_000,
            &Deadline::after(Duration::ZERO)
        ),
        cxu::schema::SchemaSearchOutcome::DeadlineExceeded
    ));

    // pattern containment (canonical-model sweep)
    assert!(cxu::pattern::containment::contains_within_deadline(
        &parse("a//b//c//d//e"),
        &parse("a/e"),
        1000,
        &Deadline::after(Duration::ZERO)
    )
    .is_err());

    // An unbounded deadline changes nothing anywhere.
    let never = Deadline::never();
    assert!(
        cxu::core::brute::decide_outcome(&r, &u, Semantics::Node, 200_000, &never)
            .decided()
            .is_some()
    );
}
