//! End-to-end pipelines across every crate: XML in, conflicts out.

use cxu::core::{update_update, witness_min};
use cxu::gen::docs::{inventory, InventoryParams};
use cxu::gen::rng::SplitMix64 as SmallRng;
use cxu::pattern::xpath;
use cxu::prelude::*;
use cxu::schema::{ChildSpec, Dtd, SchemaSearchOutcome};
use cxu::tree::{iso, text, xml};
use cxu::{detect, witness};

fn pat(s: &str) -> Pattern {
    xpath::parse(s).unwrap()
}

/// XML → tree → update → XML round trip, with conflict checks along the
/// way — the full library surface in one flow.
#[test]
fn xml_pipeline() {
    let src = "<inventory>\
                 <book><title>TAOCP</title><quantity>5</quantity></book>\
                 <book><title>SICP</title><quantity>50</quantity></book>\
               </inventory>";
    let mut doc = xml::parse(src).unwrap();
    assert_eq!(doc.live_count(), 11); // elements + #text nodes

    // Insert a restock marker into every book that has a quantity.
    let ins = Insert::new(
        pat("inventory/book[quantity]"),
        text::parse("restock").unwrap(),
    );
    // Static conflict question for a follow-up read.
    let follow_up = Read::new(pat("inventory/book/restock"));
    assert!(detect::read_insert_conflict(&follow_up, &ins, Semantics::Node).unwrap());

    let points = ins.apply(&mut doc);
    assert_eq!(points.len(), 2);

    // Serialize and re-parse: isomorphic to the mutated tree.
    let out = xml::to_xml(&doc);
    let reparsed = xml::parse(&out).unwrap();
    assert!(iso::isomorphic(&doc, &reparsed));
    assert!(out.contains("<restock/>"));
}

/// Generated inventory + detector + witness checker + minimizer chain.
#[test]
fn inventory_conflict_lifecycle() {
    let mut rng = SmallRng::seed_from_u64(7);
    let doc = inventory(
        &mut rng,
        &InventoryParams {
            books: 12,
            low_stock_rate: 0.5,
            nested_rate: 0.6,
        },
    );
    let r = Read::new(pat("inventory//restock"));
    let u = Update::Insert(Insert::new(
        pat("inventory/book[.//quantity/low]"),
        text::parse("restock").unwrap(),
    ));

    // Static: conflict exists over all trees.
    assert!(detect::read_update_conflict(&r, &u, Semantics::Node).unwrap());
    // Dynamic: this document witnesses it iff it has a low-stock book.
    let has_low =
        !cxu::pattern::eval::eval(&pat("inventory/book[.//quantity/low]"), &doc).is_empty();
    assert_eq!(
        witness::witnesses_update_conflict(&r, &u, &doc, Semantics::Node),
        has_low
    );
    // Minimization shrinks the 60-odd-node document to a tiny witness.
    if has_low {
        let small = witness_min::minimize(&r, &u, &doc, Semantics::Node).unwrap();
        assert!(witness::witnesses_update_conflict(
            &r,
            &u,
            &small,
            Semantics::Node
        ));
        assert!(small.live_count() < doc.live_count());
        assert!(
            small.live_count() <= 8,
            "minimal witness is tiny: {small:?}"
        );
    }
}

/// Schema pipeline: validation, incremental revalidation, and
/// schema-aware conflict refinement on one DTD.
#[test]
fn schema_pipeline() {
    let dtd = Dtd::new("inventory")
        .element("inventory", vec![ChildSpec::star("book")])
        .element(
            "book",
            vec![
                ChildSpec::one("title"),
                ChildSpec::optional("quantity"),
                ChildSpec::optional("restock"),
            ],
        );
    let mut doc = text::parse("inventory(book(title quantity) book(title))").unwrap();
    assert!(dtd.conforms(&doc));

    // A conforming update keeps the document valid (revalidation agrees).
    let ins = Insert::new(
        pat("inventory/book[quantity]"),
        text::parse("restock").unwrap(),
    );
    ins.apply(&mut doc);
    assert!(dtd.revalidate(&doc).is_empty());
    assert!(dtd.conforms(&doc));

    // Unconstrained conflict that the schema eliminates.
    let r = Read::new(pat("inventory//surprise"));
    let u = Update::Insert(Insert::new(
        pat("inventory/book/extra"),
        text::parse("surprise").unwrap(),
    ));
    assert!(detect::read_update_conflict(&r, &u, Semantics::Node).unwrap());
    assert!(matches!(
        cxu::schema::find_witness_conforming(&r, &u, Semantics::Node, &dtd, 7, 100_000),
        SchemaSearchOutcome::NoConflictWithin(_)
    ));
}

/// Update-update commutativity over a realistic pair: restocking and
/// pruning empty books interact.
#[test]
fn update_update_pipeline() {
    // u1: delete books without a quantity; u2: restock books with one.
    let u1 = Update::Delete(Delete::new(pat("inventory/book[title]")).unwrap());
    let u2 = Update::Insert(Insert::new(
        pat("inventory/book"),
        text::parse("restock").unwrap(),
    ));
    // Deleting [title] books removes insertion points for u2 *and* u2's
    // fresh restock children never affect [title] matching: order still
    // matters? Run the bounded search to find out, then verify whatever
    // witness it returns.
    match update_update::find_noncommuting_witness(&u1, &u2, Default::default()) {
        update_update::Outcome::Conflict(w) => {
            assert!(!update_update::commute_on(&u1, &u2, &w));
        }
        update_update::Outcome::NoConflictWithin(_) => {
            // Deleting the book removes the restock with it — plausible.
            // Spot-check commutation on a concrete inventory.
            let t = text::parse("inventory(book(title) book)").unwrap();
            assert!(update_update::commute_on(&u1, &u2, &t));
        }
        update_update::Outcome::BudgetExceeded(_) => panic!("budget too small"),
        update_update::Outcome::DeadlineExceeded => panic!("no deadline was set"),
    }
}

/// The README's headline claims, kept honest.
#[test]
fn readme_claims() {
    // PTIME detection accepts branching updates (Corollaries 1–2).
    let r = Read::new(pat("catalog//price"));
    let i = Insert::new(pat("catalog/item[.//sale]"), text::parse("price").unwrap());
    assert!(detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap());
    // Branching reads are refused by the PTIME path…
    let r2 = Read::new(pat("catalog[sale]//price"));
    assert!(detect::read_insert_conflict(&r2, &i, Semantics::Node).is_err());
    // …and handled exactly by bounded search.
    let out = cxu::core::brute::find_witness(
        &r2,
        &Update::Insert(i),
        Semantics::Node,
        cxu::core::brute::Budget::default(),
    );
    assert!(out.decided().is_some());
}
