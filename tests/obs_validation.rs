//! Cross-validation of the `cxu-obs` metrics against the scheduler's
//! own bookkeeping, over randomized (seeded) program batches.
//!
//! The registry is process-global, so every test takes `METRICS_LOCK`
//! and works on snapshot *deltas*: parallel test threads in this binary
//! are serialized, and other test binaries are separate processes.
//!
//! The identities checked here are the accounting contract documented
//! in DESIGN.md § Observability:
//!
//! * the per-route counters (`sched.route.*`) partition the analyzed
//!   pairs — their sum equals `SchedStats::pairs_analyzed`;
//! * cache lookups partition into hits and misses, and every miss is
//!   exactly one fresh analysis;
//! * the routes are backed by real detector invocations: each analyzed
//!   pair is either a linear read-update detection, a brute NP search,
//!   or an update-update commutativity call (which may itself fall back
//!   to the bounded search — hence the nested-search counters).

use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, Program, ProgramParams, Stmt};
use cxu::gen::rng::SplitMix64;
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::obs;
use cxu::sched::{ops_of_program, Deadline, Op, SchedConfig, SchedStats, Scheduler};
use cxu::store::{PutPayload, PutResult, Store, StoreConfig};
use std::sync::{Mutex, MutexGuard};

static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A config whose NP-side budget is small enough for tests: searches
/// either finish or degrade to `ConservativeBudget` quickly, and both
/// outcomes are part of the accounting being validated.
fn test_config() -> SchedConfig {
    SchedConfig {
        np_max_trees: 300,
        ..SchedConfig::default()
    }
}

fn batch(seed: u64, len: usize, branch_rate: f64) -> Program {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let params = ProgramParams {
        len,
        pattern: PatternParams {
            nodes: 4,
            alphabet: 5,
            branch_rate,
            ..PatternParams::default()
        },
        ..ProgramParams::default()
    };
    random_program(&mut rng, &params)
}

fn route_sum(delta: &obs::Snapshot) -> u64 {
    delta.counter_sum("sched.route.")
}

#[test]
fn route_counters_sum_to_pairs_analyzed() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let mut total = SchedStats::default();
    for seed in 1..=6u64 {
        let ops = ops_of_program(&batch(seed, 12, 0.3));
        let out = Scheduler::new(test_config()).run(&ops);
        total.pairs_analyzed += out.stats.pairs_analyzed;
        total.cache_hits += out.stats.cache_hits;
        total.prefilter_skips += out.stats.prefilter_skips;
        total.witness_search += out.stats.witness_search;
        total.ptime_linear_read += out.stats.ptime_linear_read;
        total.ptime_linear_updates += out.stats.ptime_linear_updates;
        total.conservative += out.stats.conservative;
    }
    let d = obs::registry().snapshot().delta(&before);

    assert!(total.pairs_analyzed > 0, "batches exercised the analyzer");
    // Pre-filter skips are decided (and routed) without a detector, so
    // the route counters cover analyzed + prefiltered pairs.
    assert_eq!(
        route_sum(&d),
        (total.pairs_analyzed + total.prefilter_skips) as u64
    );
    assert_eq!(
        d.counter("sched.route.prefilter_no_conflict"),
        total.prefilter_skips as u64
    );
    assert_eq!(
        d.counter("sched.route.ptime_linear_read"),
        total.ptime_linear_read as u64
    );
    assert_eq!(
        d.counter("sched.route.ptime_linear_updates"),
        total.ptime_linear_updates as u64
    );
    assert_eq!(
        d.counter("sched.route.witness_search"),
        total.witness_search as u64
    );
    assert_eq!(
        d.counter("sched.route.conservative_undecided")
            + d.counter("sched.route.conservative_budget")
            + d.counter("sched.route.conservative_deadline")
            + d.counter("sched.route.conservative_panic"),
        total.conservative as u64
    );
}

#[test]
fn cache_lookups_partition_into_hits_and_misses() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let mut analyzed = 0u64;
    let mut hits = 0u64;
    let mut prefiltered = 0u64;
    for seed in 10..=14u64 {
        let ops = ops_of_program(&batch(seed, 14, 0.2));
        // One scheduler, same batch twice: the second pass must be pure
        // cache traffic.
        let mut sched = Scheduler::new(test_config());
        let first = sched.run(&ops);
        let mid = obs::registry().snapshot();
        let second = sched.run(&ops);
        let d2 = obs::registry().snapshot().delta(&mid);
        assert_eq!(
            second.stats.pairs_analyzed, 0,
            "seed {seed}: repeat batch is fully memoized"
        );
        assert_eq!(
            second.stats.prefilter_skips, 0,
            "seed {seed}: prefilter verdicts are memoized, repeats are cache hits"
        );
        assert_eq!(route_sum(&d2), 0, "seed {seed}: no new analyses");
        assert_eq!(d2.counter("sched.cache.misses"), 0, "seed {seed}");
        assert_eq!(
            d2.counter("sched.cache.hits"),
            second.stats.cache_hits as u64,
            "seed {seed}"
        );
        analyzed += (first.stats.pairs_analyzed + second.stats.pairs_analyzed) as u64;
        hits += (first.stats.cache_hits + second.stats.cache_hits) as u64;
        prefiltered += (first.stats.prefilter_skips + second.stats.prefilter_skips) as u64;
    }
    let d = obs::registry().snapshot().delta(&before);
    assert_eq!(
        d.counter("sched.cache.lookups"),
        d.counter("sched.cache.hits") + d.counter("sched.cache.misses"),
        "hits + misses partition the lookups"
    );
    assert_eq!(
        d.counter("sched.cache.misses"),
        analyzed + prefiltered,
        "miss == fresh analysis or prefilter skip"
    );
    assert_eq!(d.counter("sched.cache.hits"), hits);
}

#[test]
fn routes_are_backed_by_detector_invocations() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let mut analyzed = 0u64;
    let mut prefiltered = 0u64;
    for seed in 20..=25u64 {
        let ops = ops_of_program(&batch(seed, 12, 0.4));
        let out = Scheduler::new(test_config()).run(&ops);
        analyzed += out.stats.pairs_analyzed as u64;
        prefiltered += out.stats.prefilter_skips as u64;
    }
    let d = obs::registry().snapshot().delta(&before);

    // Every analyzed pair maps to exactly one top-level detector call:
    // linear read-update detection, a brute read-update search, or an
    // update-update commutativity call.
    assert_eq!(
        d.counter("sched.route.ptime_linear_read")
            + d.counter("core.brute.searches")
            + d.counter("core.uu_linear.calls"),
        analyzed,
        "detector invocations account for every analyzed pair\n{d}"
    );

    // Outcome counters partition each detector's invocations.
    assert_eq!(
        d.counter("core.brute.searches"),
        d.counter("core.brute.conflict")
            + d.counter("core.brute.no_conflict")
            + d.counter("core.brute.budget")
            + d.counter("core.brute.deadline"),
    );
    assert_eq!(
        d.counter("core.uu_search.searches"),
        d.counter("core.uu_search.conflict")
            + d.counter("core.uu_search.no_conflict")
            + d.counter("core.uu_search.budget")
            + d.counter("core.uu_search.deadline"),
    );
    assert_eq!(
        d.counter("core.uu_linear.calls"),
        d.counter("core.uu_linear.nonlinear")
            + d.counter("core.uu_linear.commute")
            + d.counter("core.uu_linear.conflict")
            + d.counter("core.uu_linear.unknown")
            + d.counter("core.uu_linear.deadline"),
    );

    // The linear detector also serves the update-update cross-conflict
    // checks, so it runs at least once per ptime-linear-read route.
    assert!(
        d.counter("core.detect.linear") >= d.counter("sched.route.ptime_linear_read"),
        "{d}"
    );

    // No deadline was configured and nothing panicked.
    assert_eq!(d.counter("sched.route.conservative_deadline"), 0);
    assert_eq!(d.counter("sched.route.conservative_panic"), 0);

    // Latency histograms move with their counters: every distinct pair
    // decision — analyzed or prefilter-skipped — is one sample.
    let h = d
        .histogram("sched.pair_ns")
        .expect("pair histogram recorded");
    assert_eq!(h.count, analyzed + prefiltered);
}

#[test]
fn histograms_and_stats_agree_on_batch_structure() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let ops = ops_of_program(&batch(99, 16, 0.25));
    let out = Scheduler::new(test_config()).run(&ops);
    let d = obs::registry().snapshot().delta(&before);

    assert_eq!(d.counter("sched.batches"), 1);
    assert_eq!(
        out.stats.pairs_total,
        out.stats.trivial
            + out.stats.pairs_analyzed
            + out.stats.cache_hits
            + out.stats.prefilter_skips,
        "stats partition the pair universe"
    );
    assert_eq!(
        d.counter("sched.degraded.budget"),
        out.stats.degraded_budget as u64
    );
    assert_eq!(
        d.counter("sched.degraded.deadline"),
        out.stats.degraded_deadline as u64
    );
    let analyze = d.histogram("sched.analyze_ns").expect("analyze histogram");
    assert_eq!(analyze.count, 1);
    let rounds = d.histogram("sched.rounds_ns").expect("rounds histogram");
    assert_eq!(rounds.count, 1);
}

/// The store-side accounting contract (DESIGN.md § Document store):
/// every put is tallied in exactly one partition bucket —
/// `store.puts == applied + merged + branched + rejected + noop +
/// failed` — and the gauges report the store's real levels. `failed`
/// is owned by the serving layer (a put that dies before an answer
/// exists), so for an in-process store it must stay zero.
#[test]
fn store_put_counters_partition_the_puts() {
    let _guard = lock();
    let before = obs::registry().snapshot();

    let store = Store::new(StoreConfig::default());
    let mut sched = Scheduler::new(test_config());
    let deadline = Deadline::never();
    let mut check = |a: &Op, b: &Op| sched.check_pair(a, b, &deadline);

    // An update pool over the same alphabet as the documents, so merge
    // checks see patterns that actually touch the trees.
    let mut rng = SplitMix64::seed_from_u64(0x0B5);
    let pool: Vec<_> = random_program(
        &mut rng,
        &ProgramParams {
            len: 24,
            update_rate: 1.0,
            delete_rate: 0.35,
            pattern: PatternParams {
                nodes: 4,
                alphabet: 6,
                branch_rate: 0.2,
                ..PatternParams::default()
            },
        },
    )
    .stmts
    .into_iter()
    .map(|s| match s {
        Stmt::Update(u) => u,
        Stmt::Read(_) => unreachable!("update_rate is 1.0"),
    })
    .collect();
    let tparams = TreeParams {
        nodes: 10,
        alphabet: 6,
        ..TreeParams::default()
    };

    // A seeded workload that deliberately hits every bucket.
    let mut expect_puts = 0u64;
    let mut buckets = [0u64; 4]; // applied, noop, merged, branched
    let mut rejected = 0u64;
    let mut tally = |r: &Result<cxu::store::PutOutcome, cxu::store::StoreError>| match r {
        Ok(o) => match o.result {
            PutResult::Created | PutResult::Applied => buckets[0] += 1,
            PutResult::Noop => buckets[1] += 1,
            PutResult::Merged => buckets[2] += 1,
            PutResult::Branched => buckets[3] += 1,
        },
        Err(_) => rejected += 1,
    };
    for d in 0..8usize {
        let doc = format!("obs-{d}");
        let tree = random_tree(&mut rng, &tparams);
        let created = store.put(&doc, None, PutPayload::Content(tree), &mut check);
        expect_puts += 1;
        tally(&created);
        let base = created.as_ref().unwrap().rev;

        // An edit at the head (fast path), then the identical put
        // replayed: same base + same payload mint the same revision id,
        // so the replay is a noop.
        let u0 = pool[d % pool.len()].clone();
        let r = store.put(&doc, Some(base), PutPayload::Op(u0.clone()), &mut check);
        expect_puts += 1;
        assert!(
            matches!(r.as_ref().unwrap().result, PutResult::Applied),
            "{r:?}"
        );
        tally(&r);
        let r = store.put(&doc, Some(base), PutPayload::Op(u0), &mut check);
        expect_puts += 1;
        assert!(
            matches!(r.as_ref().unwrap().result, PutResult::Noop),
            "{r:?}"
        );
        tally(&r);

        // Create over a live winner: rejected.
        let tree = random_tree(&mut rng, &tparams);
        let r = store.put(&doc, None, PutPayload::Content(tree), &mut check);
        expect_puts += 1;
        assert!(r.is_err(), "create over live winner must be rejected");
        tally(&r);

        // Two more ops against the now-stale base: each lands merged
        // or branched, per the detectors.
        for k in 0..2usize {
            let u = pool[(d + 7 * k + 1) % pool.len()].clone();
            let r = store.put(&doc, Some(base), PutPayload::Op(u), &mut check);
            expect_puts += 1;
            tally(&r);
        }

        // An unknown base revision: rejected.
        let bogus = "9-0123456789abcdef0123456789abcdef".parse().unwrap();
        let u = pool[(d + 3) % pool.len()].clone();
        let r = store.put(&doc, Some(bogus), PutPayload::Op(u), &mut check);
        expect_puts += 1;
        assert!(r.is_err(), "unknown rev must be rejected");
        tally(&r);
    }
    // Tombstone one document, then try to edit it: rejected.
    let winner = store.get("obs-0", None, false).unwrap().rev;
    let r = store.delete("obs-0", winner);
    expect_puts += 1;
    tally(&r);
    let u = pool[0].clone();
    let r = store.put("obs-0", Some(r.unwrap().rev), PutPayload::Op(u), &mut check);
    expect_puts += 1;
    assert!(r.is_err(), "edit on tombstone must be rejected");
    tally(&r);

    store.set_gauges();
    let d = obs::registry().snapshot().delta(&before);

    // The partition identity, with the workload's own bookkeeping as
    // the reference. In-process, nothing can die mid-put: failed == 0.
    assert_eq!(d.counter("store.puts"), expect_puts);
    assert_eq!(
        d.counter("store.puts"),
        d.counter("store.put.applied")
            + d.counter("store.put.merged")
            + d.counter("store.put.branched")
            + d.counter("store.put.rejected")
            + d.counter("store.put.noop")
            + d.counter("store.put.failed"),
        "put buckets partition the puts\n{d}"
    );
    assert_eq!(d.counter("store.put.failed"), 0);
    assert_eq!(d.counter("store.put.applied"), buckets[0]);
    assert_eq!(d.counter("store.put.noop"), buckets[1]);
    assert_eq!(d.counter("store.put.merged"), buckets[2]);
    assert_eq!(d.counter("store.put.branched"), buckets[3]);
    assert_eq!(d.counter("store.put.rejected"), rejected);
    assert!(
        rejected >= 17,
        "three deliberate rejects per doc + tombstone edit"
    );
    assert!(
        buckets[2] + buckets[3] > 0,
        "stale-base puts exercised the merge rung"
    );
    assert_eq!(d.counter("store.deletes"), 1);

    // Histograms move with the counters: one sample per answered put.
    let h = d.histogram("store.put_ns").expect("put histogram");
    assert_eq!(h.count, expect_puts);

    // Gauges are levels, not deltas: they equal the store's real sizes.
    assert_eq!(d.gauge("store.docs"), store.docs_len() as i64);
    assert_eq!(d.gauge("store.revisions"), store.revisions_len() as i64);
}

#[test]
fn compile_cache_hits_and_misses_partition_interns() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let ops = ops_of_program(&batch(7, 18, 0.2));
    let mut sched = Scheduler::new(test_config());
    sched.run(&ops);
    let mid = obs::registry().snapshot();
    let d1 = mid.delta(&before);

    // Every interned op is exactly one compile-cache probe: a miss the
    // first time its shape is seen, a hit on every repeat.
    assert_eq!(
        d1.counter("automata.compile.miss") + d1.counter("automata.compile.hit"),
        ops.len() as u64,
        "one probe per op"
    );
    assert!(d1.counter("automata.compile.miss") > 0);

    // Re-running the identical batch interns the same shapes: pure hits.
    sched.run(&ops);
    let d2 = obs::registry().snapshot().delta(&mid);
    assert_eq!(d2.counter("automata.compile.miss"), 0, "no new shapes");
    assert_eq!(d2.counter("automata.compile.hit"), ops.len() as u64);
}

/// Durability accounting: every record the WAL ever accepted is either
/// compacted away into a snapshot or still live in the log — and a
/// recovery replays exactly the live tail it was handed. The put
/// partition identity is unchanged by the WAL being in the loop.
#[test]
fn wal_counters_account_for_every_appended_record() {
    use cxu::store::{DurabilityConfig, FsyncPolicy};

    let _guard = lock();
    let dir = std::env::temp_dir().join(format!("cxu-obs-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dcfg = DurabilityConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Never,
        snapshot_every: 8, // small enough that the workload compacts
    };
    let before = obs::registry().snapshot();

    let store = Store::open(StoreConfig::default(), dcfg.clone()).expect("open durable");
    let mut sched = Scheduler::new(test_config());
    let deadline = Deadline::never();
    let mut check = |a: &Op, b: &Op| sched.check_pair(a, b, &deadline);

    let mut rng = SplitMix64::seed_from_u64(0x0A1_5EED);
    let tparams = TreeParams {
        nodes: 8,
        alphabet: 6,
        ..TreeParams::default()
    };
    let mut puts = 0u64;
    for d in 0..4usize {
        let doc = format!("wal-{d}");
        let tree = random_tree(&mut rng, &tparams);
        let created = store
            .put(&doc, None, PutPayload::Content(tree), &mut check)
            .expect("create");
        puts += 1;
        let mut base = created.rev;
        for _ in 0..6 {
            let tree = random_tree(&mut rng, &tparams);
            let r = store
                .put(&doc, Some(base), PutPayload::Content(tree), &mut check)
                .expect("replace at winner");
            puts += 1;
            base = r.rev;
        }
    }

    let mid = obs::registry().snapshot().delta(&before);
    // Conservation: appended == compacted away + still in the log.
    assert!(
        mid.counter("store.wal.compactions") >= 1,
        "28 commits across snapshot_every=8 must compact\n{mid}"
    );
    assert_eq!(
        mid.counter("store.wal.appended"),
        mid.counter("store.wal.compacted_away") + store.wal_records(),
        "every appended record is compacted away or live\n{mid}"
    );
    // The put partition is undisturbed by the WAL: same identity,
    // nothing failed, one bucket tick per put.
    assert_eq!(mid.counter("store.puts"), puts);
    assert_eq!(
        mid.counter("store.puts"),
        mid.counter("store.put.applied")
            + mid.counter("store.put.merged")
            + mid.counter("store.put.branched")
            + mid.counter("store.put.rejected")
            + mid.counter("store.put.noop")
            + mid.counter("store.put.failed"),
        "put partition holds under durability\n{mid}"
    );
    assert_eq!(mid.counter("store.put.failed"), 0);
    assert_eq!(mid.counter("store.wal.append_errors"), 0);

    // Crash (no compact) and recover: the replay counter moves by
    // exactly the live tail at the handoff.
    let tail = store.wal_records();
    store.flush().expect("flush");
    drop(store);
    let handoff = obs::registry().snapshot();
    let recovered = Store::open(StoreConfig::default(), dcfg).expect("recover");
    let d = obs::registry().snapshot().delta(&handoff);
    assert_eq!(
        d.counter("store.wal.replayed_on_recovery"),
        tail,
        "recovery replays exactly the live tail\n{d}"
    );
    assert_eq!(d.counter("store.recovery.runs"), 1);
    assert_eq!(d.counter("store.recovery.torn_bytes"), 0);
    assert_eq!(recovered.wal_records(), tail, "the tail stays live");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The structural-index accounting contract (DESIGN.md § Structural
/// index): every build — tree-walk or streaming — ticks `index.builds`
/// and records one `index.build_ns` sample; `index.nodes`, `.postings`
/// and `.bytes` accumulate the built indexes' real sizes;
/// `index.ingest_bytes` moves only on the streaming (`from_xml`) path,
/// by exactly the source length. Every grounded check is one
/// `index.grounded_checks` tick and one `index.grounded_ns` sample,
/// with the Insert+Value tree-walk fallback bounded by the checks.
#[test]
fn index_counters_account_for_builds_and_grounded_checks() {
    use cxu::index::{detect_grounded, DocIndex};
    use cxu::prelude::*;
    use cxu::tree::xml;

    let _guard = lock();
    let mut rng = SplitMix64::seed_from_u64(0x1D1);
    let tparams = TreeParams {
        nodes: 60,
        alphabet: 6,
        ..TreeParams::default()
    };

    let before = obs::registry().snapshot();
    let mut builds = 0u64;
    let mut nodes = 0u64;
    let mut postings = 0u64;
    let mut bytes = 0u64;
    let mut docs = Vec::new();
    for _ in 0..4 {
        let t = random_tree(&mut rng, &tparams);
        let idx = DocIndex::from_tree(&t);
        builds += 1;
        nodes += idx.len() as u64;
        postings += idx.postings_len() as u64;
        bytes += idx.approx_bytes() as u64;
        docs.push((t, idx));
    }
    // The streaming path indexes the identical structure and is the
    // only one that moves the ingest byte counter.
    let src = xml::to_xml(&docs[0].0);
    let sidx = DocIndex::from_xml(&src).expect("round-tripped XML is well-formed");
    builds += 1;
    nodes += sidx.len() as u64;
    postings += sidx.postings_len() as u64;
    bytes += sidx.approx_bytes() as u64;
    assert_eq!(sidx.len(), docs[0].1.len(), "same structure, same index");

    let d = obs::registry().snapshot().delta(&before);
    assert_eq!(d.counter("index.builds"), builds);
    assert_eq!(d.counter("index.nodes"), nodes);
    assert_eq!(d.counter("index.postings"), postings);
    assert_eq!(d.counter("index.bytes"), bytes);
    assert_eq!(d.counter("index.ingest_bytes"), src.len() as u64);
    let h = d.histogram("index.build_ns").expect("build histogram");
    assert_eq!(h.count, builds, "one latency sample per build");

    // Grounded checks over a seeded read/update pool: one tick and one
    // latency sample per check, fallback bounded by the checks.
    let mid = obs::registry().snapshot();
    let program = random_program(
        &mut rng,
        &ProgramParams {
            len: 24,
            update_rate: 0.5,
            delete_rate: 0.4,
            pattern: PatternParams {
                nodes: 4,
                alphabet: 6,
                branch_rate: 0.2,
                ..PatternParams::default()
            },
        },
    );
    let mut reads = Vec::new();
    let mut updates = Vec::new();
    for s in program.stmts {
        match s {
            Stmt::Read(r) => reads.push(r),
            Stmt::Update(u) => updates.push(u),
        }
    }
    assert!(!reads.is_empty() && !updates.is_empty());
    let mut checks = 0u64;
    for (t, idx) in &docs {
        for (k, r) in reads.iter().enumerate() {
            let u = &updates[k % updates.len()];
            for sem in Semantics::ALL {
                detect_grounded(r, u, t, idx, sem);
                checks += 1;
            }
        }
    }
    let d = obs::registry().snapshot().delta(&mid);
    assert_eq!(d.counter("index.grounded_checks"), checks);
    let h = d
        .histogram("index.grounded_ns")
        .expect("grounded histogram");
    assert_eq!(h.count, checks, "one latency sample per grounded check");
    assert!(
        d.counter("index.eval.fallback") <= checks,
        "the Insert+Value fallback is a subset of the checks\n{d}"
    );
    assert_eq!(d.counter("index.builds"), 0, "checks never rebuild");
}

/// The store-side index cache contract: every `Store::indexed` lookup
/// that produces an answer is exactly one cache hit or one miss, every
/// miss is exactly one index build and one `store.index_ns` sample,
/// and a commit to the document invalidates the winner's entry.
#[test]
fn index_cache_hits_and_misses_partition_indexed_lookups() {
    let _guard = lock();
    let store = Store::new(StoreConfig::default());
    let mut sched = Scheduler::new(test_config());
    let deadline = Deadline::never();
    let mut check = |a: &Op, b: &Op| sched.check_pair(a, b, &deadline);

    let mut rng = SplitMix64::seed_from_u64(0x1D2);
    let tparams = TreeParams {
        nodes: 20,
        alphabet: 6,
        ..TreeParams::default()
    };
    let t0 = random_tree(&mut rng, &tparams);
    let created = store
        .put("idx-doc", None, PutPayload::Content(t0), &mut check)
        .expect("create");

    let before = obs::registry().snapshot();
    let mut hits = 0u64;
    let mut misses = 0u64;

    // First winner lookup builds and caches; repeats are pure hits.
    let first = store.indexed("idx-doc", None).expect("winner");
    misses += 1;
    for _ in 0..3 {
        let again = store.indexed("idx-doc", None).expect("winner");
        hits += 1;
        assert!(
            std::sync::Arc::ptr_eq(&first, &again),
            "hits share the cached Arc"
        );
    }

    // A commit moves the winner: the cached entry is stale, the next
    // lookup misses and rebuilds at the new revision.
    let t1 = random_tree(&mut rng, &tparams);
    let moved = store
        .put(
            "idx-doc",
            Some(created.rev),
            PutPayload::Content(t1),
            &mut check,
        )
        .expect("replace at winner");
    let rebuilt = store.indexed("idx-doc", None).expect("new winner");
    misses += 1;
    assert_eq!(rebuilt.rev, moved.rev, "cache serves the current winner");

    // Pinning a non-winner revision always bypasses the cache.
    let old = store
        .indexed("idx-doc", Some(created.rev))
        .expect("pinned revision");
    misses += 1;
    assert_eq!(old.rev, created.rev);

    // Error paths answer without touching the accounting.
    assert!(store.indexed("no-such-doc", None).is_err());
    let bogus = "9-0123456789abcdef0123456789abcdef".parse().unwrap();
    assert!(store.indexed("idx-doc", Some(bogus)).is_err());

    let d = obs::registry().snapshot().delta(&before);
    assert_eq!(d.counter("index.cache.hits"), hits);
    assert_eq!(d.counter("index.cache.misses"), misses);
    assert_eq!(
        d.counter("index.builds"),
        misses,
        "every miss is exactly one build, every hit none\n{d}"
    );
    let h = d.histogram("store.index_ns").expect("indexed histogram");
    assert_eq!(h.count, misses, "the build path is the timed path");
}

/// The transaction accounting contract (DESIGN.md § Transactions):
/// every commit attempt lands in exactly one verdict bucket —
/// `txn.commits == txn.applied + txn.conflicted + txn.rejected +
/// txn.failed` — with `failed` owned by the serving layer (an attempt
/// that dies before an answer exists), so in-process it stays zero.
/// `txn.ops` moves by the submitted write count, `store.txn_ns` takes
/// one sample per commit attempt, the pair counters are backed by the
/// applied outcomes' own `checked_pairs`, and a multi-generation
/// commit invalidates the document's index-cache entry exactly once.
#[test]
fn txn_counters_partition_the_commits() {
    use cxu::pattern::xpath;
    use cxu::prelude::{Delete, Insert, Update};
    use cxu::store::{TxnError, TxnGuard, TxnWrite};
    use cxu::tree::text;

    let _guard = lock();
    let store = Store::new(StoreConfig::default());
    let mut sched = Scheduler::new(test_config());
    let deadline = Deadline::never();
    let mut check = |a: &Op, b: &Op| sched.check_pair(a, b, &deadline);

    let ins = |pattern: &str, subtree: &str| {
        Update::Insert(Insert::new(
            xpath::parse(pattern).unwrap(),
            text::parse(subtree).unwrap(),
        ))
    };
    let del = |pattern: &str| Update::Delete(Delete::new(xpath::parse(pattern).unwrap()).unwrap());
    let guard = |doc: &str, rev| TxnGuard {
        doc: doc.to_owned(),
        rev,
    };
    let write = |doc: &str, op: Update| TxnWrite {
        doc: doc.to_owned(),
        op,
    };

    let r0 = store
        .put(
            "tx-a",
            None,
            PutPayload::Content(text::parse("a(b c e)").unwrap()),
            &mut check,
        )
        .expect("create tx-a")
        .rev;
    let s0 = store
        .put(
            "tx-b",
            None,
            PutPayload::Content(text::parse("l(m)").unwrap()),
            &mut check,
        )
        .expect("create tx-b")
        .rev;

    // Warm the index cache on the winner, so the multi-generation
    // commit below can pin its invalidation cost exactly.
    let warm = store.indexed("tx-a", None).expect("warm winner index");
    assert_eq!(warm.rev, r0);

    let before = obs::registry().snapshot();
    let mut commits = 0u64;
    let mut applied = 0u64;
    let mut conflicted = 0u64;
    let mut rejected = 0u64;
    let mut ops = 0u64;
    let mut applied_pairs = 0u64;

    // Applied: a fresh-guarded three-generation commit over tx-a plus
    // one write on tx-b. Invalidation drops tx-a's warm cache entry
    // but must not itself count as a miss.
    let out = store
        .apply_txn(
            &[guard("tx-a", r0), guard("tx-b", s0)],
            &[
                write("tx-a", ins("a/b", "p")),
                write("tx-a", ins("a/c", "q")),
                write("tx-b", ins("l/m", "n")),
            ],
            &mut check,
        )
        .expect("fresh-guarded txn commits");
    commits += 1;
    applied += 1;
    ops += 3;
    applied_pairs += out.checked_pairs as u64;
    assert!(!out.replayed);
    let mid = obs::registry().snapshot().delta(&before);
    assert_eq!(
        mid.counter("index.cache.misses"),
        0,
        "invalidation is not a miss\n{mid}"
    );

    // The exact one-miss pin promised by the store's invalidation
    // test: one lookup after the commit rebuilds at the final winner
    // (one miss, one build), and a repeat is a pure hit.
    let rebuilt = store.indexed("tx-a", None).expect("rebuild winner");
    assert_eq!(
        rebuilt.rev, out.revs[1].1,
        "rebuild lands on the final winner"
    );
    let again = store.indexed("tx-a", None).expect("cached winner");
    assert!(std::sync::Arc::ptr_eq(&rebuilt, &again));
    let mid = obs::registry().snapshot().delta(&before);
    assert_eq!(mid.counter("index.cache.misses"), 1, "exactly one rebuild");
    assert_eq!(mid.counter("index.cache.hits"), 1);
    assert_eq!(mid.counter("index.builds"), 1);

    // Conflicted: someone deletes a/b, then a txn guarded at the old
    // winner tries to insert under it — provably non-commuting.
    let out = store
        .apply_txn(
            &[guard("tx-a", rebuilt.rev)],
            &[write("tx-a", del("a/b"))],
            &mut check,
        )
        .expect("delete txn commits");
    commits += 1;
    applied += 1;
    ops += 1;
    applied_pairs += out.checked_pairs as u64;
    let r = store.apply_txn(
        &[guard("tx-a", rebuilt.rev)],
        &[write("tx-a", ins("a/b", "z"))],
        &mut check,
    );
    commits += 1;
    ops += 1;
    match r {
        Err(TxnError::Conflict { ref doc, .. }) => {
            assert_eq!(doc, "tx-a");
            assert!(r.unwrap_err().retryable());
            conflicted += 1;
        }
        other => panic!("stale non-commuting guard must conflict, got {other:?}"),
    }

    // Rejected: an empty program, and a guard on an unknown revision —
    // both terminal, neither retryable.
    let r = store.apply_txn(&[guard("tx-b", s0)], &[], &mut check);
    commits += 1;
    assert!(matches!(r, Err(TxnError::Rejected(_))), "{r:?}");
    assert!(!r.unwrap_err().retryable());
    rejected += 1;
    let bogus = "9-0123456789abcdef0123456789abcdef".parse().unwrap();
    let r = store.apply_txn(
        &[guard("tx-b", bogus)],
        &[write("tx-b", ins("l/m", "o"))],
        &mut check,
    );
    commits += 1;
    ops += 1;
    assert!(matches!(r, Err(TxnError::Rejected(_))), "{r:?}");
    rejected += 1;

    let d = obs::registry().snapshot().delta(&before);
    assert_eq!(d.counter("txn.commits"), commits);
    assert_eq!(
        d.counter("txn.commits"),
        d.counter("txn.applied")
            + d.counter("txn.conflicted")
            + d.counter("txn.rejected")
            + d.counter("txn.failed"),
        "verdict buckets partition the commit attempts\n{d}"
    );
    assert_eq!(d.counter("txn.applied"), applied);
    assert_eq!(d.counter("txn.conflicted"), conflicted);
    assert_eq!(d.counter("txn.rejected"), rejected);
    assert_eq!(d.counter("txn.failed"), 0, "failed is serve-owned");
    assert_eq!(d.counter("txn.ops"), ops);
    assert_eq!(
        d.counter("txn.retries"),
        0,
        "no competing writer, no OCC retry rounds"
    );

    // Pair accounting: the applied outcomes report their own detector
    // work; the conflicted attempt checked at least one pair and found
    // at least one conflict on top of that.
    assert!(
        d.counter("txn.pair.checked") >= applied_pairs,
        "outcome checked_pairs bound the pair counter\n{d}"
    );
    assert!(d.counter("txn.pair.conflicts") >= 1, "{d}");

    // One latency sample per commit attempt, answered or refused.
    let h = d.histogram("store.txn_ns").expect("txn histogram");
    assert_eq!(h.count, commits);
}
