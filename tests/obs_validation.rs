//! Cross-validation of the `cxu-obs` metrics against the scheduler's
//! own bookkeeping, over randomized (seeded) program batches.
//!
//! The registry is process-global, so every test takes `METRICS_LOCK`
//! and works on snapshot *deltas*: parallel test threads in this binary
//! are serialized, and other test binaries are separate processes.
//!
//! The identities checked here are the accounting contract documented
//! in DESIGN.md § Observability:
//!
//! * the per-route counters (`sched.route.*`) partition the analyzed
//!   pairs — their sum equals `SchedStats::pairs_analyzed`;
//! * cache lookups partition into hits and misses, and every miss is
//!   exactly one fresh analysis;
//! * the routes are backed by real detector invocations: each analyzed
//!   pair is either a linear read-update detection, a brute NP search,
//!   or an update-update commutativity call (which may itself fall back
//!   to the bounded search — hence the nested-search counters).

use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, Program, ProgramParams};
use cxu::gen::rng::SplitMix64;
use cxu::obs;
use cxu::sched::{ops_of_program, SchedConfig, SchedStats, Scheduler};
use std::sync::{Mutex, MutexGuard};

static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A config whose NP-side budget is small enough for tests: searches
/// either finish or degrade to `ConservativeBudget` quickly, and both
/// outcomes are part of the accounting being validated.
fn test_config() -> SchedConfig {
    SchedConfig {
        np_max_trees: 300,
        ..SchedConfig::default()
    }
}

fn batch(seed: u64, len: usize, branch_rate: f64) -> Program {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let params = ProgramParams {
        len,
        pattern: PatternParams {
            nodes: 4,
            alphabet: 5,
            branch_rate,
            ..PatternParams::default()
        },
        ..ProgramParams::default()
    };
    random_program(&mut rng, &params)
}

fn route_sum(delta: &obs::Snapshot) -> u64 {
    delta.counter_sum("sched.route.")
}

#[test]
fn route_counters_sum_to_pairs_analyzed() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let mut total = SchedStats::default();
    for seed in 1..=6u64 {
        let ops = ops_of_program(&batch(seed, 12, 0.3));
        let out = Scheduler::new(test_config()).run(&ops);
        total.pairs_analyzed += out.stats.pairs_analyzed;
        total.cache_hits += out.stats.cache_hits;
        total.prefilter_skips += out.stats.prefilter_skips;
        total.witness_search += out.stats.witness_search;
        total.ptime_linear_read += out.stats.ptime_linear_read;
        total.ptime_linear_updates += out.stats.ptime_linear_updates;
        total.conservative += out.stats.conservative;
    }
    let d = obs::registry().snapshot().delta(&before);

    assert!(total.pairs_analyzed > 0, "batches exercised the analyzer");
    // Pre-filter skips are decided (and routed) without a detector, so
    // the route counters cover analyzed + prefiltered pairs.
    assert_eq!(
        route_sum(&d),
        (total.pairs_analyzed + total.prefilter_skips) as u64
    );
    assert_eq!(
        d.counter("sched.route.prefilter_no_conflict"),
        total.prefilter_skips as u64
    );
    assert_eq!(
        d.counter("sched.route.ptime_linear_read"),
        total.ptime_linear_read as u64
    );
    assert_eq!(
        d.counter("sched.route.ptime_linear_updates"),
        total.ptime_linear_updates as u64
    );
    assert_eq!(
        d.counter("sched.route.witness_search"),
        total.witness_search as u64
    );
    assert_eq!(
        d.counter("sched.route.conservative_undecided")
            + d.counter("sched.route.conservative_budget")
            + d.counter("sched.route.conservative_deadline")
            + d.counter("sched.route.conservative_panic"),
        total.conservative as u64
    );
}

#[test]
fn cache_lookups_partition_into_hits_and_misses() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let mut analyzed = 0u64;
    let mut hits = 0u64;
    let mut prefiltered = 0u64;
    for seed in 10..=14u64 {
        let ops = ops_of_program(&batch(seed, 14, 0.2));
        // One scheduler, same batch twice: the second pass must be pure
        // cache traffic.
        let mut sched = Scheduler::new(test_config());
        let first = sched.run(&ops);
        let mid = obs::registry().snapshot();
        let second = sched.run(&ops);
        let d2 = obs::registry().snapshot().delta(&mid);
        assert_eq!(
            second.stats.pairs_analyzed, 0,
            "seed {seed}: repeat batch is fully memoized"
        );
        assert_eq!(
            second.stats.prefilter_skips, 0,
            "seed {seed}: prefilter verdicts are memoized, repeats are cache hits"
        );
        assert_eq!(route_sum(&d2), 0, "seed {seed}: no new analyses");
        assert_eq!(d2.counter("sched.cache.misses"), 0, "seed {seed}");
        assert_eq!(
            d2.counter("sched.cache.hits"),
            second.stats.cache_hits as u64,
            "seed {seed}"
        );
        analyzed += (first.stats.pairs_analyzed + second.stats.pairs_analyzed) as u64;
        hits += (first.stats.cache_hits + second.stats.cache_hits) as u64;
        prefiltered += (first.stats.prefilter_skips + second.stats.prefilter_skips) as u64;
    }
    let d = obs::registry().snapshot().delta(&before);
    assert_eq!(
        d.counter("sched.cache.lookups"),
        d.counter("sched.cache.hits") + d.counter("sched.cache.misses"),
        "hits + misses partition the lookups"
    );
    assert_eq!(
        d.counter("sched.cache.misses"),
        analyzed + prefiltered,
        "miss == fresh analysis or prefilter skip"
    );
    assert_eq!(d.counter("sched.cache.hits"), hits);
}

#[test]
fn routes_are_backed_by_detector_invocations() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let mut analyzed = 0u64;
    let mut prefiltered = 0u64;
    for seed in 20..=25u64 {
        let ops = ops_of_program(&batch(seed, 12, 0.4));
        let out = Scheduler::new(test_config()).run(&ops);
        analyzed += out.stats.pairs_analyzed as u64;
        prefiltered += out.stats.prefilter_skips as u64;
    }
    let d = obs::registry().snapshot().delta(&before);

    // Every analyzed pair maps to exactly one top-level detector call:
    // linear read-update detection, a brute read-update search, or an
    // update-update commutativity call.
    assert_eq!(
        d.counter("sched.route.ptime_linear_read")
            + d.counter("core.brute.searches")
            + d.counter("core.uu_linear.calls"),
        analyzed,
        "detector invocations account for every analyzed pair\n{d}"
    );

    // Outcome counters partition each detector's invocations.
    assert_eq!(
        d.counter("core.brute.searches"),
        d.counter("core.brute.conflict")
            + d.counter("core.brute.no_conflict")
            + d.counter("core.brute.budget")
            + d.counter("core.brute.deadline"),
    );
    assert_eq!(
        d.counter("core.uu_search.searches"),
        d.counter("core.uu_search.conflict")
            + d.counter("core.uu_search.no_conflict")
            + d.counter("core.uu_search.budget")
            + d.counter("core.uu_search.deadline"),
    );
    assert_eq!(
        d.counter("core.uu_linear.calls"),
        d.counter("core.uu_linear.nonlinear")
            + d.counter("core.uu_linear.commute")
            + d.counter("core.uu_linear.conflict")
            + d.counter("core.uu_linear.unknown")
            + d.counter("core.uu_linear.deadline"),
    );

    // The linear detector also serves the update-update cross-conflict
    // checks, so it runs at least once per ptime-linear-read route.
    assert!(
        d.counter("core.detect.linear") >= d.counter("sched.route.ptime_linear_read"),
        "{d}"
    );

    // No deadline was configured and nothing panicked.
    assert_eq!(d.counter("sched.route.conservative_deadline"), 0);
    assert_eq!(d.counter("sched.route.conservative_panic"), 0);

    // Latency histograms move with their counters: every distinct pair
    // decision — analyzed or prefilter-skipped — is one sample.
    let h = d
        .histogram("sched.pair_ns")
        .expect("pair histogram recorded");
    assert_eq!(h.count, analyzed + prefiltered);
}

#[test]
fn histograms_and_stats_agree_on_batch_structure() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let ops = ops_of_program(&batch(99, 16, 0.25));
    let out = Scheduler::new(test_config()).run(&ops);
    let d = obs::registry().snapshot().delta(&before);

    assert_eq!(d.counter("sched.batches"), 1);
    assert_eq!(
        out.stats.pairs_total,
        out.stats.trivial
            + out.stats.pairs_analyzed
            + out.stats.cache_hits
            + out.stats.prefilter_skips,
        "stats partition the pair universe"
    );
    assert_eq!(
        d.counter("sched.degraded.budget"),
        out.stats.degraded_budget as u64
    );
    assert_eq!(
        d.counter("sched.degraded.deadline"),
        out.stats.degraded_deadline as u64
    );
    let analyze = d.histogram("sched.analyze_ns").expect("analyze histogram");
    assert_eq!(analyze.count, 1);
    let rounds = d.histogram("sched.rounds_ns").expect("rounds histogram");
    assert_eq!(rounds.count, 1);
}

#[test]
fn compile_cache_hits_and_misses_partition_interns() {
    let _guard = lock();
    let before = obs::registry().snapshot();
    let ops = ops_of_program(&batch(7, 18, 0.2));
    let mut sched = Scheduler::new(test_config());
    sched.run(&ops);
    let mid = obs::registry().snapshot();
    let d1 = mid.delta(&before);

    // Every interned op is exactly one compile-cache probe: a miss the
    // first time its shape is seen, a hit on every repeat.
    assert_eq!(
        d1.counter("automata.compile.miss") + d1.counter("automata.compile.hit"),
        ops.len() as u64,
        "one probe per op"
    );
    assert!(d1.counter("automata.compile.miss") > 0);

    // Re-running the identical batch interns the same shapes: pure hits.
    sched.run(&ops);
    let d2 = obs::registry().snapshot().delta(&mid);
    assert_eq!(d2.counter("automata.compile.miss"), 0, "no new shapes");
    assert_eq!(d2.counter("automata.compile.hit"), ops.len() as u64);
}
