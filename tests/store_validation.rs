//! End-to-end validation of the document store (`cxu-store` behind
//! `cxu-serve`):
//!
//! * **Replica-order independence** — applying the same revision set to
//!   a [`RevTree`] in any permutation yields the same winner, leaves,
//!   and conflict list (the property that makes the winner rule a
//!   replica-agreement rule and not an arrival-order accident).
//! * **Changes-feed discipline** — strictly monotonic sequences, one
//!   row per document, and cursors that replay exactly the suffix.
//! * **Serial equivalence over sockets** — ≥500 seeded rounds of two
//!   clients racing `doc_put` against the same base revision. Whenever
//!   the local detectors (same configuration as the server's) say the
//!   pair provably commutes in both orders, the store must end with a
//!   single merged head isomorphic to a serial order of the two
//!   updates; whenever both orders conflict (or degrade), it must end
//!   branched with the deterministic hash-max winner. Zero
//!   disagreements tolerated.
//! * **Metrics isolation** — a second server's `metrics` route starts
//!   from zero for counters even though the registry is process-global
//!   (the per-server baseline-delta fix).
//!
//! Serialized on one mutex: metrics are process-global and every test
//! binds its own server.

use cxu::gen::json::Json;
use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, ProgramParams, Stmt};
use cxu::gen::rng::{Rng, SplitMix64};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::gen::wire;
use cxu::ops::Update;
use cxu::prelude::*;
use cxu::sched::{Deadline, Op, SchedConfig, Scheduler};
use cxu::serve::{ServeConfig, ServeSummary, Server, ServerHandle};
use cxu::store::{PutPayload, RevId, RevNode, RevTree, Store, StoreConfig};
use cxu::tree::{iso, text};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Barrier, Mutex};
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn start(
    cfg: ServeConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ServeSummary>,
) {
    let server = Server::bind(cfg, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("recv");
        assert!(n > 0, "server closed the connection mid-exchange");
        Json::parse(resp.trim_end()).expect("response is JSON")
    }
}

fn bare(parent: Option<RevId>, deleted: bool) -> RevNode {
    RevNode {
        parent,
        deleted,
        content: None,
        op: None,
        seq: 0,
    }
}

/// A random revision set: a well-formed tree (every parent present)
/// with random tombstones — what a replica might hold after syncing.
fn random_rev_set(rng: &mut SplitMix64) -> Vec<(RevId, RevNode)> {
    let mut nodes: Vec<(RevId, RevNode)> = Vec::new();
    let root = RevId::derive(None, "seed", false);
    nodes.push((root, bare(None, false)));
    let extra = rng.gen_range(3..24);
    for k in 0..extra {
        let parent = nodes[rng.gen_range(0..nodes.len())].0;
        let deleted = rng.gen_bool(0.25);
        let rev = RevId::derive(Some(&parent), &format!("edit-{k}"), deleted);
        if nodes.iter().all(|(r, _)| *r != rev) {
            nodes.push((rev, bare(Some(parent), deleted)));
        }
    }
    nodes
}

fn shuffle<T>(rng: &mut SplitMix64, v: &mut [T]) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.gen_range(0..i + 1));
    }
}

/// Winner, leaves, and conflicts depend only on the revision *set*:
/// every insertion permutation of the same set agrees.
#[test]
fn winner_is_independent_of_insertion_order() {
    for seed in 0..200u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let reference_set = random_rev_set(&mut rng);

        let mut reference = RevTree::new();
        for (rev, node) in &reference_set {
            assert!(reference.insert(*rev, node.clone()));
        }
        let winner = reference.winner().expect("nonempty");
        // Rule 1: a tombstone only wins when every leaf is a tombstone.
        if reference.get(&winner).unwrap().deleted {
            assert!(
                reference
                    .leaves()
                    .iter()
                    .all(|r| reference.get(r).unwrap().deleted),
                "seed {seed}: tombstone won over a live leaf"
            );
        }

        for round in 0..5 {
            let mut permuted = reference_set.clone();
            shuffle(&mut rng, &mut permuted);
            let mut tree = RevTree::new();
            for (rev, node) in &permuted {
                assert!(tree.insert(*rev, node.clone()), "seed {seed} round {round}");
            }
            assert_eq!(tree.winner(), Some(winner), "seed {seed} round {round}");
            assert_eq!(
                tree.leaves(),
                reference.leaves(),
                "seed {seed} round {round}"
            );
            assert_eq!(
                tree.conflicts(),
                reference.conflicts(),
                "seed {seed} round {round}"
            );
        }
    }
}

fn sched_check<'a>(
    sched: &'a mut Scheduler,
) -> impl FnMut(&Op, &Op) -> cxu::sched::PairDecision + 'a {
    let deadline = Deadline::never();
    move |a: &Op, b: &Op| sched.check_pair(a, b, &deadline)
}

/// The changes feed is strictly monotonic, deduplicated per document,
/// and cursors replay exactly the suffix — including across updates
/// that move a document to a later slot.
#[test]
fn changes_feed_is_monotonic_with_exact_cursor_replay() {
    let _g = lock(); // Store::put tallies into the process-global registry.
    let store = Store::new(StoreConfig::default());
    let mut sched = Scheduler::new(SchedConfig {
        jobs: 1,
        ..SchedConfig::default()
    });
    let mut check = sched_check(&mut sched);

    let mut rng = SplitMix64::seed_from_u64(11);
    let tparams = TreeParams {
        alphabet: 6,
        nodes: 10,
        ..TreeParams::default()
    };
    let mut revs = Vec::new();
    for d in 0..6 {
        let t = random_tree(&mut rng, &tparams);
        let out = store
            .put(&format!("d{d}"), None, PutPayload::Content(t), &mut check)
            .unwrap();
        revs.push(out.rev);
    }
    // Touch a couple of documents again (replacement at the winner):
    // their rows must move to the tail of the feed.
    for &d in &[1usize, 3] {
        let t = random_tree(&mut rng, &tparams);
        store
            .put(
                &format!("d{d}"),
                Some(revs[d]),
                PutPayload::Content(t),
                &mut check,
            )
            .unwrap();
    }

    let (all, last) = store.changes(0, None);
    assert_eq!(all.len(), 6, "one row per document");
    assert!(all.windows(2).all(|w| w[0].seq < w[1].seq), "monotonic");
    assert_eq!(all[4].doc, "d1");
    assert_eq!(all[5].doc, "d3");
    assert_eq!(last, store.current_seq());

    // Every suffix cursor replays exactly the rows after it.
    for i in 0..all.len() {
        let (tail, _) = store.changes(all[i].seq, None);
        assert_eq!(&tail[..], &all[i + 1..], "cursor at row {i}");
    }
    // Limit-paging walks the same rows.
    let mut cursor = 0;
    let mut paged = Vec::new();
    loop {
        let (page, next) = store.changes(cursor, Some(2));
        if page.is_empty() {
            break;
        }
        paged.extend(page);
        assert!(next > cursor, "paging cursor must advance");
        cursor = next;
    }
    assert_eq!(paged, all);
}

/// An update-only op pool sharing the document alphabet.
fn update_pool(seed: u64, len: usize) -> Vec<Update> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = 0.15;
    let params = ProgramParams {
        len,
        update_rate: 1.0,
        delete_rate: 0.35,
        pattern,
    };
    random_program(&mut rng, &params)
        .stmts
        .into_iter()
        .map(|s| match s {
            Stmt::Update(u) => u,
            Stmt::Read(_) => unreachable!("update_rate is 1.0"),
        })
        .collect()
}

/// ≥500 seeded rounds of two clients racing `doc_put` against the same
/// base revision, cross-checked against the in-process detectors.
#[test]
fn racing_puts_merge_iff_provably_commuting_with_deterministic_winners() {
    let _g = lock();
    let cfg = ServeConfig::default();
    let sched_cfg = SchedConfig {
        semantics: Semantics::Value,
        ..cfg.sched
    };
    let (addr, _handle, join) = start(cfg);
    let mut setup = Client::connect(addr);

    let pool = update_pool(0xD0C5, 48);
    let pool_json: Vec<String> = pool
        .iter()
        .map(|u| wire::update_to_json(u).to_string())
        .collect();
    // The server routes every pair through the same discipline; with a
    // never-deadline locally, the only degradations left on either side
    // are budget ones — deterministic and identical by configuration.
    let mut local = Scheduler::new(sched_cfg);
    let never = Deadline::never();

    let tparams = TreeParams {
        alphabet: 6,
        nodes: 10,
        ..TreeParams::default()
    };

    let mut merged_rounds = 0usize;
    let mut branched_rounds = 0usize;
    let mut mixed_rounds = 0usize;
    let mut disagreements = Vec::new();
    const ROUNDS: u64 = 500;

    for seed in 0..ROUNDS {
        let mut rng = SplitMix64::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 7);
        let base_tree = random_tree(&mut rng, &tparams);
        let doc = format!("race-{seed}");
        let v = setup.roundtrip(&format!(
            "{{\"route\": \"doc_put\", \"doc\": \"{doc}\", \"content\": \"{}\"}}",
            text::to_text(&base_tree)
        ));
        assert_eq!(
            v.get("result").and_then(Json::as_str),
            Some("created"),
            "{v:?}"
        );
        let base_rev = v.get("rev").and_then(Json::as_str).unwrap().to_owned();

        // Two distinct updates (distinct wire forms ⇒ distinct revs).
        let (i, j) = loop {
            let i = rng.gen_range(0..pool.len());
            let j = rng.gen_range(0..pool.len());
            if pool_json[i] != pool_json[j] {
                break (i, j);
            }
        };

        // Race them from two connections through a barrier.
        let barrier = Barrier::new(2);
        let reqs = [&pool_json[i], &pool_json[j]].map(|op| {
            format!(
                "{{\"route\": \"doc_put\", \"doc\": \"{doc}\", \"base_rev\": \"{base_rev}\", \
                 \"op\": {op}, \"deadline_ms\": 60000}}"
            )
        });
        let [v1, v2] = std::thread::scope(|scope| {
            let handles = reqs.each_ref().map(|req| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut c = Client::connect(addr);
                    barrier.wait();
                    c.roundtrip(req)
                })
            });
            handles.map(|h| h.join().expect("racer thread"))
        });

        for v in [&v1, &v2] {
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
        }
        let results: Vec<&str> = [&v1, &v2]
            .iter()
            .map(|v| v.get("result").and_then(Json::as_str).unwrap())
            .collect();
        // Exactly one fast-path apply; the other merged or branched.
        assert_eq!(
            results.iter().filter(|r| **r == "applied").count(),
            1,
            "seed {seed}: {results:?}"
        );

        // Predict from the local detectors, in both orders (the server
        // checked whichever order the race produced).
        let (a, b) = (Op::Update(pool[i].clone()), Op::Update(pool[j].clone()));
        let dab = local.check_pair(&a, &b, &never);
        let dba = local.check_pair(&b, &a, &never);
        let exact_commute = |d: &cxu::sched::PairDecision| {
            !d.verdict.conflict && !d.verdict.detector.is_conservative()
        };
        let no_merge = |d: &cxu::sched::PairDecision| {
            d.verdict.conflict || d.verdict.detector.is_conservative()
        };

        let g = setup.roundtrip(&format!(
            "{{\"route\": \"doc_get\", \"doc\": \"{doc}\", \"conflicts\": true}}"
        ));
        let winner_rev: RevId = g
            .get("rev")
            .and_then(Json::as_str)
            .unwrap()
            .parse()
            .unwrap();
        let winner_tree = text::parse(g.get("content").and_then(Json::as_str).unwrap()).unwrap();
        let n_conflicts = g
            .get("conflicts")
            .and_then(Json::as_arr)
            .map_or(0, |a| a.len());

        if exact_commute(&dab) && exact_commute(&dba) {
            // Provably commuting in both orders: single merged head,
            // isomorphic to a serial order of the two updates.
            merged_rounds += 1;
            let (t_ij, _) = pool[j].apply_to_copy(&pool[i].apply_to_copy(&base_tree).0);
            let (t_ji, _) = pool[i].apply_to_copy(&pool[j].apply_to_copy(&base_tree).0);
            if !(results.contains(&"merged")
                && n_conflicts == 0
                && winner_rev.generation == 3
                && (iso::isomorphic(&winner_tree, &t_ij) || iso::isomorphic(&winner_tree, &t_ji)))
            {
                disagreements.push(format!(
                    "seed {seed}: commuting pair did not merge cleanly \
                     (results {results:?}, conflicts {n_conflicts}, winner {winner_rev})"
                ));
            }
        } else if no_merge(&dab) && no_merge(&dba) {
            // Conflicting (or unprovable) in both orders: branch, and
            // the winner is the hash-max sibling regardless of arrival.
            branched_rounds += 1;
            let r1: RevId = v1
                .get("rev")
                .and_then(Json::as_str)
                .unwrap()
                .parse()
                .unwrap();
            let r2: RevId = v2
                .get("rev")
                .and_then(Json::as_str)
                .unwrap()
                .parse()
                .unwrap();
            let (expect, winner_op) = if (r1.generation, r1.hash) > (r2.generation, r2.hash) {
                (r1, &pool[i])
            } else {
                (r2, &pool[j])
            };
            let (t_expect, _) = winner_op.apply_to_copy(&base_tree);
            if !(results.contains(&"branched")
                && n_conflicts == 1
                && winner_rev == expect
                && iso::isomorphic(&winner_tree, &t_expect))
            {
                disagreements.push(format!(
                    "seed {seed}: conflicting pair did not branch to the \
                     deterministic winner (results {results:?}, conflicts \
                     {n_conflicts}, winner {winner_rev}, expected {expect})"
                ));
            }
        } else {
            // Order-dependent verdicts: the outcome legitimately depends
            // on which put landed first; the structural invariants above
            // (one fast path, winner readable) still held.
            mixed_rounds += 1;
        }
    }

    assert!(
        disagreements.is_empty(),
        "{} disagreement(s) over {ROUNDS} rounds:\n{}",
        disagreements.len(),
        disagreements.join("\n")
    );
    assert!(
        merged_rounds > 0 && branched_rounds > 0,
        "workload must exercise both rungs: merged {merged_rounds}, \
         branched {branched_rounds}, mixed {mixed_rounds}"
    );

    let v = setup.roundtrip(r#"{"route": "shutdown"}"#);
    assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
    drop(setup);
    let summary = join.join().unwrap();
    assert_eq!(
        summary.accepted,
        summary.completed + summary.rejected_overload + summary.failed
    );
    assert_eq!(summary.failed, 0);
}

/// Two servers in one process do not see each other's counters: the
/// metrics route reports per-server deltas (the satellite fix), while
/// gauges stay levels.
#[test]
fn metrics_route_is_isolated_per_server() {
    let _g = lock();

    // Server A does store work, then drains completely.
    let (addr_a, _ha, join_a) = start(ServeConfig::default());
    let mut ca = Client::connect(addr_a);
    let v = ca.roundtrip(r#"{"route": "doc_put", "doc": "a", "content": "x(y z)"}"#);
    assert_eq!(v.get("result").and_then(Json::as_str), Some("created"));
    let m = ca.roundtrip(r#"{"route": "metrics"}"#);
    let counters = m.get("metrics").and_then(|m| m.get("counters")).unwrap();
    assert_eq!(counters.get("store.puts").and_then(Json::as_u64), Some(1));
    ca.roundtrip(r#"{"route": "shutdown"}"#);
    drop(ca);
    join_a.join().unwrap();

    // Server B binds after A's activity: its counters start at zero,
    // and its store gauges report its own (empty) levels.
    let (addr_b, _hb, join_b) = start(ServeConfig::default());
    let mut cb = Client::connect(addr_b);
    let m = cb.roundtrip(r#"{"route": "metrics"}"#);
    let metrics = m.get("metrics").unwrap();
    let counters = metrics.get("counters").unwrap();
    assert_eq!(
        counters
            .get("store.puts")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        0,
        "server B inherited server A's counters: {m}"
    );
    assert_eq!(
        counters
            .get("serve.completed")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        1,
        "B sees exactly its own metrics request, none of A's completions"
    );
    let gauges = metrics.get("gauges").unwrap();
    assert_eq!(
        gauges.get("store.docs").and_then(Json::as_u64).unwrap_or(0),
        0,
        "gauges are levels; B's store is empty"
    );
    cb.roundtrip(r#"{"route": "shutdown"}"#);
    drop(cb);
    join_b.join().unwrap();
}

/// Tombstone discipline over the wire: delete needs the current rev,
/// edits against the tombstone are rejected (not failed), and a
/// base-less content put resurrects.
#[test]
fn tombstones_and_resurrection_over_the_wire() {
    let _g = lock();
    let (addr, _handle, join) = start(ServeConfig::default());
    let mut c = Client::connect(addr);

    let v = c.roundtrip(r#"{"route": "doc_put", "doc": "t", "content": "a(b c)"}"#);
    let rev = v.get("rev").and_then(Json::as_str).unwrap().to_owned();

    let v = c.roundtrip(&format!(
        r#"{{"route": "doc_delete", "doc": "t", "rev": "{rev}"}}"#
    ));
    assert_eq!(v.get("result").and_then(Json::as_str), Some("applied"));
    assert_eq!(v.get("winner_deleted").and_then(Json::as_bool), Some(true));
    let tomb = v.get("rev").and_then(Json::as_str).unwrap().to_owned();

    // Reads see the tombstone; edits against it are *rejected* answers.
    let v = c.roundtrip(r#"{"route": "doc_get", "doc": "t"}"#);
    assert_eq!(v.get("deleted").and_then(Json::as_bool), Some(true));
    assert!(v.get("content").is_none());
    let v = c.roundtrip(
        &format!(
            r#"{{"route": "doc_put", "doc": "t", "base_rev": "{tomb}",
            "op": {{"kind": "insert", "pattern": "a/b", "subtree": "q"}}}}"#
        )
        .replace('\n', " "),
    );
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    assert_eq!(v.get("result").and_then(Json::as_str), Some("rejected"));
    assert_eq!(v.get("reason").and_then(Json::as_str), Some("conflict"));

    // Resurrection extends the tombstone's history.
    let v = c.roundtrip(r#"{"route": "doc_put", "doc": "t", "content": "a(z)"}"#);
    assert_eq!(v.get("result").and_then(Json::as_str), Some("created"));
    let re: RevId = v
        .get("rev")
        .and_then(Json::as_str)
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(re.generation, 3);

    // Unknown documents and unknown revisions are found: false, and a
    // malformed revision id is a bad request (parse-time, not queued).
    let v = c.roundtrip(r#"{"route": "doc_get", "doc": "missing"}"#);
    assert_eq!(v.get("found").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("reason").and_then(Json::as_str), Some("not-found"));
    let v = c.roundtrip(r#"{"route": "doc_put", "doc": "t", "base_rev": "bogus", "content": "a"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("error").and_then(Json::as_str), Some("bad-request"));

    c.roundtrip(r#"{"route": "shutdown"}"#);
    drop(c);
    let summary = join.join().unwrap();
    assert_eq!(
        summary.accepted,
        summary.completed + summary.rejected_overload + summary.failed
    );
    // The malformed base_rev is the only failure.
    assert_eq!(summary.failed, 1);
}
