//! Integration tests driving the `cxu` binary end to end.

use std::process::{Command, Output};

fn cxu(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cxu"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn check_conflict_linear() {
    let out = cxu(&[
        "check",
        "--read",
        "x//C",
        "--insert",
        "x/B",
        "--subtree",
        "C",
    ]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("CONFLICT"), "{s}");
    assert!(s.contains("witness"), "evidence shown: {s}");
}

#[test]
fn check_independent_linear() {
    let out = cxu(&[
        "check",
        "--read",
        "x//D",
        "--insert",
        "x/B",
        "--subtree",
        "C",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("independent"));
}

#[test]
fn check_delete() {
    let out = cxu(&["check", "--read", "a/b//v", "--delete", "a/b/u"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("CONFLICT"));
}

#[test]
fn check_semantics_flag() {
    // Node-independent but tree-conflicting pair.
    let node = cxu(&[
        "check",
        "--read",
        "a/b",
        "--insert",
        "a/b/c",
        "--subtree",
        "x",
    ]);
    assert!(stdout(&node).contains("independent"));
    let tree = cxu(&[
        "check",
        "--read",
        "a/b",
        "--insert",
        "a/b/c",
        "--subtree",
        "x",
        "--semantics",
        "tree",
    ]);
    assert!(stdout(&tree).contains("CONFLICT"), "{}", stdout(&tree));
}

#[test]
fn check_branching_read_uses_search() {
    let out = cxu(&[
        "check",
        "--read",
        "a[b][c]",
        "--insert",
        "a[b]",
        "--subtree",
        "c",
    ]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("CONFLICT") && s.contains("exhaustive"), "{s}");
}

#[test]
fn witness_and_minimize() {
    let out = cxu(&[
        "witness",
        "--read",
        "x//C",
        "--insert",
        "x/B",
        "--subtree",
        "C",
        "--doc",
        "x(B(pad) junk(j1 j2))",
        "--minimize",
    ]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("WITNESSES"), "{s}");
    assert!(s.contains("minimized witness"), "{s}");
    assert!(s.contains("x(B)"), "{s}");
}

#[test]
fn witness_negative() {
    let out = cxu(&[
        "witness",
        "--read",
        "x//C",
        "--insert",
        "x/B",
        "--subtree",
        "C",
        "--doc",
        "x(D)",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("does not witness"));
}

#[test]
fn eval_inline_term() {
    let out = cxu(&["eval", "--pattern", "a//b", "--doc", "a(b x(b))"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("2 node(s) selected"));
}

#[test]
fn eval_xml_file() {
    let dir = std::env::temp_dir().join("cxu-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.xml");
    std::fs::write(&path, "<inv><book><q/></book><book/></inv>").unwrap();
    let out = cxu(&[
        "eval",
        "--pattern",
        "inv/book[q]",
        "--doc",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(
        stdout(&out).contains("1 node(s) selected"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn containment_both_ways() {
    let yes = cxu(&["contain", "--sub", "a/b", "--sup", "a//b"]);
    assert!(stdout(&yes).contains("⊆"));
    let no = cxu(&["contain", "--sub", "a//b", "--sup", "a/b"]);
    let s = stdout(&no);
    assert!(s.contains("⊄") && s.contains("counterexample"), "{s}");
}

#[test]
fn missing_args_fail_cleanly() {
    let out = cxu(&["check", "--read", "a/b"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--insert"));
}

#[test]
fn bad_pattern_reports_position() {
    let out = cxu(&["check", "--read", "a[", "--delete", "a/b"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad pattern"));
}

#[test]
fn help_and_unknown_command() {
    let help = cxu(&["help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("USAGE"));
    let unknown = cxu(&["frobnicate"]);
    assert!(!unknown.status.success());
}

#[test]
fn no_args_prints_usage() {
    let out = cxu(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn analyze_inline_program() {
    let out = cxu(&[
        "analyze",
        "--program",
        "y = read $x//A; insert $x/B, <C/>; z = read $x//C; w = read $x//D",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("CONFLICT"), "{s}");
    assert!(s.contains("independent"), "{s}");
}

#[test]
fn analyze_program_file() {
    let dir = std::env::temp_dir().join("cxu-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.cxu");
    std::fs::write(
        &path,
        "# restock pipeline\ny = read $x/book/title\ninsert $x/book, restock\nz = read $x/book/title\n",
    )
    .unwrap();
    let out = cxu(&["analyze", "--program", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("CSE-reusable read pairs: [(0, 2)]"), "{s}");
}

#[test]
fn analyze_bad_program() {
    let out = cxu(&["analyze", "--program", "launch the missiles"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("statement 1"));
}

#[test]
fn dot_export() {
    let p = cxu(&["dot", "--pattern", "a[.//c]/b"]);
    assert!(p.status.success());
    let s = stdout(&p);
    assert!(
        s.starts_with("digraph") && s.contains("style=dashed"),
        "{s}"
    );
    let t = cxu(&["dot", "--doc", "a(b c(d))"]);
    assert!(stdout(&t).matches("->").count() == 3);
    let neither = cxu(&["dot"]);
    assert!(!neither.status.success());
}

#[test]
fn flag_value_starting_with_dashes() {
    // A label literally named `--x`: the old parser treated the flag as
    // boolean whenever the next argument started with `--`.
    let out = cxu(&["dot", "--doc", "--x(b)"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("--x"), "{}", stdout(&out));
    // Also as an inserted subtree.
    let w = cxu(&[
        "witness",
        "--read",
        "x//--x",
        "--insert",
        "x/B",
        "--subtree",
        "--x",
        "--doc",
        "x(B)",
    ]);
    assert!(w.status.success(), "{}", stderr(&w));
    assert!(stdout(&w).contains("WITNESSES"), "{}", stdout(&w));
}

#[test]
fn flag_equals_value_form() {
    let out = cxu(&[
        "check",
        "--read=a/b",
        "--insert=a/b/c",
        "--subtree=x",
        "--semantics=tree",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("CONFLICT"), "{}", stdout(&out));
}

#[test]
fn missing_flag_value_is_an_error() {
    let out = cxu(&["eval", "--pattern", "a/b", "--doc"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("requires a value"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn schedule_text() {
    let out = cxu(&[
        "schedule",
        "--program",
        "y = read $x//A; insert $x/B, C; z = read $x//C",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("rounds:"), "{s}");
    assert!(s.contains("0: [0, 1]"), "{s}");
    assert!(s.contains("1: [2]"), "{s}");
    assert!(s.contains("ptime-linear-read"), "{s}");
}

#[test]
fn schedule_json_and_dot() {
    let prog = "y = read $x//A; insert $x/B, C; z = read $x//C";
    let json = cxu(&[
        "schedule",
        "--program",
        prog,
        "--format",
        "json",
        "--jobs",
        "2",
    ]);
    assert!(json.status.success(), "{}", stderr(&json));
    let s = stdout(&json);
    assert!(s.contains("\"rounds\": [[0, 1], [2]]"), "{s}");
    assert!(s.contains("\"detector\": \"ptime-linear-read\""), "{s}");
    assert!(s.contains("\"jobs\": 2"), "{s}");
    let dot = cxu(&["schedule", "--program", prog, "--format", "dot"]);
    assert!(dot.status.success());
    let d = stdout(&dot);
    assert!(d.starts_with("graph conflicts {"), "{d}");
    assert!(d.contains("n1 -- n2"), "{d}");
}

#[test]
fn schedule_rejects_bad_jobs_and_format() {
    let prog = "insert $x/B, C";
    let bad_jobs = cxu(&["schedule", "--program", prog, "--jobs", "0"]);
    assert!(!bad_jobs.status.success());
    assert!(
        stderr(&bad_jobs).contains("positive integer"),
        "{}",
        stderr(&bad_jobs)
    );
    let bad_fmt = cxu(&["schedule", "--program", prog, "--format", "yaml"]);
    assert!(!bad_fmt.status.success());
}

#[test]
fn schedule_rejects_zero_deadline() {
    let out = cxu(&[
        "schedule",
        "--program",
        "insert $x/B, C",
        "--deadline-ms",
        "0",
    ]);
    assert!(!out.status.success());
    let e = stderr(&out);
    assert!(e.contains("--deadline-ms"), "{e}");
    assert!(e.contains("positive"), "{e}");
}

#[test]
fn detect_is_an_alias_of_check() {
    let out = cxu(&[
        "detect",
        "--read",
        "x//C",
        "--insert",
        "x/B",
        "--subtree",
        "C",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("CONFLICT"), "{}", stdout(&out));
}

#[test]
fn schedule_metrics_text() {
    let out = cxu(&[
        "schedule",
        "--program",
        "y = read $x//A; insert $x/B, C; z = read $x//C",
        "--metrics",
        "text",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("metrics (delta for this run):"), "{s}");
    assert!(s.contains("sched.route.ptime_linear_read"), "{s}");
    assert!(s.contains("sched.cache.lookups"), "{s}");
}

#[test]
fn schedule_metrics_json_embedded() {
    let out = cxu(&[
        "schedule",
        "--program",
        "y = read $x//A; insert $x/B, C; z = read $x//C",
        "--format",
        "json",
        "--metrics",
        "json",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("\"metrics\": {\"counters\": {"), "{s}");
    assert!(s.contains("\"sched.route.ptime_linear_read\": 2"), "{s}");
    assert!(s.contains("\"histograms\""), "{s}");
    // Braces balance — the metrics object nests inside the report.
    let opens = s.matches('{').count();
    let closes = s.matches('}').count();
    assert_eq!(opens, closes, "{s}");
    let bad = cxu(&[
        "schedule",
        "--program",
        "insert $x/B, C",
        "--metrics",
        "xml",
    ]);
    assert!(!bad.status.success());
}

#[test]
fn schedule_gen_seed_is_deterministic() {
    let run = || {
        let out = cxu(&[
            "schedule",
            "--gen-seed",
            "7",
            "--gen-len",
            "8",
            "--gen-branch",
            "0.0",
            "--format",
            "json",
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    };
    assert_eq!(run(), run());
    let conflicting = cxu(&[
        "schedule",
        "--gen-seed",
        "7",
        "--gen-len",
        "8",
        "--program",
        "insert $x/B, C",
    ]);
    assert!(!conflicting.status.success());
    assert!(
        stderr(&conflicting).contains("mutually exclusive"),
        "{}",
        stderr(&conflicting)
    );
}

#[test]
fn trace_writes_jsonl() {
    let dir = std::env::temp_dir().join("cxu-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let out = cxu(&[
        "detect",
        "--read",
        "x//C",
        "--insert",
        "x/B",
        "--subtree",
        "C",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let trace = std::fs::read_to_string(&path).unwrap();
    assert!(!trace.is_empty(), "trace file has events");
    for line in trace.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    assert!(
        trace.contains("\"name\": \"core.detect.linear\""),
        "{trace}"
    );
}
