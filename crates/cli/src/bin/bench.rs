//! `cxu-bench` — hermetic perf measurements for the bench artifacts.
//!
//! Unlike `crates/bench` (criterion, excluded from the workspace so the
//! default build stays offline), this binary uses only workspace crates
//! and wall-clock timing, so CI can produce `BENCH_AUTOMATA.json` and
//! `BENCH_SCHED.json` on a fixed seed with no network access:
//!
//! ```text
//! cxu-bench automata > BENCH_AUTOMATA.json
//! cxu-bench sched    > BENCH_SCHED.json
//! ```
//!
//! `scripts/bench.sh` wraps both invocations.

use cxu::gen::patterns::{random_pattern, PatternParams};
use cxu::gen::program::{random_program, ProgramParams};
use cxu::gen::rng::SplitMix64;
use cxu::sched::{ops_of_program, Op, SchedConfig, Scheduler};
use std::time::Instant;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "automata" => bench_automata(),
        "sched" => bench_sched(),
        _ => {
            eprintln!("usage: cxu-bench <automata|sched>");
            std::process::exit(2);
        }
    }
}

/// Median-of-runs ns/op for `f` over `iters` iterations.
fn time_ns<F: FnMut() -> bool>(iters: u32, mut f: F) -> f64 {
    let mut samples = [0f64; 5];
    for s in samples.iter_mut() {
        let t0 = Instant::now();
        let mut acc = false;
        for _ in 0..iters {
            acc ^= f();
        }
        let dt = t0.elapsed().as_nanos() as f64 / iters as f64;
        // Keep the side effect alive without printing it.
        std::hint::black_box(acc);
        *s = dt;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[2]
}

/// Intersection-emptiness microbench: the legacy `Nfa` product (per-call
/// lowering + `HashSet` unions, as the pre-compilation engine ran it)
/// against the compiled bitset product over cached chains.
fn bench_automata() {
    use cxu::core::matching::{compile, nfa};

    let seed = 0xA07A_u64;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let params = PatternParams {
        nodes: 4,
        alphabet: 6,
        branch_rate: 0.0,
        ..PatternParams::default()
    };
    let pats: Vec<_> = (0..32).map(|_| random_pattern(&mut rng, &params)).collect();
    let pairs: Vec<(usize, usize)> = (0..pats.len())
        .flat_map(|i| (i + 1..pats.len()).map(move |j| (i, j)))
        .collect();

    // Before: lower both patterns and run the HashSet-based product, per
    // call — the shape of the old PTIME hot path.
    let mut k = 0usize;
    let legacy_ns = time_ns(200, || {
        let (i, j) = pairs[k % pairs.len()];
        k += 1;
        nfa(&pats[i]).intersects(&nfa(&pats[j]))
    });

    // After: compile once, run the allocation-free bitset product.
    let chains: Vec<_> = pats.iter().map(compile).collect();
    let mut k2 = 0usize;
    let compiled_ns = time_ns(2000, || {
        let (i, j) = pairs[k2 % pairs.len()];
        k2 += 1;
        chains[i].intersects(&chains[j])
    });
    let mut k3 = 0usize;
    let compiled_weak_ns = time_ns(2000, || {
        let (i, j) = pairs[k3 % pairs.len()];
        k3 += 1;
        chains[i].intersects_weak(&chains[j])
    });

    println!(
        "{{\n  \"bench\": \"automata\",\n  \"seed\": {seed},\n  \
         \"workload\": {{\"patterns\": {}, \"pattern_nodes\": 4, \"alphabet\": 6, \
         \"branch_rate\": 0.0}},\n  \
         \"intersects_ns_per_op\": {{\n    \"legacy_nfa\": {legacy_ns:.1},\n    \
         \"compiled\": {compiled_ns:.1},\n    \
         \"compiled_weak\": {compiled_weak_ns:.1},\n    \
         \"speedup\": {:.2}\n  }}\n}}",
        pats.len(),
        legacy_ns / compiled_ns
    );
}

/// A fixed-seed scheduling workload profile. Patterns are always linear
/// (`branch_rate` 0): the point of the trajectory is the §4 PTIME path.
struct Profile {
    /// Profile name in the report.
    name: &'static str,
    /// Per-statement probability of an update (vs a read).
    update_rate: f64,
    /// Label pool size (larger → fewer accidentally-overlapping pairs).
    alphabet: usize,
    /// Base seed; each size adds its op count.
    seed: u64,
}

/// `mixed` mirrors the `crates/bench` criterion workload (same sizes,
/// seeds, and config) — update-heavy, so overlapping update pairs route
/// a large share of the time into the NP-side bounded searches.
/// `linear` is read-dominated: pair decisions stay on the §4 PTIME
/// read–update detector and the batch pre-filter, the paths this crate's
/// compiled automata accelerate.
const PROFILES: [Profile; 2] = [
    Profile {
        name: "mixed",
        update_rate: 0.5,
        alphabet: 6,
        seed: 0xBA5E,
    },
    Profile {
        name: "linear",
        update_rate: 0.2,
        alphabet: 8,
        seed: 0x11EA6,
    },
];

fn batch(len: usize, profile: &Profile) -> Vec<Op> {
    let mut rng = SplitMix64::seed_from_u64(profile.seed + len as u64);
    let p = random_program(
        &mut rng,
        &ProgramParams {
            len,
            update_rate: profile.update_rate,
            delete_rate: 0.4,
            pattern: PatternParams {
                nodes: 4,
                alphabet: profile.alphabet,
                branch_rate: 0.0,
                ..PatternParams::default()
            },
        },
    );
    ops_of_program(&p)
}

/// Deterministic scheduler runs with the `cxu-obs` registry snapshotted
/// around each batch, so the report carries the route mix (pre-filter
/// skips, compile cache hits/misses) and latency columns next to the
/// raw metrics blob.
fn bench_sched() {
    let mut profiles = String::new();
    for (pi, profile) in PROFILES.iter().enumerate() {
        let mut runs = String::new();
        for (i, &n) in [50usize, 100, 200, 400].iter().enumerate() {
            let ops = batch(n, profile);
            let before = cxu::obs::registry().snapshot();
            let t0 = Instant::now();
            let out = Scheduler::new(SchedConfig {
                jobs: 1,
                np_max_trees: 2_000,
                ..SchedConfig::default()
            })
            .run(&ops);
            let wall_us = t0.elapsed().as_micros();
            let delta = cxu::obs::registry().snapshot().delta(&before);
            let st = out.stats;
            let pair = delta.histogram("sched.pair_ns");
            let (pair_count, pair_sum, pair_mean) = pair
                .map(|h| (h.count, h.sum, h.mean()))
                .unwrap_or((0, 0, 0));
            if i > 0 {
                runs.push_str(",\n");
            }
            runs.push_str(&format!(
                "      {{\"ops\": {}, \"wall_us\": {wall_us}, \
                 \"pairs_total\": {}, \"trivial\": {}, \"pairs_analyzed\": {}, \
                 \"cache_hits\": {}, \"prefilter_skips\": {}, \
                 \"compile_hits\": {}, \"compile_misses\": {}, \
                 \"conflict_edges\": {}, \"rounds\": {}, \
                 \"pair_ns_mean\": {pair_mean}, \"pair_ns_sum\": {pair_sum}, \
                 \"pair_ns_count\": {pair_count},\n       \
                 \"metrics\": {}}}",
                st.ops,
                st.pairs_total,
                st.trivial,
                st.pairs_analyzed,
                st.cache_hits,
                st.prefilter_skips,
                delta.counter("automata.compile.hit"),
                delta.counter("automata.compile.miss"),
                st.conflict_edges,
                st.rounds,
                delta.to_json()
            ));
        }
        if pi > 0 {
            profiles.push_str(",\n");
        }
        profiles.push_str(&format!(
            "    {{\"profile\": \"{}\", \"update_rate\": {}, \"alphabet\": {}, \
             \"seed\": {},\n     \
             \"runs\": [\n{runs}\n    ]}}",
            profile.name, profile.update_rate, profile.alphabet, profile.seed
        ));
    }
    println!(
        "{{\n  \"bench\": \"sched\",\n  \"workload\": {{\"delete_rate\": 0.4, \
         \"pattern_nodes\": 4, \"branch_rate\": 0.0, \
         \"np_max_trees\": 2000, \"jobs\": 1}},\n  \
         \"profiles\": [\n{profiles}\n  ]\n}}"
    );
}
