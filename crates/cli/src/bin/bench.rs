//! `cxu-bench` — hermetic perf measurements for the bench artifacts.
//!
//! Unlike `crates/bench` (criterion, excluded from the workspace so the
//! default build stays offline), this binary uses only workspace crates
//! and wall-clock timing, so CI can produce `BENCH_AUTOMATA.json` and
//! `BENCH_SCHED.json` on a fixed seed with no network access:
//!
//! ```text
//! cxu-bench automata > BENCH_AUTOMATA.json
//! cxu-bench sched    > BENCH_SCHED.json
//! cxu-bench index    > BENCH_INDEX.json
//! ```
//!
//! `scripts/bench.sh` wraps all invocations.

use cxu::gen::patterns::{random_pattern, PatternParams};
use cxu::gen::program::{random_program, ProgramParams};
use cxu::gen::rng::SplitMix64;
use cxu::sched::{ops_of_program, Op, SchedConfig, Scheduler};
use std::time::Instant;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "automata" => bench_automata(),
        "sched" => bench_sched(),
        "index" => bench_index(),
        _ => {
            eprintln!("usage: cxu-bench <automata|sched|index>");
            std::process::exit(2);
        }
    }
}

/// Median-of-runs ns/op for `f` over `iters` iterations.
fn time_ns<F: FnMut() -> bool>(iters: u32, mut f: F) -> f64 {
    let mut samples = [0f64; 5];
    for s in samples.iter_mut() {
        let t0 = Instant::now();
        let mut acc = false;
        for _ in 0..iters {
            acc ^= f();
        }
        let dt = t0.elapsed().as_nanos() as f64 / iters as f64;
        // Keep the side effect alive without printing it.
        std::hint::black_box(acc);
        *s = dt;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[2]
}

/// Intersection-emptiness microbench: the legacy `Nfa` product (per-call
/// lowering + `HashSet` unions, as the pre-compilation engine ran it)
/// against the compiled bitset product over cached chains.
fn bench_automata() {
    use cxu::core::matching::{compile, nfa};

    let seed = 0xA07A_u64;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let params = PatternParams {
        nodes: 4,
        alphabet: 6,
        branch_rate: 0.0,
        ..PatternParams::default()
    };
    let pats: Vec<_> = (0..32).map(|_| random_pattern(&mut rng, &params)).collect();
    let pairs: Vec<(usize, usize)> = (0..pats.len())
        .flat_map(|i| (i + 1..pats.len()).map(move |j| (i, j)))
        .collect();

    // Before: lower both patterns and run the HashSet-based product, per
    // call — the shape of the old PTIME hot path.
    let mut k = 0usize;
    let legacy_ns = time_ns(200, || {
        let (i, j) = pairs[k % pairs.len()];
        k += 1;
        nfa(&pats[i]).intersects(&nfa(&pats[j]))
    });

    // After: compile once, run the allocation-free bitset product.
    let chains: Vec<_> = pats.iter().map(compile).collect();
    let mut k2 = 0usize;
    let compiled_ns = time_ns(2000, || {
        let (i, j) = pairs[k2 % pairs.len()];
        k2 += 1;
        chains[i].intersects(&chains[j])
    });
    let mut k3 = 0usize;
    let compiled_weak_ns = time_ns(2000, || {
        let (i, j) = pairs[k3 % pairs.len()];
        k3 += 1;
        chains[i].intersects_weak(&chains[j])
    });

    println!(
        "{{\n  \"bench\": \"automata\",\n  \"seed\": {seed},\n  \
         \"workload\": {{\"patterns\": {}, \"pattern_nodes\": 4, \"alphabet\": 6, \
         \"branch_rate\": 0.0}},\n  \
         \"intersects_ns_per_op\": {{\n    \"legacy_nfa\": {legacy_ns:.1},\n    \
         \"compiled\": {compiled_ns:.1},\n    \
         \"compiled_weak\": {compiled_weak_ns:.1},\n    \
         \"speedup\": {:.2}\n  }}\n}}",
        pats.len(),
        legacy_ns / compiled_ns
    );
}

/// A fixed-seed scheduling workload profile. Patterns are always linear
/// (`branch_rate` 0): the point of the trajectory is the §4 PTIME path.
struct Profile {
    /// Profile name in the report.
    name: &'static str,
    /// Per-statement probability of an update (vs a read).
    update_rate: f64,
    /// Label pool size (larger → fewer accidentally-overlapping pairs).
    alphabet: usize,
    /// Base seed; each size adds its op count.
    seed: u64,
}

/// `mixed` mirrors the `crates/bench` criterion workload (same sizes,
/// seeds, and config) — update-heavy, so overlapping update pairs route
/// a large share of the time into the NP-side bounded searches.
/// `linear` is read-dominated: pair decisions stay on the §4 PTIME
/// read–update detector and the batch pre-filter, the paths this crate's
/// compiled automata accelerate.
const PROFILES: [Profile; 2] = [
    Profile {
        name: "mixed",
        update_rate: 0.5,
        alphabet: 6,
        seed: 0xBA5E,
    },
    Profile {
        name: "linear",
        update_rate: 0.2,
        alphabet: 8,
        seed: 0x11EA6,
    },
];

fn batch(len: usize, profile: &Profile) -> Vec<Op> {
    let mut rng = SplitMix64::seed_from_u64(profile.seed + len as u64);
    let p = random_program(
        &mut rng,
        &ProgramParams {
            len,
            update_rate: profile.update_rate,
            delete_rate: 0.4,
            pattern: PatternParams {
                nodes: 4,
                alphabet: profile.alphabet,
                branch_rate: 0.0,
                ..PatternParams::default()
            },
        },
    );
    ops_of_program(&p)
}

/// Deterministic scheduler runs with the `cxu-obs` registry snapshotted
/// around each batch, so the report carries the route mix (pre-filter
/// skips, compile cache hits/misses) and latency columns next to the
/// raw metrics blob.
fn bench_sched() {
    let mut profiles = String::new();
    for (pi, profile) in PROFILES.iter().enumerate() {
        let mut runs = String::new();
        for (i, &n) in [50usize, 100, 200, 400].iter().enumerate() {
            let ops = batch(n, profile);
            let before = cxu::obs::registry().snapshot();
            let t0 = Instant::now();
            let out = Scheduler::new(SchedConfig {
                jobs: 1,
                np_max_trees: 2_000,
                ..SchedConfig::default()
            })
            .run(&ops);
            let wall_us = t0.elapsed().as_micros();
            let delta = cxu::obs::registry().snapshot().delta(&before);
            let st = out.stats;
            let pair = delta.histogram("sched.pair_ns");
            let (pair_count, pair_sum, pair_mean) = pair
                .map(|h| (h.count, h.sum, h.mean()))
                .unwrap_or((0, 0, 0));
            if i > 0 {
                runs.push_str(",\n");
            }
            runs.push_str(&format!(
                "      {{\"ops\": {}, \"wall_us\": {wall_us}, \
                 \"pairs_total\": {}, \"trivial\": {}, \"pairs_analyzed\": {}, \
                 \"cache_hits\": {}, \"prefilter_skips\": {}, \
                 \"compile_hits\": {}, \"compile_misses\": {}, \
                 \"conflict_edges\": {}, \"rounds\": {}, \
                 \"pair_ns_mean\": {pair_mean}, \"pair_ns_sum\": {pair_sum}, \
                 \"pair_ns_count\": {pair_count},\n       \
                 \"metrics\": {}}}",
                st.ops,
                st.pairs_total,
                st.trivial,
                st.pairs_analyzed,
                st.cache_hits,
                st.prefilter_skips,
                delta.counter("automata.compile.hit"),
                delta.counter("automata.compile.miss"),
                st.conflict_edges,
                st.rounds,
                delta.to_json()
            ));
        }
        if pi > 0 {
            profiles.push_str(",\n");
        }
        profiles.push_str(&format!(
            "    {{\"profile\": \"{}\", \"update_rate\": {}, \"alphabet\": {}, \
             \"seed\": {},\n     \
             \"runs\": [\n{runs}\n    ]}}",
            profile.name, profile.update_rate, profile.alphabet, profile.seed
        ));
    }
    println!(
        "{{\n  \"bench\": \"sched\",\n  \"workload\": {{\"delete_rate\": 0.4, \
         \"pattern_nodes\": 4, \"branch_rate\": 0.0, \
         \"np_max_trees\": 2000, \"jobs\": 1}},\n  \
         \"profiles\": [\n{profiles}\n  ]\n}}"
    );
}

/// Percentile over a sorted sample set (order statistic, 1-indexed).
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Grows a seeded random tree until its XML serialization reaches
/// `target_bytes` (within one resize step).
fn doc_of_size(rng: &mut SplitMix64, target_bytes: usize) -> (cxu::prelude::Tree, String) {
    use cxu::gen::trees::{random_tree, TreeParams};
    use cxu::tree::xml;
    let mut nodes = target_bytes / 16;
    for _ in 0..4 {
        let t = random_tree(
            rng,
            &TreeParams {
                nodes,
                alphabet: 6,
                ..TreeParams::default()
            },
        );
        let src = xml::to_xml(&t);
        let ratio = src.len() as f64 / target_bytes as f64;
        if (0.8..=1.25).contains(&ratio) {
            return (t, src);
        }
        nodes = ((nodes as f64 / ratio) as usize).max(16);
    }
    let t = random_tree(
        rng,
        &TreeParams {
            nodes,
            alphabet: 6,
            ..TreeParams::default()
        },
    );
    let src = xml::to_xml(&t);
    (t, src)
}

/// Document-grounded conflict checking: streaming ingestion throughput,
/// structural-index build time, and grounded-check latency against the
/// tree-walk witness baseline (Lemma 1 by replay), on ~1MB and ~8MB
/// synthetic documents. The grounded and tree-walk answers are compared
/// on every sample — a disagreement aborts the bench.
fn bench_index() {
    use cxu::gen::program::Stmt;
    use cxu::index::DocIndex;
    use cxu::ops::{witness, Read, Semantics, Update};
    use cxu::tree::xml;

    let seed = 0x1DE5_u64;
    let mut rng = SplitMix64::seed_from_u64(seed);

    // A pattern pool over the tree generator's label alphabet, mixing
    // linear (chain-path) and branching (table-path) reads.
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = 0.2;
    let program = random_program(
        &mut rng,
        &ProgramParams {
            len: 48,
            update_rate: 0.5,
            delete_rate: 0.4,
            pattern,
        },
    );
    let mut reads: Vec<Read> = Vec::new();
    let mut updates: Vec<Update> = Vec::new();
    for s in &program.stmts {
        match s {
            Stmt::Read(r) => reads.push(r.clone()),
            Stmt::Update(u) => updates.push(u.clone()),
        }
    }
    assert!(
        !reads.is_empty() && !updates.is_empty(),
        "seeded pool must contain both reads and updates"
    );
    let pairs: Vec<(usize, usize)> = (0..24)
        .map(|k| (k % reads.len(), k % updates.len()))
        .collect();
    let sem = Semantics::Node;

    let mut docs_json = String::new();
    // (target MB, grounded reps/pair, walk reps/pair, walk pair cap)
    for (di, &(mb, greps, wreps, wpairs)) in [(1usize, 8u32, 2u32, 24usize), (8, 4, 1, 8)]
        .iter()
        .enumerate()
    {
        let (tree, src) = doc_of_size(&mut rng, mb * 1024 * 1024);
        let bytes = src.len();

        // Streaming parse (tree only) and streaming ingest (tree-free
        // index build straight off the event reader).
        let parse_reps = if mb <= 1 { 3 } else { 2 };
        let t0 = Instant::now();
        for _ in 0..parse_reps {
            std::hint::black_box(xml::parse_stream(&src).expect("bench doc parses"));
        }
        let parse_s = t0.elapsed().as_secs_f64() / parse_reps as f64;
        let t0 = Instant::now();
        for _ in 0..parse_reps {
            std::hint::black_box(DocIndex::from_xml(&src).expect("bench doc indexes"));
        }
        let ingest_s = t0.elapsed().as_secs_f64() / parse_reps as f64;
        let mbf = bytes as f64 / (1024.0 * 1024.0);

        let t0 = Instant::now();
        let idx = DocIndex::from_tree(&tree);
        let build_us = t0.elapsed().as_micros();

        // Grounded checks: every sample individually timed, and every
        // verdict cross-checked against the witness walk.
        let mut grounded: Vec<u64> = Vec::new();
        let mut walk: Vec<u64> = Vec::new();
        for (k, &(ri, ui)) in pairs.iter().enumerate() {
            let mut g_verdict = false;
            for _ in 0..greps {
                let t0 = Instant::now();
                g_verdict = cxu::index::detect_grounded(&reads[ri], &updates[ui], &tree, &idx, sem);
                grounded.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            if k < wpairs {
                let mut w_verdict = false;
                for _ in 0..wreps {
                    let t0 = Instant::now();
                    w_verdict =
                        witness::witnesses_update_conflict(&reads[ri], &updates[ui], &tree, sem);
                    walk.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                }
                assert_eq!(
                    g_verdict, w_verdict,
                    "grounded check disagrees with the witness walk on pair {k}"
                );
            }
        }
        grounded.sort_unstable();
        walk.sort_unstable();
        let mean = |v: &[u64]| {
            if v.is_empty() {
                0
            } else {
                v.iter().sum::<u64>() / v.len() as u64
            }
        };

        if di > 0 {
            docs_json.push_str(",\n");
        }
        docs_json.push_str(&format!(
            "    {{\"target_mb\": {mb}, \"xml_bytes\": {bytes}, \"nodes\": {}, \
             \"postings\": {},\n     \
             \"parse_stream_mb_per_s\": {:.1}, \"ingest_index_mb_per_s\": {:.1}, \
             \"index_build_us\": {build_us}, \"index_bytes\": {},\n     \
             \"grounded_checks\": {}, \"treewalk_checks\": {},\n     \
             \"grounded_ns\": {{\"p50\": {}, \"p99\": {}, \"mean\": {}}},\n     \
             \"treewalk_ns\": {{\"p50\": {}, \"p99\": {}, \"mean\": {}}},\n     \
             \"speedup_p50\": {:.1}}}",
            idx.len(),
            idx.postings_len(),
            mbf / parse_s,
            mbf / ingest_s,
            idx.approx_bytes(),
            grounded.len(),
            walk.len(),
            pct(&grounded, 0.50),
            pct(&grounded, 0.99),
            mean(&grounded),
            pct(&walk, 0.50),
            pct(&walk, 0.99),
            mean(&walk),
            pct(&walk, 0.50) as f64 / pct(&grounded, 0.50).max(1) as f64,
        ));
    }
    println!(
        "{{\n  \"bench\": \"index\",\n  \"seed\": {seed},\n  \
         \"workload\": {{\"pairs\": {}, \"reads\": {}, \"updates\": {}, \
         \"pattern_nodes\": 4, \"alphabet\": 6, \"branch_rate\": 0.2, \
         \"semantics\": \"node\"}},\n  \
         \"docs\": [\n{docs_json}\n  ]\n}}",
        pairs.len(),
        reads.len(),
        updates.len()
    );
}
