//! `cxu` — command-line conflict checker for XML update operations.
//!
//! ```text
//! cxu check   --read <xpath> (--insert <xpath> --subtree <term> | --delete <xpath>)
//!             [--semantics node|tree|value]
//! cxu witness --read <xpath> (--insert … --subtree … | --delete …) --doc <term|file>
//!             [--semantics node|tree|value] [--minimize]
//! cxu eval    --pattern <xpath> --doc <term|file>
//! cxu contain --sub <xpath> --sup <xpath>
//! ```
//!
//! Documents are given inline in the `a(b c(d))` term syntax, or as a
//! path to a `.xml` / `.tree` file.

use cxu::core::{brute, witness_min};
use cxu::pattern::{containment, eval, xpath, Pattern};
use cxu::prelude::*;
use cxu::tree::{text, xml};
use cxu::{detect, witness};
use std::process::ExitCode;

const USAGE: &str = "\
cxu — conflict detection for XML updates (Raghavachari–Shmueli, EDBT'06)

USAGE:
  cxu check   --read <xpath> --insert <xpath> --subtree <term> [--semantics S]
  cxu check   --read <xpath> --delete <xpath>                  [--semantics S]
  cxu check   … --doc <D> [--index]   (grounded: conflict on THIS document)
  cxu detect  … (alias of check)
  cxu witness --read <xpath> --insert <xpath> --subtree <term> --doc <D> [--minimize]
  cxu witness --read <xpath> --delete <xpath>                  --doc <D> [--minimize]
  cxu eval    --pattern <xpath> --doc <D>
  cxu contain --sub <xpath> --sup <xpath>
  cxu analyze --program <file|source>
  cxu schedule (--program <file|source> | --gen-seed N [--gen-len L] [--gen-branch R])
               [--jobs N] [--semantics S] [--deadline-ms MS]
               [--format text|json|dot] [--metrics text|json]
  cxu dot     (--pattern <xpath> | --doc <D>)
  cxu serve   [--addr A] [--shards N] [--queue-depth N] [--pipeline-depth N]
              [--deadline-ms MS] [--data-dir DIR] [--fsync always|interval|never]
              [--fsync-interval-ms MS] [--snapshot-every N]
              [--read-timeout-ms MS] [--max-line-bytes N]
  cxu loadgen --addr A [--connections N] [--duration-ms MS] [--requests N]
              [--seed N] [--profile linear|mixed|store|grounded|txn]
              [--semantics S] [--deadline-ms MS] [--delay-ms MS] [--docs N]
              [--retries N] [--backoff-ms MS] [--pipeline W]
              [--rate RPS] [--sweep R1,R2,…]
              [--validate] [--out FILE]
  cxu txn     --file <file|-> (--addr A | [--data-dir DIR]) [--semantics S]
  cxu crashtest --data-dir DIR [--cycles N] [--editors N] [--txn-editors N]
              [--docs N] [--seed N]
              [--min-uptime-ms MS] [--max-uptime-ms MS] [--out FILE]
              [--server-bin PATH]

  S = node | tree | value        (default: node; schedule/serve default to value)
  D = inline term like 'a(b c)', or a path to a .xml / .tree file
  --program -  reads the program from stdin (also works for --doc)
  --deadline-ms MS  per-pair time slice (must be > 0): NP-side analyses
                    that outlive it degrade to conservative conflicts
                    (shown as \"conservative-deadline\" edges)
  --metrics M       append the run's metrics delta (counters + latency
                    histograms) as text, or embed it as a \"metrics\"
                    object when --format json
  --trace PATH      write JSONL span/event tracing to PATH (any command)
  --gen-seed N      generate the batch from a seeded PRNG instead of
                    --program (deterministic; used by the CI smoke job)
  --profile store   loadgen races concurrent editors over shared
                    documents via doc_put (stale bases auto-merge when
                    the detectors prove commutation); --docs sets how
                    many documents the editors share (default 4)
  --profile grounded  loadgen seeds documents via doc_put and then
                    streams doc_check requests (document-grounded
                    conflict checks against the server's cached
                    structural index); --validate replays every
                    verdict through the in-process tree walk
  --profile txn     loadgen races atomic multi-op transactions (the
                    one-shot txn route) over shared documents, guarded
                    at each editor's last-seen winners; reports commit /
                    conflict / retry rates, and --validate probes every
                    acked transaction's revision set for all-or-nothing
                    visibility
  cxu txn           applies one transaction program — a JSON object with
                    \"guards\" ([{doc, rev}]) and \"ops\" ([{doc, op}]) —
                    read from --file (or stdin via -). With --addr it is
                    sent to a live server; otherwise it commits against
                    an in-process store (--data-dir for a durable one)
  --txn-editors N   crashtest also races N transaction editors; acked
                    transactions are checked for all-or-nothing survival
                    across every kill (txn_partial must stay 0)
  --index           check --doc answers through the structural index
                    (preorder spans + label postings) instead of the
                    recursive tree walk; same verdict, microseconds
  --data-dir DIR    serve persists the store in DIR (checksummed WAL +
                    snapshots) and recovers it on startup; doc_put acks
                    only after the record is durable per --fsync
                    (always = fsync per record, interval = periodic,
                    never = OS-buffered)
  --retries N       loadgen resends overloaded/transport-failed requests
                    up to N times with jittered exponential backoff
                    starting at --backoff-ms (safe because doc_put
                    replay is idempotent)
  --shards N        serve runs N shards, each owning a slice of the memo
                    cache and one worker; requests route to shards by a
                    deterministic hash of their operations' shapes
                    (--workers is accepted as an alias)
  --pipeline-depth N  serve reads at most N pipelined requests per
                    connection before backpressuring the socket
  --pipeline W      loadgen keeps W requests in flight per connection
                    (one batched write per window; closed loop)
  --rate RPS        loadgen open-loop mode: send on a fixed arrival
                    schedule at RPS req/s total and report latency both
                    raw and coordinated-omission-corrected (from each
                    request's intended arrival time)
  --sweep R1,R2,…   after the main run, sweep open-loop rate points and
                    attach a `sweep` array to the JSON report (the
                    latency-under-load / saturation curve)
  crashtest         SIGKILLs a real `cxu serve --data-dir` child at
                    seeded random points under editor load, restarts it,
                    and fails on any acked-but-lost write, phantom
                    revision, or changes-feed inconsistency

EXAMPLES:
  cxu check --read 'x//C' --insert 'x/B' --subtree 'C'
  cxu check --read 'x//C' --delete 'x/A' --doc inventory.xml --index
  cxu detect --read 'x//C' --insert 'x/B' --subtree 'C' --trace trace.jsonl
  cxu witness --read 'x//C' --insert 'x/B' --subtree 'C' --doc 'x(B)'
  cxu eval --pattern 'inventory/book[.//quantity]' --doc inventory.xml
  cxu contain --sub 'a/b' --sup 'a//b'
  cxu schedule --program 'y = read $x//A; insert $x/B, C; z = read $x//C'
  cxu schedule --program batch.cxu --deadline-ms 50 --format json
  cxu schedule --gen-seed 42 --gen-len 60 --metrics json
  echo 'y = read $x//A; insert $x/B, C' | cxu schedule --program -
  cxu serve --addr 127.0.0.1:7878 --shards 4 --queue-depth 64 --deadline-ms 100
  cxu loadgen --addr 127.0.0.1:7878 --connections 8 --duration-ms 1500 \\
              --validate --out BENCH_SERVE.json
  cxu loadgen --addr 127.0.0.1:7878 --connections 2 --pipeline 64 \\
              --sweep 20000,50000,100000,200000 --out BENCH_SERVE.json
  cxu loadgen --addr 127.0.0.1:7878 --profile store --docs 4 \\
              --validate --out BENCH_STORE.json
  cxu serve --addr 127.0.0.1:7878 --data-dir ./data --fsync always
  cxu loadgen --addr 127.0.0.1:7878 --profile txn --docs 3 \\
              --validate --out BENCH_TXN.json
  echo '{\"guards\": [{\"doc\": \"d\", \"rev\": \"1-ab\"}], \
\"ops\": [{\"doc\": \"d\", \"op\": {\"kind\": \"insert\", \"pattern\": \"d/a\", \"subtree\": \"x\"}}]}' \\
              | cxu txn --file - --addr 127.0.0.1:7878
  cxu crashtest --data-dir ./crashdata --cycles 100 --seed 42 --out CRASH.json
";

/// Flags that never take a value. Every other flag consumes the next
/// argument verbatim — even one starting with `--`, so values like a
/// label literally named `--x` parse correctly.
const BOOL_FLAGS: &[&str] = &["minimize", "validate", "index"];

struct Args {
    flags: Vec<(String, String)>,
    bools: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut bools = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument: {a}"));
            };
            if let Some((n, v)) = name.split_once('=') {
                flags.push((n.to_owned(), v.to_owned()));
                i += 1;
            } else if BOOL_FLAGS.contains(&name) {
                bools.push(name.to_owned());
                i += 1;
            } else if i + 1 < argv.len() {
                flags.push((name.to_owned(), argv[i + 1].clone()));
                i += 2;
            } else {
                return Err(format!("flag --{name} requires a value"));
            }
        }
        Ok(Args { flags, bools })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }
}

fn parse_pattern(src: &str) -> Result<Pattern, String> {
    xpath::parse(src).map_err(|e| format!("bad pattern '{src}': {e}"))
}

/// Reads all of stdin; `-` in a file-accepting position means "here".
fn read_stdin() -> Result<String, String> {
    use std::io::Read as _;
    let mut s = String::new();
    std::io::stdin()
        .read_to_string(&mut s)
        .map_err(|e| format!("cannot read stdin: {e}"))?;
    Ok(s)
}

fn parse_doc(src: &str) -> Result<Tree, String> {
    if src == "-" {
        let content = read_stdin()?;
        return if content.trim_start().starts_with('<') {
            xml::parse(&content).map_err(|e| format!("bad XML on stdin: {e}"))
        } else {
            text::parse(content.trim()).map_err(|e| format!("bad tree on stdin: {e}"))
        };
    }
    if std::path::Path::new(src).exists() {
        let content =
            std::fs::read_to_string(src).map_err(|e| format!("cannot read {src}: {e}"))?;
        if src.ends_with(".xml") || content.trim_start().starts_with('<') {
            xml::parse(&content).map_err(|e| format!("bad XML in {src}: {e}"))
        } else {
            text::parse(content.trim()).map_err(|e| format!("bad tree in {src}: {e}"))
        }
    } else if src.trim_start().starts_with('<') {
        xml::parse(src).map_err(|e| format!("bad XML: {e}"))
    } else {
        text::parse(src).map_err(|e| format!("bad tree term '{src}': {e}"))
    }
}

fn parse_semantics(args: &Args) -> Result<Semantics, String> {
    match args.get("semantics").unwrap_or("node") {
        "node" => Ok(Semantics::Node),
        "tree" => Ok(Semantics::Tree),
        "value" => Ok(Semantics::Value),
        other => Err(format!("unknown semantics '{other}' (node|tree|value)")),
    }
}

fn parse_update(args: &Args) -> Result<Update, String> {
    if let Some(ins) = args.get("insert") {
        let sub = args.require("subtree")?;
        Ok(Update::Insert(Insert::new(
            parse_pattern(ins)?,
            parse_doc(sub)?,
        )))
    } else if let Some(del) = args.get("delete") {
        Delete::new(parse_pattern(del)?)
            .map(Update::Delete)
            .map_err(|e| format!("bad delete pattern: {e}"))
    } else {
        Err("need --insert <xpath> --subtree <term>, or --delete <xpath>".into())
    }
}

fn cmd_check(args: &Args) -> Result<String, String> {
    let read = Read::new(parse_pattern(args.require("read")?)?);
    let update = parse_update(args)?;
    let sem = parse_semantics(args)?;
    // Document-grounded mode: "does the conflict manifest on THIS
    // document" (Lemma 1), rather than "could any document witness it".
    if let Some(doc_src) = args.get("doc") {
        let doc = parse_doc(doc_src)?;
        let (conflict, engine) = if args.has("index") {
            let idx = cxu::index::DocIndex::from_tree(&doc);
            (
                cxu::index::detect_grounded(&read, &update, &doc, &idx, sem),
                "structural index",
            )
        } else {
            (
                witness::witnesses_update_conflict(&read, &update, &doc, sem),
                "tree walk",
            )
        };
        return Ok(format!(
            "{} on this {}-node document ({:?} semantics, grounded check, {engine})",
            if conflict { "CONFLICT" } else { "independent" },
            doc.live_count(),
            sem
        ));
    }
    if read.pattern().is_linear() {
        let conflict = detect::read_update_conflict(&read, &update, sem)
            .map_err(|e| format!("detector rejected the pair: {e}"))?;
        let mut out = format!(
            "{} ({:?} semantics, PTIME detector, Theorems 1-2)",
            if conflict { "CONFLICT" } else { "independent" },
            sem
        );
        if conflict {
            if let Some(ev) = cxu::core::construct::explain(&read, &update, sem) {
                match (ev.edge, ev.axis) {
                    (Some(edge), Some(axis)) => out.push_str(&format!(
                        "\n  fired at read edge {edge} ({axis:?} axis); witness: {}",
                        text::to_text(&ev.witness)
                    )),
                    _ => out.push_str(&format!(
                        "\n  update lands inside a selected subtree; witness: {}",
                        text::to_text(&ev.witness)
                    )),
                }
            }
        }
        Ok(out)
    } else {
        // NP path: bounded exhaustive search.
        let out = brute::find_witness(&read, &update, sem, brute::Budget::default());
        Ok(match out {
            brute::SearchOutcome::Conflict(w) => format!(
                "CONFLICT — witness: {} ({:?} semantics, exhaustive search)",
                text::to_text(&w),
                sem
            ),
            brute::SearchOutcome::NoConflictWithin(n) => format!(
                "no conflict witnessed by trees of <= {n} nodes \
                 (branching read: problem is NP-complete, §5)"
            ),
            brute::SearchOutcome::BudgetExceeded(n) => {
                format!("undecided: {n} candidate trees exceed the search budget")
            }
            brute::SearchOutcome::DeadlineExceeded => {
                "undecided: the search deadline expired".into()
            }
        })
    }
}

fn cmd_witness(args: &Args) -> Result<String, String> {
    let read = Read::new(parse_pattern(args.require("read")?)?);
    let update = parse_update(args)?;
    let sem = parse_semantics(args)?;
    let doc = parse_doc(args.require("doc")?)?;
    let is_witness = witness::witnesses_update_conflict(&read, &update, &doc, sem);
    let mut out = format!(
        "document {} a {:?}-semantics conflict",
        if is_witness {
            "WITNESSES"
        } else {
            "does not witness"
        },
        sem
    );
    if is_witness && args.has("minimize") {
        if let Some(small) = witness_min::minimize(&read, &update, &doc, sem) {
            out.push_str(&format!(
                "\nminimized witness ({} → {} nodes): {}",
                doc.live_count(),
                small.live_count(),
                text::to_text(&small)
            ));
        }
    }
    Ok(out)
}

fn cmd_eval(args: &Args) -> Result<String, String> {
    let p = parse_pattern(args.require("pattern")?)?;
    let doc = parse_doc(args.require("doc")?)?;
    let hits = eval::eval(&p, &doc);
    let mut out = format!("{} node(s) selected", hits.len());
    for n in hits {
        out.push_str(&format!("\n  {}", text::subtree_to_text(&doc, n)));
    }
    Ok(out)
}

fn cmd_contain(args: &Args) -> Result<String, String> {
    let p = parse_pattern(args.require("sub")?)?;
    let q = parse_pattern(args.require("sup")?)?;
    match containment::contains_within(&p, &q, 1 << 22) {
        Some(true) => Ok(format!("{p}  ⊆  {q}")),
        Some(false) => {
            let cx = containment::find_counterexample(&p, &q, 5)
                .map(|t| format!(" (counterexample: {})", text::to_text(&t)))
                .unwrap_or_default();
            Ok(format!("{p}  ⊄  {q}{cx}"))
        }
        None => Err("instance too large for the exact canonical-model procedure".into()),
    }
}

fn cmd_dot(args: &Args) -> Result<String, String> {
    if let Some(src) = args.get("pattern") {
        let p = parse_pattern(src)?;
        Ok(cxu::pattern::dot::pattern_to_dot(&p, "pattern"))
    } else if let Some(src) = args.get("doc") {
        let t = parse_doc(src)?;
        Ok(cxu::pattern::dot::tree_to_dot(&t, "doc"))
    } else {
        Err("dot needs --pattern <xpath> or --doc <D>".into())
    }
}

fn load_program(args: &Args) -> Result<cxu::gen::program::Program, String> {
    if let Some(seed) = args.get("gen-seed") {
        if args.get("program").is_some() {
            return Err("--program and --gen-seed are mutually exclusive".into());
        }
        let seed = seed
            .parse::<u64>()
            .map_err(|_| format!("bad --gen-seed '{seed}' (want a u64)"))?;
        let len = match args.get("gen-len") {
            Some(l) => l
                .parse::<usize>()
                .ok()
                .filter(|&l| l >= 1)
                .ok_or_else(|| format!("bad --gen-len '{l}' (want a positive integer)"))?,
            None => 40,
        };
        let branch_rate = match args.get("gen-branch") {
            Some(r) => r
                .parse::<f64>()
                .ok()
                .filter(|r| (0.0..=1.0).contains(r))
                .ok_or_else(|| format!("bad --gen-branch '{r}' (want a rate in [0, 1])"))?,
            None => 0.25,
        };
        let mut rng = cxu::gen::rng::SplitMix64::seed_from_u64(seed);
        let params = cxu::gen::program::ProgramParams {
            len,
            pattern: cxu::gen::patterns::PatternParams {
                nodes: 4,
                alphabet: 6,
                branch_rate,
                ..cxu::gen::patterns::PatternParams::default()
            },
            ..cxu::gen::program::ProgramParams::default()
        };
        return Ok(cxu::gen::program::random_program(&mut rng, &params));
    }
    let spec = args.require("program")?;
    let src = if spec == "-" {
        read_stdin()?
    } else if std::path::Path::new(spec).exists() {
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?
    } else {
        spec.to_owned()
    };
    cxu::gen::parse::parse_program(&src).map_err(|e| e.to_string())
}

fn cmd_analyze(args: &Args) -> Result<String, String> {
    use cxu::gen::analysis::{conflict_matrix, cse_pairs, hoistable};
    use cxu::gen::parse::to_source;
    use cxu::gen::program::Stmt;

    let program = load_program(args)?;

    let mut out = String::from("program:\n");
    for (i, line) in to_source(&program).lines().enumerate() {
        out.push_str(&format!("  {i}: {line}\n"));
    }

    out.push_str("\nconflict matrix (update → later read):\n");
    for v in conflict_matrix(&program, Semantics::Node) {
        let Stmt::Read(r) = &program.stmts[v.read] else {
            unreachable!()
        };
        let u = match &program.stmts[v.update] {
            Stmt::Update(u) => u,
            _ => unreachable!(),
        };
        out.push_str(&format!(
            "  stmt {} ({}) vs read {} ({}): {}\n",
            v.update,
            u.pattern(),
            v.read,
            r.pattern(),
            if v.independent {
                "independent"
            } else {
                "CONFLICT"
            }
        ));
    }

    let hoists = hoistable(&program);
    out.push_str(&format!("\nhoistable reads (tree semantics): {hoists:?}\n"));
    let cse = cse_pairs(&program);
    out.push_str(&format!("CSE-reusable read pairs: {cse:?}\n"));
    Ok(out)
}

fn cmd_schedule(args: &Args) -> Result<String, String> {
    use cxu::sched::{ops_of_program, Detector, SchedConfig, Scheduler};

    let program = load_program(args)?;
    let ops = ops_of_program(&program);

    let mut cfg = SchedConfig {
        semantics: Semantics::Value,
        ..SchedConfig::default()
    };
    if args.get("semantics").is_some() {
        cfg.semantics = parse_semantics(args)?;
    }
    if let Some(j) = args.get("jobs") {
        cfg.jobs = j
            .parse::<usize>()
            .ok()
            .filter(|&j| j >= 1)
            .ok_or_else(|| format!("bad --jobs '{j}' (want a positive integer)"))?;
    }
    if let Some(ms) = args.get("deadline-ms") {
        let ms = ms
            .parse::<u64>()
            .ok()
            .filter(|&ms| ms >= 1)
            .ok_or_else(|| {
                format!(
                    "bad --deadline-ms '{ms}': want a positive number of milliseconds \
                     (a zero deadline would instantly degrade every NP-side pair \
                     to a conservative conflict)"
                )
            })?;
        cfg.pair_deadline = Some(std::time::Duration::from_millis(ms));
    }
    let metrics_mode = match args.get("metrics") {
        None => None,
        Some(m @ ("text" | "json")) => Some(m),
        Some(other) => return Err(format!("unknown --metrics '{other}' (text|json)")),
    };
    let before = cxu::obs::registry().snapshot();
    let out = Scheduler::new(cfg).run(&ops);
    let delta = cxu::obs::registry().snapshot().delta(&before);

    let detector_name = |d: Detector| d.name();

    let result = match args.get("format").unwrap_or("text") {
        "text" => {
            let mut s = String::from("ops:\n");
            for (i, op) in ops.iter().enumerate() {
                s.push_str(&format!("  {i}: {op}\n"));
            }
            s.push_str("\nconflict edges:\n");
            let conflicts: Vec<_> = out
                .graph
                .edges()
                .iter()
                .filter(|e| e.verdict.conflict)
                .collect();
            if conflicts.is_empty() {
                s.push_str("  (none — the whole batch is one round)\n");
            }
            for e in conflicts {
                s.push_str(&format!(
                    "  {} -- {}  [{}{}]\n",
                    e.a,
                    e.b,
                    detector_name(e.verdict.detector),
                    if e.cached { ", cached" } else { "" }
                ));
            }
            s.push_str("\nrounds:\n");
            for (k, round) in out.schedule.rounds.iter().enumerate() {
                s.push_str(&format!("  {k}: {round:?}\n"));
            }
            s.push_str(&format!("\n{}", out.stats));
            Ok(s)
        }
        "json" => {
            let mut s = String::from("{\n  \"rounds\": [");
            for (k, round) in out.schedule.rounds.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "[{}]",
                    round
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            s.push_str("],\n  \"conflicts\": [");
            let mut first = true;
            for e in out.graph.edges().iter().filter(|e| e.verdict.conflict) {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    "\n    {{\"a\": {}, \"b\": {}, \"detector\": \"{}\", \"cached\": {}}}",
                    e.a,
                    e.b,
                    detector_name(e.verdict.detector),
                    e.cached
                ));
            }
            if !first {
                s.push_str("\n  ");
            }
            let st = &out.stats;
            s.push_str(&format!(
                "],\n  \"stats\": {{\"ops\": {}, \"pairs_total\": {}, \"trivial\": {}, \
                 \"pairs_analyzed\": {}, \"cache_hits\": {}, \"prefilter_skips\": {}, \
                 \"ptime_linear_read\": {}, \
                 \"ptime_linear_updates\": {}, \"witness_search\": {}, \"conservative\": {}, \
                 \"degraded_budget\": {}, \"degraded_deadline\": {}, \"degraded_panic\": {}, \
                 \"conflict_edges\": {}, \"rounds\": {}, \"jobs\": {}}}",
                st.ops,
                st.pairs_total,
                st.trivial,
                st.pairs_analyzed,
                st.cache_hits,
                st.prefilter_skips,
                st.ptime_linear_read,
                st.ptime_linear_updates,
                st.witness_search,
                st.conservative,
                st.degraded_budget,
                st.degraded_deadline,
                st.degraded_panic,
                st.conflict_edges,
                st.rounds,
                st.jobs
            ));
            if metrics_mode == Some("json") {
                s.push_str(&format!(",\n  \"metrics\": {}", delta.to_json()));
            }
            s.push_str("\n}");
            Ok(s)
        }
        "dot" => Ok(out.graph.to_dot(&ops, "conflicts")),
        other => Err(format!("unknown format '{other}' (text|json|dot)")),
    };
    let mut result = result?;
    match metrics_mode {
        Some("text") => {
            result.push_str(&format!("\n\nmetrics (delta for this run):\n{delta}"));
        }
        Some("json") if args.get("format").unwrap_or("text") != "json" => {
            result.push_str(&format!("\n{}", delta.to_json()));
        }
        _ => {}
    }
    Ok(result)
}

/// Set by the C signal handler; polled by the watcher thread. A handler
/// may only do async-signal-safe work, and a relaxed store is exactly
/// that.
static SIGNAL_SEEN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn note_signal(_signum: i32) {
    SIGNAL_SEEN.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Routes SIGINT (2) and SIGTERM (15) into [`SIGNAL_SEEN`] via libc's
/// `signal`, declared directly so the binary stays dependency-free.
fn install_signal_hooks() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, note_signal);
        signal(15, note_signal);
    }
}

/// A thread that turns the first SIGINT/SIGTERM into a graceful
/// [`cxu::serve::ServerHandle::shutdown`]. `finish` reaps it once the
/// server has drained on its own (e.g. via the `shutdown` route).
struct SignalWatcher {
    done: std::sync::Arc<std::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl SignalWatcher {
    fn spawn(server: cxu::serve::ServerHandle) -> SignalWatcher {
        use std::sync::atomic::{AtomicBool, Ordering};
        install_signal_hooks();
        let done = std::sync::Arc::new(AtomicBool::new(false));
        let done_flag = std::sync::Arc::clone(&done);
        let thread = std::thread::spawn(move || loop {
            if SIGNAL_SEEN.load(Ordering::Relaxed) {
                server.shutdown();
                return;
            }
            if done_flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
        SignalWatcher { done, thread }
    }

    fn finish(self) {
        self.done.store(true, std::sync::atomic::Ordering::Release);
        let _ = self.thread.join();
    }
}

fn cmd_serve(args: &Args) -> Result<String, String> {
    use cxu::serve::{ServeConfig, Server};
    use cxu::store::FsyncPolicy;

    let mut cfg = ServeConfig::default();
    if let Some(dir) = args.get("data-dir") {
        cfg.data_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(f) = args.get("fsync") {
        cfg.fsync = FsyncPolicy::parse(f)
            .ok_or_else(|| format!("bad --fsync '{f}' (always|interval|never)"))?;
    }
    if let Some(ms) = args.get("fsync-interval-ms") {
        let ms = ms
            .parse::<u64>()
            .ok()
            .filter(|&ms| ms >= 1)
            .ok_or_else(|| {
                format!("bad --fsync-interval-ms '{ms}' (want a positive number of milliseconds)")
            })?;
        cfg.fsync = FsyncPolicy::Interval(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = args.get("snapshot-every") {
        cfg.snapshot_every = n
            .parse::<u64>()
            .map_err(|_| format!("bad --snapshot-every '{n}' (want a record count; 0 disables)"))?;
    }
    if let Some(ms) = args.get("read-timeout-ms") {
        let ms = ms
            .parse::<u64>()
            .map_err(|_| format!("bad --read-timeout-ms '{ms}' (want milliseconds; 0 disables)"))?;
        cfg.read_timeout = if ms == 0 {
            None
        } else {
            Some(std::time::Duration::from_millis(ms))
        };
    }
    if let Some(n) = args.get("max-line-bytes") {
        cfg.max_line_bytes = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 64)
            .ok_or_else(|| format!("bad --max-line-bytes '{n}' (want an integer >= 64)"))?;
    }
    // --shards is the real name; --workers survives as an alias (every
    // shard runs exactly one worker).
    if let Some(w) = args.get("shards").or_else(|| args.get("workers")) {
        cfg.workers = w
            .parse::<usize>()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("bad --shards '{w}' (want a positive integer)"))?;
    }
    if let Some(p) = args.get("pipeline-depth") {
        cfg.pipeline_depth = p
            .parse::<usize>()
            .ok()
            .filter(|&p| p >= 1)
            .ok_or_else(|| format!("bad --pipeline-depth '{p}' (want a positive integer)"))?;
    }
    if let Some(q) = args.get("queue-depth") {
        cfg.queue_depth = q
            .parse::<usize>()
            .ok()
            .filter(|&q| q >= 1)
            .ok_or_else(|| format!("bad --queue-depth '{q}' (want a positive integer)"))?;
    }
    if let Some(ms) = args.get("deadline-ms") {
        let ms = ms
            .parse::<u64>()
            .ok()
            .filter(|&ms| ms >= 1)
            .ok_or_else(|| {
                format!("bad --deadline-ms '{ms}' (want a positive number of milliseconds)")
            })?;
        cfg.default_deadline = Some(std::time::Duration::from_millis(ms));
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let server = Server::bind(cfg, addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;

    // The recovery report precedes the readiness line so harnesses can
    // parse both in one stdout pass.
    if let Some(report) = server.recovery_report() {
        println!("cxu-serve recovered {}", report.to_json());
    }
    // Announce readiness before blocking in the accept loop, so scripts
    // can `grep` the line (it carries the resolved port for `:0`).
    println!("cxu-serve listening on {local}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let watcher = SignalWatcher::spawn(server.handle());
    let summary = server.run().map_err(|e| format!("server error: {e}"))?;
    watcher.finish();
    Ok(format!(
        "drained after {} connection(s): accepted {} = completed {} \
         + rejected_overload {} + failed {}",
        summary.connections,
        summary.accepted,
        summary.completed,
        summary.rejected_overload,
        summary.failed
    ))
}

fn cmd_loadgen(args: &Args) -> Result<String, String> {
    use cxu::serve::{loadgen, LoadConfig, LoadProfile};

    let mut cfg = LoadConfig {
        addr: args.require("addr")?.to_owned(),
        validate: args.has("validate"),
        ..LoadConfig::default()
    };
    if args.get("semantics").is_some() {
        cfg.semantics = parse_semantics(args)?;
    } else {
        cfg.semantics = Semantics::Value;
    }
    if let Some(c) = args.get("connections") {
        cfg.connections = c
            .parse::<usize>()
            .ok()
            .filter(|&c| c >= 1)
            .ok_or_else(|| format!("bad --connections '{c}' (want a positive integer)"))?;
    }
    if let Some(ms) = args.get("duration-ms") {
        let ms = ms
            .parse::<u64>()
            .ok()
            .filter(|&ms| ms >= 1)
            .ok_or_else(|| {
                format!("bad --duration-ms '{ms}' (want a positive number of milliseconds)")
            })?;
        cfg.duration = std::time::Duration::from_millis(ms);
    }
    if let Some(r) = args.get("requests") {
        cfg.requests_per_conn = Some(
            r.parse::<u64>()
                .ok()
                .filter(|&r| r >= 1)
                .ok_or_else(|| format!("bad --requests '{r}' (want a positive integer)"))?,
        );
    }
    if let Some(s) = args.get("seed") {
        cfg.seed = s
            .parse::<u64>()
            .map_err(|_| format!("bad --seed '{s}' (want a u64)"))?;
    }
    if let Some(p) = args.get("profile") {
        cfg.profile = LoadProfile::from_name(p)?;
    }
    if let Some(ms) = args.get("deadline-ms") {
        cfg.deadline_ms = Some(
            ms.parse::<u64>()
                .ok()
                .filter(|&ms| ms >= 1)
                .ok_or_else(|| {
                    format!("bad --deadline-ms '{ms}' (want a positive number of milliseconds)")
                })?,
        );
    }
    if let Some(ms) = args.get("delay-ms") {
        cfg.delay_ms = ms
            .parse::<u64>()
            .map_err(|_| format!("bad --delay-ms '{ms}' (want milliseconds)"))?;
    }
    if let Some(n) = args.get("pool-len") {
        cfg.pool_len = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 2)
            .ok_or_else(|| format!("bad --pool-len '{n}' (want an integer >= 2)"))?;
    }
    if let Some(n) = args.get("docs") {
        cfg.docs = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --docs '{n}' (want a positive integer)"))?;
    }
    if let Some(n) = args.get("retries") {
        cfg.retries = n
            .parse::<u32>()
            .map_err(|_| format!("bad --retries '{n}' (want an attempt count; 0 disables)"))?;
    }
    if let Some(ms) = args.get("backoff-ms") {
        cfg.backoff_ms = ms
            .parse::<u64>()
            .ok()
            .filter(|&ms| ms >= 1)
            .ok_or_else(|| {
                format!("bad --backoff-ms '{ms}' (want a positive number of milliseconds)")
            })?;
    }
    if let Some(w) = args.get("pipeline") {
        cfg.pipeline = w
            .parse::<usize>()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("bad --pipeline '{w}' (want a positive integer)"))?;
    }
    if let Some(r) = args.get("rate") {
        cfg.rate = Some(
            r.parse::<f64>()
                .ok()
                .filter(|&r| r >= 1.0)
                .ok_or_else(|| format!("bad --rate '{r}' (want requests per second >= 1)"))?,
        );
    }
    let sweep: Vec<f64> = match args.get("sweep") {
        Some(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|&r| r >= 1.0)
                    .ok_or_else(|| {
                        format!("bad --sweep '{s}' (want comma-separated rates in req/s)")
                    })
            })
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };

    let report = loadgen::run(&cfg)?;
    let json = if sweep.is_empty() {
        report.to_json()
    } else {
        // Each sweep point is an independent open-loop run at a fixed
        // arrival rate; validation stays on the headline run.
        let mut points = Vec::with_capacity(sweep.len());
        for &rate in &sweep {
            let mut pcfg = cfg.clone();
            pcfg.rate = Some(rate);
            pcfg.validate = false;
            points.push(loadgen::run(&pcfg)?);
        }
        loadgen::sweep_to_json(&report, &points)
    };
    let out = if let Some(path) = args.get("out") {
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let mut summary = format!(
            "wrote {path}\nsent {} | completed {} ({:.0} req/s) | overloaded {} ({:.1}%) \
             | failed {} | retries {}\nlatency p50 {} us, p99 {} us, max {} us\
             \nvalidated {} distinct pair(s)",
            report.sent,
            report.completed,
            report.throughput_rps(),
            report.overloaded,
            100.0 * report.rejection_rate(),
            report.failed,
            report.retries,
            report.p50_us,
            report.p99_us,
            report.max_us,
            report.checked_pairs,
        );
        if report.open_loop_rate.is_some() {
            summary.push_str(&format!(
                "\ncorrected (from intended arrival): p50 {} us, p99 {} us, max {} us",
                report.corrected_p50_us, report.corrected_p99_us, report.corrected_max_us
            ));
        }
        if !sweep.is_empty() {
            summary.push_str(&format!("\nsweep: {} rate point(s) attached", sweep.len()));
        }
        if report.profile == "store" {
            let s = &report.store;
            summary.push_str(&format!(
                "\nstore: created {} | applied {} | merged {} | branched {} \
                 | rejected {} | noop {}",
                s.created, s.applied, s.merged, s.branched, s.rejected, s.noop
            ));
        }
        if report.profile == "txn" {
            let t = &report.txn;
            summary.push_str(&format!(
                "\ntxn: applied {} | replayed {} | conflicted {} | rejected {} \
                 | conflict retries {}",
                t.applied, t.replayed, t.conflicted, t.rejected, t.conflict_retries
            ));
        }
        summary
    } else {
        json
    };
    if cfg.validate && report.disagreements > 0 {
        return Err(format!(
            "{out}\nverdict disagreements: {} (server vs in-process oracle)",
            report.disagreements
        ));
    }
    Ok(out)
}

/// Renders a server `txn` response for humans; wire errors and losses
/// become CLI failures so scripts can branch on the exit code.
fn render_txn_answer(resp: &cxu::gen::json::Json) -> Result<String, String> {
    use cxu::gen::json::Json;
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("server refused the transaction: {resp}"));
    }
    match resp.get("result").and_then(Json::as_str) {
        Some("applied") => {
            let replayed = resp.get("replayed").and_then(Json::as_bool) == Some(true);
            let mut out = String::from(if replayed {
                "applied (idempotent replay of an earlier commit):"
            } else {
                "applied:"
            });
            for row in resp.get("revs").and_then(Json::as_arr).unwrap_or(&[]) {
                out.push_str(&format!(
                    "\n  {} @ {}",
                    row.get("doc").and_then(Json::as_str).unwrap_or("?"),
                    row.get("rev").and_then(Json::as_str).unwrap_or("?"),
                ));
            }
            if let Some(seq) = resp.get("seq").and_then(Json::as_u64) {
                out.push_str(&format!("\nseq {seq}"));
            }
            if let Some(n) = resp.get("checked_pairs").and_then(Json::as_u64) {
                out.push_str(&format!(", {n} detector pair(s) checked"));
            }
            Ok(out)
        }
        Some(other) => {
            let retryable = resp.get("retryable").and_then(Json::as_bool) == Some(true);
            let detail = resp
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("no detail");
            Err(format!(
                "transaction {other}{}: {detail}",
                if retryable {
                    " (retryable — refresh the guards and resubmit)"
                } else {
                    ""
                }
            ))
        }
        None => Err(format!("malformed server response: {resp}")),
    }
}

fn cmd_txn(args: &Args) -> Result<String, String> {
    use cxu::gen::json::Json;

    let spec = args.require("file")?;
    let src = if spec == "-" {
        read_stdin()?
    } else {
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?
    };
    let v = Json::parse(src.trim()).map_err(|e| format!("bad transaction JSON: {e}"))?;

    // Live server: wrap the program as a one-shot `txn` request and
    // send it over the socket — the same commit path the load
    // generator and the crash harness exercise.
    if let Some(addr) = args.get("addr") {
        let Json::Obj(mut members) = v else {
            return Err("transaction must be a JSON object with \"guards\" and \"ops\"".into());
        };
        members.retain(|(k, _)| k != "route" && k != "semantics");
        members.insert(0, ("route".to_owned(), Json::str("txn")));
        if args.get("semantics").is_some() {
            let sem = match parse_semantics(args)? {
                Semantics::Node => "node",
                Semantics::Tree => "tree",
                Semantics::Value => "value",
            };
            members.push(("semantics".to_owned(), Json::str(sem)));
        }
        let req = Json::Obj(members).to_string();
        use std::io::{BufRead as _, BufReader, Write as _};
        let stream =
            std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        writer
            .write_all(req.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        let resp = Json::parse(line.trim_end()).map_err(|e| format!("bad response line: {e}"))?;
        return render_txn_answer(&resp);
    }

    // In-process: apply the transaction directly to a store opened
    // from --data-dir (durable, WAL-committed as one frame) or to an
    // ephemeral empty store without it.
    use cxu::sched::{Deadline, SchedConfig, Scheduler};
    use cxu::store::{DurabilityConfig, Store, StoreConfig};

    let wire_txn =
        cxu::gen::wire::txn_from_json(&v).map_err(|e| format!("bad transaction: {e}"))?;
    if wire_txn.ops.is_empty() {
        return Err("transaction has no ops".into());
    }
    let txn = cxu::txn::Txn::from_wire(&wire_txn).map_err(|e| format!("bad transaction: {e}"))?;
    let store = match args.get("data-dir") {
        Some(dir) => Store::open(StoreConfig::default(), DurabilityConfig::new(dir))
            .map_err(|e| format!("cannot open store in {dir}: {e}"))?,
        None => Store::new(StoreConfig::default()),
    };
    let semantics = if args.get("semantics").is_some() {
        parse_semantics(args)?
    } else {
        Semantics::Value
    };
    let mut sched = Scheduler::new(SchedConfig {
        semantics,
        jobs: 1,
        ..SchedConfig::default()
    });
    let deadline = Deadline::never();
    let mut check = |a: &cxu::sched::Op, b: &cxu::sched::Op| sched.check_pair(a, b, &deadline);
    match txn.apply(&store, &mut check) {
        Ok(out) => {
            let mut s = String::from(if out.replayed {
                "applied (idempotent replay of an earlier commit):"
            } else {
                "applied:"
            });
            for (doc, rev) in &out.revs {
                s.push_str(&format!("\n  {doc} @ {rev}"));
            }
            s.push_str(&format!(
                "\nseq {}, {} detector pair(s) checked",
                out.seq, out.checked_pairs
            ));
            Ok(s)
        }
        Err(e) => Err(format!(
            "transaction {}: {e}",
            if e.retryable() {
                "conflicted (retryable — refresh the guards and resubmit)"
            } else {
                "rejected"
            }
        )),
    }
}

fn cmd_crashtest(args: &Args) -> Result<String, String> {
    use cxu::serve::{crash, CrashConfig};

    let server_bin = match args.get("server-bin") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?,
    };
    let data_dir = std::path::PathBuf::from(args.require("data-dir")?);
    let mut cfg = CrashConfig::new(server_bin, data_dir);
    if let Some(n) = args.get("cycles") {
        cfg.cycles = n
            .parse::<u32>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --cycles '{n}' (want a positive integer)"))?;
    }
    if let Some(n) = args.get("editors") {
        cfg.editors = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --editors '{n}' (want a positive integer)"))?;
    }
    if let Some(n) = args.get("txn-editors") {
        cfg.txn_editors = n
            .parse::<usize>()
            .map_err(|_| format!("bad --txn-editors '{n}' (want a thread count; 0 disables)"))?;
    }
    if let Some(n) = args.get("docs") {
        cfg.docs = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --docs '{n}' (want a positive integer)"))?;
    }
    if let Some(s) = args.get("seed") {
        cfg.seed = s
            .parse::<u64>()
            .map_err(|_| format!("bad --seed '{s}' (want a u64)"))?;
    }
    if let Some(ms) = args.get("min-uptime-ms") {
        cfg.min_uptime_ms = ms
            .parse::<u64>()
            .map_err(|_| format!("bad --min-uptime-ms '{ms}' (want milliseconds)"))?;
    }
    if let Some(ms) = args.get("max-uptime-ms") {
        cfg.max_uptime_ms = ms
            .parse::<u64>()
            .ok()
            .filter(|&ms| ms > cfg.min_uptime_ms)
            .ok_or_else(|| {
                format!("bad --max-uptime-ms '{ms}' (want milliseconds > --min-uptime-ms)")
            })?;
    }

    let report = crash::run(&cfg)?;
    let json = report.to_json();
    if let Some(path) = args.get("out") {
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let summary = format!(
        "{} cycle(s): acked {} (minted {}) | checked {} | lost {} | phantoms {} \
         | txns {} (partial {}) | torn recoveries {} | replayed {} record(s), final seq {}",
        report.cycles,
        report.acked,
        report.minted,
        report.checked,
        report.lost,
        report.phantoms,
        report.txn_acked,
        report.txn_partial,
        report.torn_recoveries,
        report.replayed_records,
        report.recovered_seq,
    );
    if report.ok() {
        Ok(format!(
            "{summary}\ndurability holds: every acked write survived, \
             every acked transaction survived whole"
        ))
    } else {
        Err(format!(
            "{summary}\nDURABILITY VIOLATIONS:\n  {}",
            report.violations.join("\n  ")
        ))
    }
}

fn run() -> Result<String, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(USAGE.into());
    };
    let args = Args::parse(rest)?;
    if let Some(path) = args.get("trace") {
        cxu::obs::trace::enable_file(std::path::Path::new(path))
            .map_err(|e| format!("cannot open trace file '{path}': {e}"))?;
    }
    let result = match cmd.as_str() {
        "check" | "detect" => cmd_check(&args),
        "witness" => cmd_witness(&args),
        "eval" => cmd_eval(&args),
        "contain" => cmd_contain(&args),
        "analyze" => cmd_analyze(&args),
        "schedule" => cmd_schedule(&args),
        "serve" => cmd_serve(&args),
        "loadgen" => cmd_loadgen(&args),
        "txn" => cmd_txn(&args),
        "crashtest" => cmd_crashtest(&args),
        "dot" => cmd_dot(&args),
        "help" | "--help" | "-h" => Ok(USAGE.into()),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    // Flush and close the JSONL sink before the process exits.
    cxu::obs::trace::disable();
    result
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
