//! # cxu-schema — DTDs and schema-aware conflict detection
//!
//! §6 of *Conflicting XML Updates* leaves the complexity of conflict
//! detection **in the presence of schema information** open, noting that
//! DTDs tend to push XPath decision problems up a complexity class
//! (containment under DTDs is coNP-complete). This crate implements the
//! extension as a working system:
//!
//! * [`Dtd`] — a DTD abstraction suited to the paper's *unordered* tree
//!   model: per-label child-occurrence constraints (`min..max` per child
//!   label, unknown labels forbidden, non-declared elements are leaves);
//! * [`Dtd::validate`] / [`Dtd::revalidate`] — full and *incremental*
//!   validation: after updates, only the journaled modification sites
//!   need rechecking (a nod to the authors' earlier EDBT'04 work on
//!   efficient revalidation, cited as \[14\]);
//! * [`enumerate_conforming`] — exhaustive enumeration of conforming
//!   trees up to a size bound;
//! * [`find_witness_conforming`] — schema-constrained conflict search:
//!   does a **conforming** witness exist? A pair that conflicts over
//!   `T_Σ` may be conflict-free over `L(DTD)` — the refinement §6 is
//!   after. Bounded search makes this a semi-decision, faithful to the
//!   open status of the problem.

use cxu_ops::witness::witnesses_update_conflict;
use cxu_ops::{Read, Semantics, Update};
use cxu_runtime::{failpoints, Deadline, DeadlineExceeded};
use cxu_tree::{NodeId, Symbol, Tree};
use std::collections::HashMap;
use std::fmt;

/// Occurrence bounds for one child label within a parent's content model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChildSpec {
    /// The child label.
    pub label: Symbol,
    /// Minimum occurrences.
    pub min: usize,
    /// Maximum occurrences (`None` = unbounded, i.e. `*` / `+`).
    pub max: Option<usize>,
}

impl ChildSpec {
    /// `label?` — zero or one.
    pub fn optional(label: impl Into<Symbol>) -> ChildSpec {
        ChildSpec {
            label: label.into(),
            min: 0,
            max: Some(1),
        }
    }

    /// `label` — exactly one.
    pub fn one(label: impl Into<Symbol>) -> ChildSpec {
        ChildSpec {
            label: label.into(),
            min: 1,
            max: Some(1),
        }
    }

    /// `label*` — any number.
    pub fn star(label: impl Into<Symbol>) -> ChildSpec {
        ChildSpec {
            label: label.into(),
            min: 0,
            max: None,
        }
    }

    /// `label+` — one or more.
    pub fn plus(label: impl Into<Symbol>) -> ChildSpec {
        ChildSpec {
            label: label.into(),
            min: 1,
            max: None,
        }
    }
}

/// A violation found by validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The root's label is not the DTD's document element.
    WrongRoot {
        /// The label found at the root.
        found: Symbol,
        /// The label the DTD requires.
        expected: Symbol,
    },
    /// A node's children break an occurrence bound.
    Occurrence {
        /// The offending parent node.
        node: NodeId,
        /// The child label whose count is out of bounds.
        child: Symbol,
        /// How many were found.
        found: usize,
    },
    /// A node has a child label its content model does not mention, or a
    /// non-declared element has children.
    UnexpectedChild {
        /// The offending parent node.
        node: NodeId,
        /// The unexpected child label.
        child: Symbol,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongRoot { found, expected } => {
                write!(f, "root is <{found}>, DTD requires <{expected}>")
            }
            Violation::Occurrence { node, child, found } => {
                write!(f, "{node:?}: {found} <{child}> children violate the bounds")
            }
            Violation::UnexpectedChild { node, child } => {
                write!(f, "{node:?}: unexpected <{child}> child")
            }
        }
    }
}

/// A DTD over the unordered tree model: a required document element and
/// per-label content models. Labels without a rule are leaves.
#[derive(Clone, Debug)]
pub struct Dtd {
    root: Symbol,
    rules: HashMap<Symbol, Vec<ChildSpec>>,
}

impl Dtd {
    /// A DTD whose document element is `root` (initially all labels are
    /// leaves).
    pub fn new(root: impl Into<Symbol>) -> Dtd {
        Dtd {
            root: root.into(),
            rules: HashMap::new(),
        }
    }

    /// Declares (or replaces) the content model of `label`.
    pub fn element(mut self, label: impl Into<Symbol>, children: Vec<ChildSpec>) -> Dtd {
        self.rules.insert(label.into(), children);
        self
    }

    /// The required document element.
    pub fn root(&self) -> Symbol {
        self.root
    }

    /// Checks one node's children against its content model.
    fn check_node(&self, t: &Tree, n: NodeId, out: &mut Vec<Violation>) {
        let specs = self.rules.get(&t.label(n));
        let mut counts: HashMap<Symbol, usize> = HashMap::new();
        for &c in t.children(n) {
            *counts.entry(t.label(c)).or_insert(0) += 1;
        }
        match specs {
            None => {
                // Not declared: must be a leaf.
                if let Some((&child, _)) = counts.iter().next() {
                    out.push(Violation::UnexpectedChild { node: n, child });
                }
            }
            Some(specs) => {
                for spec in specs {
                    let found = counts.remove(&spec.label).unwrap_or(0);
                    let ok = found >= spec.min && spec.max.map_or(true, |mx| found <= mx);
                    if !ok {
                        out.push(Violation::Occurrence {
                            node: n,
                            child: spec.label,
                            found,
                        });
                    }
                }
                for (&child, _) in counts.iter() {
                    out.push(Violation::UnexpectedChild { node: n, child });
                }
            }
        }
    }

    /// Full validation: all violations, root first.
    pub fn validate(&self, t: &Tree) -> Vec<Violation> {
        let mut out = Vec::new();
        if t.label(t.root()) != self.root {
            out.push(Violation::WrongRoot {
                found: t.label(t.root()),
                expected: self.root,
            });
        }
        for n in t.nodes() {
            self.check_node(t, n, &mut out);
        }
        out
    }

    /// Does the tree conform?
    pub fn conforms(&self, t: &Tree) -> bool {
        self.validate(t).is_empty()
    }

    /// Incremental revalidation after updates: assuming the tree conformed
    /// before the journaled modifications, only the modification sites and
    /// any *freshly inserted* subtrees can violate — occurrence
    /// constraints are per-node-local in this model. Checks exactly those.
    pub fn revalidate(&self, t: &Tree) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut seen: Vec<NodeId> = Vec::new();
        for m in t.mod_sites() {
            if !t.is_alive(m.site) || seen.contains(&m.site) {
                continue;
            }
            seen.push(m.site);
            self.check_node(t, m.site, &mut out);
            // Freshly grafted children of the site carry whole new
            // subtrees: validate those in full. (Conservative: existing
            // children get rechecked too, which is harmless.)
            for d in t.descendants(m.site) {
                self.check_node(t, d, &mut out);
            }
        }
        out
    }
}

/// Enumerates all conforming trees with at most `max_nodes` nodes, up to
/// `max_trees` results (exponential — a search substrate, not a sampler).
pub fn enumerate_conforming(dtd: &Dtd, max_nodes: usize, max_trees: usize) -> Vec<Tree> {
    enumerate_conforming_deadline(dtd, max_nodes, max_trees, &Deadline::never())
        .expect("unbounded deadline never expires")
}

/// [`enumerate_conforming`] with a cooperative deadline, polled once per
/// expansion step of the search tree.
pub fn enumerate_conforming_deadline(
    dtd: &Dtd,
    max_nodes: usize,
    max_trees: usize,
    deadline: &Deadline,
) -> Result<Vec<Tree>, DeadlineExceeded> {
    let mut out = Vec::new();
    if max_nodes == 0 {
        return Ok(out);
    }
    let mut t = Tree::new(dtd.root());
    let root = t.root();
    expand(
        dtd,
        &mut t,
        vec![root],
        max_nodes,
        max_trees,
        deadline,
        &mut out,
    )?;
    Ok(out)
}

/// Depth-first expansion: `frontier` holds nodes whose children are not
/// yet decided. For each frontier node, enumerate admissible child
/// multisets within the remaining node budget.
fn expand(
    dtd: &Dtd,
    t: &mut Tree,
    mut frontier: Vec<NodeId>,
    max_nodes: usize,
    max_trees: usize,
    deadline: &Deadline,
    out: &mut Vec<Tree>,
) -> Result<(), DeadlineExceeded> {
    if out.len() >= max_trees {
        return Ok(());
    }
    deadline.check()?;
    let Some(node) = frontier.pop() else {
        out.push(t.clone());
        return Ok(());
    };
    let specs = dtd.rules.get(&t.label(node)).cloned().unwrap_or_default();
    // Enumerate per-spec counts. Cap each count by the node budget.
    let budget = max_nodes - t.live_count();
    let mut counts = vec![0usize; specs.len()];
    enumerate_counts(
        dtd,
        t,
        node,
        &specs,
        0,
        budget,
        &mut counts,
        &frontier,
        max_nodes,
        max_trees,
        deadline,
        out,
    )
}

#[allow(clippy::too_many_arguments)]
fn enumerate_counts(
    dtd: &Dtd,
    t: &mut Tree,
    node: NodeId,
    specs: &[ChildSpec],
    idx: usize,
    budget: usize,
    counts: &mut Vec<usize>,
    frontier: &[NodeId],
    max_nodes: usize,
    max_trees: usize,
    deadline: &Deadline,
    out: &mut Vec<Tree>,
) -> Result<(), DeadlineExceeded> {
    if out.len() >= max_trees {
        return Ok(());
    }
    if idx == specs.len() {
        // Materialize the chosen children and recurse into the frontier.
        let mut t2 = t.clone();
        let mut frontier2 = frontier.to_vec();
        for (spec, &count) in specs.iter().zip(counts.iter()) {
            for _ in 0..count {
                frontier2.push(t2.build_child(node, spec.label));
            }
        }
        return expand(dtd, &mut t2, frontier2, max_nodes, max_trees, deadline, out);
    }
    let spec = &specs[idx];
    let hi = spec.max.unwrap_or(usize::MAX).min(budget);
    if spec.min > hi {
        return Ok(()); // cannot satisfy within budget
    }
    for c in spec.min..=hi {
        counts[idx] = c;
        enumerate_counts(
            dtd,
            t,
            node,
            specs,
            idx + 1,
            budget - c,
            counts,
            frontier,
            max_nodes,
            max_trees,
            deadline,
            out,
        )?;
    }
    Ok(())
}

/// Outcome of a schema-constrained conflict search.
#[derive(Debug, Clone)]
pub enum SchemaSearchOutcome {
    /// A conforming witness exists — the conflict survives the schema.
    Conflict(Tree),
    /// No conforming tree of at most this size witnesses a conflict.
    NoConflictWithin(usize),
    /// More than `max_trees` conforming candidates; undecided.
    BudgetExceeded,
    /// The deadline expired (or the cancel token fired) mid-search.
    DeadlineExceeded,
}

/// Searches for a **conforming** conflict witness. Trees that violate the
/// DTD cannot occur at run time, so a conflict whose witnesses are all
/// non-conforming is spurious under the schema — the refinement §6 poses
/// as an open problem (here: semi-decided by bounded search).
pub fn find_witness_conforming(
    r: &Read,
    u: &Update,
    sem: Semantics,
    dtd: &Dtd,
    max_nodes: usize,
    max_trees: usize,
) -> SchemaSearchOutcome {
    find_witness_conforming_deadline(r, u, sem, dtd, max_nodes, max_trees, &Deadline::never())
}

/// [`find_witness_conforming`] with a cooperative deadline, polled both
/// during candidate enumeration and per witness check.
#[allow(clippy::too_many_arguments)]
pub fn find_witness_conforming_deadline(
    r: &Read,
    u: &Update,
    sem: Semantics,
    dtd: &Dtd,
    max_nodes: usize,
    max_trees: usize,
    deadline: &Deadline,
) -> SchemaSearchOutcome {
    if failpoints::fire("schema::search") {
        return SchemaSearchOutcome::BudgetExceeded;
    }
    let candidates = match enumerate_conforming_deadline(dtd, max_nodes, max_trees, deadline) {
        Ok(c) => c,
        Err(DeadlineExceeded) => return SchemaSearchOutcome::DeadlineExceeded,
    };
    let exhausted = candidates.len() >= max_trees;
    for t in candidates {
        if deadline.poll() {
            return SchemaSearchOutcome::DeadlineExceeded;
        }
        if witnesses_update_conflict(r, u, &t, sem) {
            return SchemaSearchOutcome::Conflict(t);
        }
    }
    if exhausted {
        SchemaSearchOutcome::BudgetExceeded
    } else {
        SchemaSearchOutcome::NoConflictWithin(max_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::Insert;
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    /// inventory → book*; book → title, quantity?; title/quantity leaves.
    fn inventory_dtd() -> Dtd {
        Dtd::new("inventory")
            .element("inventory", vec![ChildSpec::star("book")])
            .element(
                "book",
                vec![ChildSpec::one("title"), ChildSpec::optional("quantity")],
            )
    }

    #[test]
    fn validates_conforming_document() {
        let dtd = inventory_dtd();
        let t = text::parse("inventory(book(title quantity) book(title))").unwrap();
        assert!(dtd.conforms(&t), "{:?}", dtd.validate(&t));
    }

    #[test]
    fn rejects_wrong_root() {
        let dtd = inventory_dtd();
        let t = text::parse("shop(book(title))").unwrap();
        assert!(matches!(
            dtd.validate(&t).first(),
            Some(Violation::WrongRoot { .. })
        ));
    }

    #[test]
    fn rejects_missing_required_child() {
        let dtd = inventory_dtd();
        let t = text::parse("inventory(book(quantity))").unwrap(); // no title
        assert!(dtd
            .validate(&t)
            .iter()
            .any(|v| matches!(v, Violation::Occurrence { .. })));
    }

    #[test]
    fn rejects_duplicate_bounded_child() {
        let dtd = inventory_dtd();
        let t = text::parse("inventory(book(title title))").unwrap();
        assert!(!dtd.conforms(&t));
    }

    #[test]
    fn rejects_unexpected_child() {
        let dtd = inventory_dtd();
        let t = text::parse("inventory(book(title price))").unwrap();
        assert!(dtd
            .validate(&t)
            .iter()
            .any(|v| matches!(v, Violation::UnexpectedChild { .. })));
    }

    #[test]
    fn undeclared_elements_are_leaves() {
        let dtd = inventory_dtd();
        let t = text::parse("inventory(book(title(deep)))").unwrap();
        assert!(!dtd.conforms(&t));
    }

    #[test]
    fn revalidate_sees_bad_insert() {
        let dtd = inventory_dtd();
        let mut t = text::parse("inventory(book(title))").unwrap();
        assert!(dtd.conforms(&t));
        // Insert a second title — breaks the bound; revalidation catches
        // it by looking only at the journaled site.
        let ins = Insert::new(
            parse("inventory/book").unwrap(),
            text::parse("title").unwrap(),
        );
        ins.apply(&mut t);
        let vs = dtd.revalidate(&t);
        assert!(
            vs.iter().any(|v| matches!(v, Violation::Occurrence { .. })),
            "{vs:?}"
        );
    }

    #[test]
    fn revalidate_accepts_good_insert() {
        let dtd = inventory_dtd();
        let mut t = text::parse("inventory(book(title))").unwrap();
        let ins = Insert::new(
            parse("inventory").unwrap(),
            text::parse("book(title)").unwrap(),
        );
        ins.apply(&mut t);
        assert!(dtd.revalidate(&t).is_empty());
        assert!(dtd.conforms(&t));
    }

    #[test]
    fn revalidate_agrees_with_full_validation() {
        // On updated documents that conformed initially, revalidate must
        // flag violations iff full validation does.
        let dtd = inventory_dtd();
        let cases = [
            ("inventory(book(title))", "inventory/book", "quantity", true),
            (
                "inventory(book(title quantity))",
                "inventory/book",
                "quantity",
                false,
            ),
            ("inventory(book(title))", "inventory", "book(title)", true),
            ("inventory(book(title))", "inventory", "price", false),
        ];
        for (doc, pat, x, ok) in cases {
            let mut t = text::parse(doc).unwrap();
            assert!(dtd.conforms(&t));
            let ins = Insert::new(parse(pat).unwrap(), text::parse(x).unwrap());
            ins.apply(&mut t);
            assert_eq!(dtd.conforms(&t), ok, "{doc} + {x}");
            assert_eq!(dtd.revalidate(&t).is_empty(), ok, "revalidate {doc} + {x}");
        }
    }

    #[test]
    fn enumerate_conforming_small() {
        // root → a?, so conforming trees of ≤2 nodes: root, root(a).
        let dtd = Dtd::new("root").element("root", vec![ChildSpec::optional("a")]);
        let trees = enumerate_conforming(&dtd, 2, 100);
        assert_eq!(trees.len(), 2);
        for t in &trees {
            assert!(dtd.conforms(t));
        }
    }

    #[test]
    fn enumerate_conforming_respects_min() {
        // root → a+ : the 1-node tree does not conform.
        let dtd = Dtd::new("root").element("root", vec![ChildSpec::plus("a")]);
        let trees = enumerate_conforming(&dtd, 3, 100);
        assert!(!trees.is_empty());
        for t in &trees {
            assert!(t.live_count() >= 2);
            assert!(dtd.conforms(t));
        }
    }

    #[test]
    fn enumerate_conforming_all_conform() {
        let dtd = inventory_dtd();
        let trees = enumerate_conforming(&dtd, 5, 10_000);
        assert!(!trees.is_empty());
        for t in &trees {
            assert!(dtd.conforms(t), "{t:?}");
        }
    }

    #[test]
    fn schema_eliminates_spurious_conflict() {
        // read inventory//restock vs insert restock under
        // inventory/book/bogus: over T_Σ this conflicts (some tree has a
        // bogus child), but the DTD forbids <bogus>, so no conforming
        // witness exists.
        let r = Read::new(parse("inventory//restock").unwrap());
        let u = Update::Insert(Insert::new(
            parse("inventory/book/bogus").unwrap(),
            text::parse("restock").unwrap(),
        ));
        // Unconstrained: conflict (PTIME detector).
        assert!(cxu_core::detect::read_update_conflict(&r, &u, Semantics::Node).unwrap());
        // Schema-constrained: none within a generous bound.
        let dtd = inventory_dtd();
        match find_witness_conforming(&r, &u, Semantics::Node, &dtd, 7, 100_000) {
            SchemaSearchOutcome::NoConflictWithin(_) => {}
            other => panic!("expected schema to kill the conflict, got {other:?}"),
        }
    }

    #[test]
    fn deadline_exceeded_reported() {
        let dtd = inventory_dtd();
        let r = Read::new(parse("inventory//restock").unwrap());
        let u = Update::Insert(Insert::new(
            parse("inventory/book/bogus").unwrap(),
            text::parse("restock").unwrap(),
        ));
        let dl = Deadline::after(std::time::Duration::ZERO);
        match find_witness_conforming_deadline(&r, &u, Semantics::Node, &dtd, 7, 100_000, &dl) {
            SchemaSearchOutcome::DeadlineExceeded => {}
            other => panic!("expected deadline exhaustion, got {other:?}"),
        }
        // Enumeration alone also reports expiry (fresh handle: the poll
        // stride counts per deadline).
        let dl2 = Deadline::after(std::time::Duration::ZERO);
        assert!(enumerate_conforming_deadline(&dtd, 5, 10_000, &dl2).is_err());
    }

    #[test]
    fn schema_preserves_real_conflict() {
        // Insert restock under low-quantity books; read restocks. The
        // schema allows it, so the conflict survives.
        let dtd = Dtd::new("inventory")
            .element("inventory", vec![ChildSpec::star("book")])
            .element(
                "book",
                vec![
                    ChildSpec::one("title"),
                    ChildSpec::optional("quantity"),
                    ChildSpec::optional("restock"),
                ],
            );
        let r = Read::new(parse("inventory//restock").unwrap());
        let u = Update::Insert(Insert::new(
            parse("inventory/book").unwrap(),
            text::parse("restock").unwrap(),
        ));
        match find_witness_conforming(&r, &u, Semantics::Node, &dtd, 4, 100_000) {
            SchemaSearchOutcome::Conflict(w) => {
                assert!(dtd.conforms(&w));
            }
            other => panic!("expected a conforming witness, got {other:?}"),
        }
    }
}
