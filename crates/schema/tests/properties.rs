//! Property tests for the DTD substrate.

// Gated: needs the external `proptest` crate (see the workspace
// Cargo.toml note on hermetic builds).
#![cfg(feature = "proptest")]

use cxu_ops::{Insert, Read, Semantics, Update};
use cxu_pattern::xpath;
use cxu_schema::{
    enumerate_conforming, find_witness_conforming, ChildSpec, Dtd, SchemaSearchOutcome,
};
use cxu_tree::text;
use proptest::prelude::*;

/// A small family of DTDs parameterized by occurrence choices.
fn arb_dtd() -> impl Strategy<Value = Dtd> {
    (0u8..4, 0u8..4, proptest::bool::ANY).prop_map(|(qa, qb, deep)| {
        let spec = |k: u8, l: &str| match k {
            0 => ChildSpec::optional(l),
            1 => ChildSpec::one(l),
            2 => ChildSpec::star(l),
            _ => ChildSpec::plus(l),
        };
        let mut dtd = Dtd::new("r").element("r", vec![spec(qa, "a"), spec(qb, "b")]);
        if deep {
            dtd = dtd.element("a", vec![ChildSpec::optional("c")]);
        }
        dtd
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Everything the enumerator produces conforms, and every conforming
    /// tree of the bounded size appears (cross-checked by filtering the
    /// unconstrained enumeration).
    #[test]
    fn enumeration_sound_and_complete(dtd in arb_dtd()) {
        let max = 4;
        let out = enumerate_conforming(&dtd, max, 100_000);
        for t in &out {
            prop_assert!(dtd.conforms(t), "{t:?}");
        }
        // Completeness: every conforming tree over {r,a,b,c} with ≤ max
        // nodes is isomorphic to an enumerated one.
        let alpha: Vec<_> = ["r", "a", "b", "c"]
            .iter()
            .map(|s| cxu_tree::Symbol::intern(s))
            .collect();
        let mut canon = cxu_tree::iso::Canonizer::new();
        let have: std::collections::HashSet<_> =
            out.iter().map(|t| canon.code_tree(t)).collect();
        for t in cxu_tree::enumerate::enumerate_trees(&alpha, max) {
            if dtd.conforms(&t) {
                prop_assert!(
                    have.contains(&canon.code_tree(&t)),
                    "missing conforming tree {t:?}"
                );
            }
        }
    }

    /// Revalidation after an update agrees with full validation, for
    /// documents that conformed beforehand.
    #[test]
    fn revalidate_agrees_with_validate(dtd in arb_dtd(), seed in any::<u64>()) {
        // Start from some conforming document.
        let docs = enumerate_conforming(&dtd, 4, 64);
        if docs.is_empty() { return Ok(()); }
        let mut doc = docs[(seed as usize) % docs.len()].clone();
        // Apply a random-ish insert.
        let patterns = ["r", "r/a", "r/b", "r//c"];
        let subtrees = ["a", "b", "c", "x"];
        let p = patterns[(seed >> 8) as usize % patterns.len()];
        let x = subtrees[(seed >> 16) as usize % subtrees.len()];
        let ins = Insert::new(xpath::parse(p).unwrap(), text::parse(x).unwrap());
        ins.apply(&mut doc);
        prop_assert_eq!(
            dtd.revalidate(&doc).is_empty(),
            dtd.conforms(&doc),
            "dtd={:?} after inserting {} at {}", dtd, x, p
        );
    }

    /// Schema-constrained conflict search is sound: a `Conflict` outcome
    /// always carries a conforming witness that the Lemma 1 checker
    /// accepts.
    #[test]
    fn schema_search_sound(dtd in arb_dtd(), seed in any::<u64>()) {
        let reads = ["r//c", "r/a", "r//x"];
        let r = Read::new(xpath::parse(reads[(seed as usize) % reads.len()]).unwrap());
        let u = Update::Insert(Insert::new(
            xpath::parse("r/a").unwrap(),
            text::parse("c").unwrap(),
        ));
        if let SchemaSearchOutcome::Conflict(w) =
            find_witness_conforming(&r, &u, Semantics::Node, &dtd, 4, 50_000)
        {
            prop_assert!(dtd.conforms(&w));
            prop_assert!(cxu_ops::witness::witnesses_update_conflict(
                &r, &u, &w, Semantics::Node
            ));
        }
    }

    /// Schema-constrained results refine unconstrained ones: if even the
    /// unconstrained detector finds no conflict, the schema search must
    /// not either.
    #[test]
    fn schema_refines_unconstrained(dtd in arb_dtd()) {
        let r = Read::new(xpath::parse("r/zzz").unwrap());
        let u = Update::Insert(Insert::new(
            xpath::parse("r/a").unwrap(),
            text::parse("c").unwrap(),
        ));
        // Unconstrained: no conflict (inserted c can never be a zzz at
        // depth 1 … unless it could: check with the detector).
        let unconstrained =
            cxu_core::detect::read_update_conflict(&r, &u, Semantics::Node).unwrap();
        if !unconstrained {
            prop_assert!(!matches!(
                find_witness_conforming(&r, &u, Semantics::Node, &dtd, 4, 50_000),
                SchemaSearchOutcome::Conflict(_)
            ));
        }
    }
}
