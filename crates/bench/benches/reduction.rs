//! E5: the machinery behind the §5 hardness results — exact tree-pattern
//! containment cost grows exponentially in the number of descendant edges
//! (canonical-model count `(w+2)^k`), while the polynomial homomorphism
//! check stays flat; plus the cost of building reduction instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::core::reduction;
use cxu::pattern::containment;
use cxu_bench::pattern_with_desc_edges;
use std::hint::black_box;

fn bench_exact_containment(c: &mut Criterion) {
    let mut g = c.benchmark_group("containment_model_sweep_vs_desc_edges");
    g.sample_size(10);
    for k in [1usize, 2, 3, 4, 5] {
        // Full canonical-model sweep (no homomorphism shortcut): p has k
        // descendant edges, the container has star-length 2, so the
        // sweep visits (2+2)^k models.
        let p = pattern_with_desc_edges(8, k);
        let q = cxu::pattern::xpath::parse("c0//*/*/c1").unwrap();
        let w = q.star_length();
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let all = containment::canonical_models(black_box(&p), w, &q.alphabet())
                    .all(|m| cxu::pattern::eval::matches(&q, &m));
                black_box(all)
            })
        });
    }
    g.finish();
}

fn bench_homomorphism(c: &mut Criterion) {
    let mut g = c.benchmark_group("containment_homomorphism");
    for k in [1usize, 3, 5] {
        let p = pattern_with_desc_edges(8, k);
        let q = pattern_with_desc_edges(9, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(containment::homomorphism(black_box(&p), black_box(&q))))
        });
    }
    g.finish();
}

fn bench_reduction_construction(c: &mut Criterion) {
    let p = pattern_with_desc_edges(10, 3);
    let q = pattern_with_desc_edges(12, 4);
    c.bench_function("theorem4_instance_construction", |b| {
        b.iter(|| black_box(reduction::insert_instance(black_box(&p), black_box(&q))))
    });
    c.bench_function("theorem6_instance_construction", |b| {
        b.iter(|| black_box(reduction::delete_instance(black_box(&p), black_box(&q))))
    });
}

criterion_group!(
    benches,
    bench_exact_containment,
    bench_homomorphism,
    bench_reduction_construction
);
criterion_main!(benches);
