//! E10: update-update commutativity (§6) — witness checking is cheap;
//! bounded non-commutativity search costs grow with the size bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::core::update_update::{commute_on, find_noncommuting_witness, Budget};
use cxu::prelude::*;
use cxu_bench::sized_document;
use std::hint::black_box;

fn pair() -> (Update, Update) {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let u1 = Update::Insert(Insert::new(
        parse("s0/s1"),
        cxu::tree::text::parse("s2").unwrap(),
    ));
    let u2 = Update::Delete(Delete::new(parse("s0/s1/s2")).unwrap());
    (u1, u2)
}

fn bench_commute_check(c: &mut Criterion) {
    let (u1, u2) = pair();
    let mut g = c.benchmark_group("commute_on_document");
    for &n in &[100usize, 1_000, 5_000] {
        let t = sized_document(n, 5);
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(commute_on(black_box(&u1), black_box(&u2), black_box(&t))))
        });
    }
    g.finish();
}

fn bench_noncommute_search(c: &mut Criterion) {
    let (u1, u2) = pair();
    let mut g = c.benchmark_group("noncommute_search");
    g.sample_size(10);
    for &max_nodes in &[2usize, 3, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(max_nodes),
            &max_nodes,
            |b, &max_nodes| {
                b.iter(|| {
                    black_box(find_noncommuting_witness(
                        black_box(&u1),
                        black_box(&u2),
                        Budget {
                            max_nodes,
                            max_trees: 10_000_000,
                        },
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_commute_check, bench_noncommute_search);
criterion_main!(benches);
