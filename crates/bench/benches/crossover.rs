//! E4 (NP side): exhaustive witness search explodes exponentially in the
//! size bound while the PTIME detector answers the comparable linear
//! instance in microseconds — the practical content of §5's
//! NP-completeness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::core::brute::{find_witness, Budget};
use cxu::prelude::*;
use cxu::detect;
use std::hint::black_box;

fn branching_instance() -> (Read, Update) {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let r = Read::new(parse("s0[s1][s2]/s3"));
    let u = Update::Insert(Insert::new(
        parse("s0[s1]/s2"),
        cxu::tree::text::parse("s3").unwrap(),
    ));
    (r, u)
}

fn bench_brute_force(c: &mut Criterion) {
    let (r, u) = branching_instance();
    let mut g = c.benchmark_group("brute_force_search");
    g.sample_size(10);
    for max_nodes in [2usize, 3, 4, 5] {
        g.bench_with_input(
            BenchmarkId::from_parameter(max_nodes),
            &max_nodes,
            |b, &max_nodes| {
                b.iter(|| {
                    black_box(find_witness(
                        black_box(&r),
                        black_box(&u),
                        Semantics::Node,
                        Budget {
                            max_nodes,
                            max_trees: 50_000_000,
                        },
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_linear_comparison(c: &mut Criterion) {
    // The same update against a linear read of comparable size: constant
    // microseconds regardless of any witness bound.
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let r = Read::new(parse("s0/s2/s3"));
    let (_, u) = branching_instance();
    c.bench_function("linear_detector_same_update", |b| {
        b.iter(|| {
            black_box(
                detect::read_update_conflict(black_box(&r), black_box(&u), Semantics::Node)
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_brute_force, bench_linear_comparison);
criterion_main!(benches);
