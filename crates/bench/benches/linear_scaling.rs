//! E4 (PTIME side) + E10: the §4 detectors scale polynomially in pattern
//! size, and the all-prefixes dynamic program beats per-edge NFA
//! intersection.
//!
//! Series reported:
//! * `read_insert_detect/n`, `read_delete_detect/n` — detection time for
//!   linear patterns of `n` nodes on both sides (Theorems 1–2);
//! * `matcher/prefix_dp/n` vs `matcher/per_edge_nfa/n` — the ablation the
//!   paper's dynamic-programming remark motivates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::core::matching;
use cxu::prelude::*;
use cxu::detect;
use cxu_bench::{sized_delete_instance, sized_insert_instance, sized_linear_pattern};
use std::hint::black_box;

const SIZES: [usize; 4] = [8, 32, 128, 512];

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("read_insert_detect");
    for &n in &SIZES {
        let (r, i) = sized_insert_instance(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    detect::read_insert_conflict(black_box(&r), black_box(&i), Semantics::Node)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("read_delete_detect");
    for &n in &SIZES {
        let (r, d) = sized_delete_instance(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    detect::read_delete_conflict(black_box(&r), black_box(&d), Semantics::Node)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_matcher_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("matcher");
    for &n in &[8usize, 32, 128] {
        let u = sized_linear_pattern(n, 1);
        let r = sized_linear_pattern(n, 0);
        // One product pass answering every prefix.
        g.bench_with_input(BenchmarkId::new("prefix_dp", n), &n, |b, _| {
            b.iter(|| {
                let pm = matching::PrefixMatcher::new(black_box(&u), black_box(&r));
                black_box(pm.weak(pm.read_len()))
            })
        });
        // The naive alternative: a fresh NFA intersection per prefix.
        g.bench_with_input(BenchmarkId::new("per_edge_nfa", n), &n, |b, _| {
            b.iter(|| {
                let k = matching::spine_nodes(&r).len();
                let mut any = false;
                for j in 1..=k {
                    let prefix = matching::read_prefix(&r, j);
                    any |= matching::match_weak(&u, &prefix);
                }
                black_box(any)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detectors, bench_matcher_ablation);
criterion_main!(benches);
