//! E12: constructive witnesses (the Lemma 3/6 (If) directions) — cost of
//! building-and-verifying a concrete witness vs pattern size, compared
//! with bare detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::core::construct;
use cxu::prelude::*;
use cxu::detect;
use cxu_bench::sized_conflicting_insert_instance;
use std::hint::black_box;

fn bench_construct(c: &mut Criterion) {
    let mut g = c.benchmark_group("witness_construct_vs_detect");
    for &n in &[8usize, 32, 128] {
        let (r, i) = sized_conflicting_insert_instance(n);
        let conflicts = detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap();
        g.bench_with_input(BenchmarkId::new("detect", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    detect::read_insert_conflict(black_box(&r), black_box(&i), Semantics::Node)
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("construct_verified", n), &n, |b, _| {
            b.iter(|| {
                let w = construct::construct_insert_witness(black_box(&r), black_box(&i));
                assert_eq!(w.is_some(), conflicts);
                black_box(w)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_construct);
criterion_main!(benches);
