//! E9: the §1 compiler scenario at benchmark scale — classifying every
//! (update, later-read) pair of generated pidgin programs with the PTIME
//! detector. Measures classification throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::gen::program::{motion_candidates, random_program, ProgramParams, Stmt};
use cxu::prelude::*;
use cxu::detect;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_pair_classification(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_pair_classification");
    for &len in &[10usize, 40, 160] {
        let mut rng = SmallRng::seed_from_u64(11);
        let prog = random_program(
            &mut rng,
            &ProgramParams {
                len,
                ..ProgramParams::default()
            },
        );
        let pairs = motion_candidates(&prog);
        g.throughput(criterion::Throughput::Elements(pairs.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                let mut independent = 0usize;
                for &(ui, ri) in &pairs {
                    let Stmt::Update(u) = &prog.stmts[ui] else { unreachable!() };
                    let Stmt::Read(r) = &prog.stmts[ri] else { unreachable!() };
                    if detect::independent(r, u, Semantics::Tree).unwrap() {
                        independent += 1;
                    }
                }
                black_box(independent)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pair_classification);
criterion_main!(benches);
