//! E6: witness minimization (marking + reparenting, §5.1.1) — cost as the
//! bloated witness grows, with the output size pinned far below the
//! Lemma 11 bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::core::witness_min;
use cxu::prelude::*;
use std::hint::black_box;

fn bloated_witness(pad_levels: usize) -> (Read, Update, Tree) {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let r = Read::new(parse("a//v"));
    let u = Update::Delete(Delete::new(parse("a//b[q]")).unwrap());
    let mut chain = String::from("b(q v)");
    for i in 0..pad_levels {
        chain = format!("p{i}({chain} noise{i}(x y))", );
    }
    let w = cxu::tree::text::parse(&format!("a({chain})")).unwrap();
    (r, u, w)
}

fn bench_minimize(c: &mut Criterion) {
    let mut g = c.benchmark_group("witness_minimize");
    g.sample_size(20);
    for &levels in &[4usize, 16, 64] {
        let (r, u, w) = bloated_witness(levels);
        g.throughput(criterion::Throughput::Elements(w.live_count() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(w.live_count()), &levels, |b, _| {
            b.iter(|| {
                let small = witness_min::minimize(
                    black_box(&r),
                    black_box(&u),
                    black_box(&w),
                    Semantics::Node,
                )
                .expect("witness");
                black_box(small)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_minimize);
criterion_main!(benches);
