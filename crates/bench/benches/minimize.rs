//! E13: pattern minimization (baseline [2]) — cost of the
//! result-equivalence-checked pruning pass, and its effect measured in
//! the report binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::pattern::minimize::minimize;
use cxu_bench::sized_branching_pattern;
use std::hint::black_box;

fn bench_minimize(c: &mut Criterion) {
    let mut g = c.benchmark_group("pattern_minimize");
    g.sample_size(10);
    for &n in &[4usize, 6, 8] {
        let base = sized_branching_pattern(n, 7);
        // Inject redundancy: duplicate the first off-spine branch.
        let p = {
            let mut p = base.clone();
            let spine = p.path(p.root(), p.output()).unwrap();
            let branch = p.node_ids().find(|x| !spine.contains(x));
            if let Some(b) = branch {
                let sub = p.subpattern(b);
                let (parent, axis) = p.parent(b).unwrap();
                p.graft(parent, axis, &sub);
            }
            p
        };
        g.bench_with_input(BenchmarkId::from_parameter(p.len()), &n, |b, _| {
            b.iter(|| black_box(minimize(black_box(&p), 1 << 14)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_minimize);
criterion_main!(benches);
