//! E8: pattern evaluation — the two-pass candidate-set engine vs the
//! exhaustive embedding enumerator, and linear scaling in document size
//! (the Core XPath claim the paper cites as [7]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::pattern::{embed, eval, xpath};
use cxu_bench::sized_document;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let p = xpath::parse("s0[.//s1]//s2[s3]").unwrap();
    let mut g = c.benchmark_group("eval_engine");
    for &n in &[50usize, 200, 800] {
        let t = sized_document(n, 42);
        g.bench_with_input(BenchmarkId::new("two_pass", n), &n, |b, _| {
            b.iter(|| black_box(eval::eval(black_box(&p), black_box(&t))))
        });
        // The naive engine is exponential in embedding count; keep sizes
        // modest so the bench terminates.
        if n <= 200 {
            g.bench_with_input(BenchmarkId::new("naive_enumeration", n), &n, |b, _| {
                b.iter(|| black_box(embed::eval_naive(black_box(&p), black_box(&t))))
            });
        }
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let p = xpath::parse("s0//s1/s2").unwrap();
    let mut g = c.benchmark_group("eval_tree_scaling");
    for &n in &[1_000usize, 4_000, 16_000] {
        let t = sized_document(n, 7);
        g.throughput(criterion::Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eval::eval(black_box(&p), black_box(&t))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_scaling);
criterion_main!(benches);
