//! E14: incremental read maintenance — updating a cached linear read
//! after a small insert costs time proportional to the *update*, while
//! full re-evaluation scales with the document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::core::incremental::IncrementalRead;
use cxu::prelude::*;
use cxu_bench::sized_document;
use std::hint::black_box;

fn bench_incremental_vs_full(c: &mut Criterion) {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let mut g = c.benchmark_group("incremental_insert");
    for &n in &[1_000usize, 10_000, 100_000] {
        let base = sized_document(n, 21);
        let read = Read::new(parse("s0//s1/s2"));
        let ins = Insert::new(parse("s0/s1"), cxu::tree::text::parse("s2").unwrap());

        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut t = base.clone();
                    let inc = IncrementalRead::new(read.clone(), &t).unwrap();
                    let pairs = ins.apply_indexed(&mut t);
                    (t, inc, pairs)
                },
                |(t, mut inc, pairs)| {
                    inc.note_insert(&t, &pairs);
                    black_box(inc.result().len())
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("full_reeval", n), &n, |b, _| {
            b.iter_batched(
                || {
                    let mut t = base.clone();
                    ins.apply(&mut t);
                    t
                },
                |t| black_box(read.eval(&t).len()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_incremental_vs_full);
criterion_main!(benches);
