//! E7: Lemma 1 — checking whether a concrete tree witnesses a conflict is
//! polynomial (near-linear) in the tree size, for all three semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxu::prelude::*;
use cxu::witness::witnesses_update_conflict;
use cxu_bench::sized_document;
use std::hint::black_box;

fn bench_witness_check(c: &mut Criterion) {
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let r = Read::new(parse("s0//s1"));
    let u = Update::Insert(Insert::new(
        parse("s0/s2"),
        cxu::tree::text::parse("s1").unwrap(),
    ));
    for sem in Semantics::ALL {
        let mut g = c.benchmark_group(format!("witness_check_{sem:?}"));
        for &n in &[100usize, 1_000, 10_000] {
            let t = sized_document(n, 3);
            g.throughput(criterion::Throughput::Elements(n as u64));
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
                b.iter(|| {
                    black_box(witnesses_update_conflict(
                        black_box(&r),
                        black_box(&u),
                        black_box(&t),
                        sem,
                    ))
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_witness_check);
criterion_main!(benches);
