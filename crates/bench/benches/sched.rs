//! cxu-sched: batch conflict-graph analysis — scaling in batch size and
//! in worker count, plus the memo cache's effect on repeated batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, ProgramParams};
use cxu::gen::rng::SplitMix64;
use cxu::sched::{ops_of_program, Op, SchedConfig, Scheduler};
use std::hint::black_box;

fn batch(len: usize, seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let p = random_program(
        &mut rng,
        &ProgramParams {
            len,
            update_rate: 0.5,
            delete_rate: 0.4,
            pattern: PatternParams {
                nodes: 4,
                alphabet: 6,
                branch_rate: 0.0,
                ..PatternParams::default()
            },
        },
    );
    ops_of_program(&p)
}

fn cfg(jobs: usize) -> SchedConfig {
    SchedConfig {
        jobs,
        np_max_trees: 2_000,
        ..SchedConfig::default()
    }
}

/// Wall-clock vs batch size (pairs grow quadratically).
fn bench_batch_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_batch_size");
    for &n in &[50usize, 100, 200, 400] {
        let ops = batch(n, 0xBA5E + n as u64);
        g.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Scheduler::new(cfg(1)).run(black_box(&ops))))
        });
    }
    g.finish();
}

/// Wall-clock vs worker count on a fixed 300-op batch.
fn bench_workers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_workers");
    let ops = batch(300, 0x90B5);
    for &jobs in &[1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, _| {
            b.iter(|| black_box(Scheduler::new(cfg(jobs)).run(black_box(&ops))))
        });
    }
    g.finish();
}

/// Cold vs warm scheduler on the same batch: the price the memo cache
/// removes from steady-state traffic.
fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_cache");
    let ops = batch(200, 0xCAC4E);
    g.bench_function("cold", |b| {
        b.iter(|| black_box(Scheduler::new(cfg(1)).run(black_box(&ops))))
    });
    g.bench_function("warm", |b| {
        let mut s = Scheduler::new(cfg(1));
        s.run(&ops);
        b.iter(|| black_box(s.run(black_box(&ops))))
    });
    g.finish();
}

criterion_group!(benches, bench_batch_size, bench_workers, bench_cache);
criterion_main!(benches);
