//! Metrics-instrumented run of the deterministic scheduler workload from
//! `benches/sched.rs`: the `cxu-obs` registry is snapshotted around each
//! batch so the report gains route/cache/degradation columns alongside
//! wall time. Run in release mode from this directory:
//!
//! ```text
//! cargo run --release -p cxu-bench --bin sched_metrics > sched_metrics.json
//! ```
//!
//! The committed `BENCH_SCHED.json` artifact is produced by the
//! workspace-internal `cxu-bench sched` binary instead (see
//! `scripts/bench.sh`), which covers the same `mixed` workload plus a
//! read-dominated `linear` profile; this binary exists so the criterion
//! workload and a recorded metrics JSON can describe the *identical*
//! instances.

use cxu::gen::patterns::PatternParams;
use cxu::gen::program::{random_program, ProgramParams};
use cxu::gen::rng::SplitMix64;
use cxu::sched::{ops_of_program, Op, SchedConfig, Scheduler};
use std::time::Instant;

fn batch(len: usize, seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let p = random_program(
        &mut rng,
        &ProgramParams {
            len,
            update_rate: 0.5,
            delete_rate: 0.4,
            pattern: PatternParams {
                nodes: 4,
                alphabet: 6,
                branch_rate: 0.0,
                ..PatternParams::default()
            },
        },
    );
    ops_of_program(&p)
}

fn cfg(jobs: usize) -> SchedConfig {
    SchedConfig {
        jobs,
        np_max_trees: 2_000,
        ..SchedConfig::default()
    }
}

fn main() {
    let mut runs = String::new();
    for (i, &n) in [50usize, 100, 200, 400].iter().enumerate() {
        let ops = batch(n, 0xBA5E + n as u64);
        let before = cxu::obs::registry().snapshot();
        let t0 = Instant::now();
        let out = Scheduler::new(cfg(1)).run(&ops);
        let wall_us = t0.elapsed().as_micros();
        let delta = cxu::obs::registry().snapshot().delta(&before);
        let st = out.stats;
        if i > 0 {
            runs.push_str(",\n");
        }
        runs.push_str(&format!(
            "    {{\"ops\": {}, \"wall_us\": {wall_us}, \
             \"pairs_total\": {}, \"pairs_analyzed\": {}, \"cache_hits\": {}, \
             \"prefilter_skips\": {}, \"compile_hits\": {}, \"compile_misses\": {}, \
             \"conflict_edges\": {}, \"rounds\": {},\n     \"metrics\": {}}}",
            st.ops,
            st.pairs_total,
            st.pairs_analyzed,
            st.cache_hits,
            st.prefilter_skips,
            delta.counter("automata.compile.hit"),
            delta.counter("automata.compile.miss"),
            st.conflict_edges,
            st.rounds,
            delta.to_json()
        ));
    }
    println!(
        "{{\n  \"bench\": \"sched\",\n  \"workload\": {{\"update_rate\": 0.5, \
         \"delete_rate\": 0.4, \"pattern_nodes\": 4, \"alphabet\": 6, \
         \"branch_rate\": 0.0, \"np_max_trees\": 2000, \"jobs\": 1}},\n  \
         \"runs\": [\n{runs}\n  ]\n}}"
    );
}
