//! Regenerates every table in `EXPERIMENTS.md` as markdown on stdout.
//!
//! Each section corresponds to an experiment id in `DESIGN.md` §5. The
//! paper is a theory paper — the "expected" column is the *shape* its
//! theorems predict (polynomial vs exponential, equal vs different), not
//! absolute numbers. Run in release mode:
//!
//! ```text
//! cargo run --release -p cxu-bench --bin experiments
//! ```

use cxu::core::brute::{find_witness, Budget, SearchOutcome};
use cxu::core::{matching, reduction, update_update, witness_min};
use cxu::gen::program::{motion_candidates, observe, random_program, ProgramParams, Stmt};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::pattern::{containment, embed, eval};
use cxu::prelude::*;
use cxu::tree::enumerate::count_trees;
use cxu::{detect, witness};
use cxu_bench::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Median-of-`reps` wall time for `f`.
fn time<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2} s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else if d.as_micros() >= 1 {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{} ns", d.as_nanos())
    }
}

fn e3_e4_linear_scaling() {
    println!("\n## E4a — PTIME detectors: time vs pattern size (Theorems 1–2)\n");
    println!("| |R| = |U| | read-insert | read-delete | growth |");
    println!("|---|---|---|---|");
    let mut prev: Option<f64> = None;
    for n in [8usize, 32, 128, 512, 2048] {
        let (ri, ii) = sized_insert_instance(n);
        let (rd, dd) = sized_delete_instance(n);
        let t_ins = time(9, || {
            let _ = detect::read_insert_conflict(&ri, &ii, Semantics::Node).unwrap();
        });
        let t_del = time(9, || {
            let _ = detect::read_delete_conflict(&rd, &dd, Semantics::Node).unwrap();
        });
        let cur = t_ins.as_secs_f64();
        let growth = prev
            .map(|p| format!("×{:.1} for ×4 size", cur / p))
            .unwrap_or_else(|| "—".into());
        prev = Some(cur);
        println!("| {n} | {} | {} | {growth} |", fmt_dur(t_ins), fmt_dur(t_del));
    }
    println!("\nExpected shape: polynomial (the paper proves PTIME; ours is");
    println!("roughly quadratic in pattern size from the product pass).");
}

fn e4_crossover() {
    println!("\n## E4b — exhaustive search vs the PTIME detector (§5 vs §4)\n");
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let r = Read::new(parse("s0[s1][s2]/s3"));
    let u = Update::Insert(Insert::new(
        parse("s0[s1]/s2"),
        cxu::tree::text::parse("s3").unwrap(),
    ));
    println!("| witness bound (nodes) | candidate trees | search time |");
    println!("|---|---|---|");
    for max_nodes in 2..=6 {
        let alpha_len = cxu::core::brute::witness_alphabet(&r, &u).len();
        let cands = count_trees(alpha_len, max_nodes);
        let t = time(3, || {
            let _ = find_witness(
                &r,
                &u,
                Semantics::Node,
                Budget {
                    max_nodes,
                    max_trees: 100_000_000,
                },
            );
        });
        println!("| {max_nodes} | {cands} | {} |", fmt_dur(t));
    }
    let r_lin = Read::new(parse("s0/s2/s3"));
    let t_lin = time(9, || {
        let _ = detect::read_update_conflict(&r_lin, &u, Semantics::Node).unwrap();
    });
    println!("| linear read (PTIME path) | — | {} |", fmt_dur(t_lin));
    println!("\nExpected shape: exponential growth on the NP path, constant on");
    println!("the PTIME path — the crossover sits below 4-node witnesses.");
}

fn e5_reduction() {
    println!("\n## E5 — Theorems 4/6: conflict ⇔ non-containment, and exact-containment cost\n");
    // Agreement sweep.
    let mut agree = 0usize;
    let mut total = 0usize;
    for seed in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = cxu::gen::patterns::PatternParams {
            nodes: 3,
            alphabet: 2,
            branch_rate: 0.35,
            ..Default::default()
        };
        let p = cxu::gen::patterns::random_pattern(&mut rng, &params);
        let q = cxu::gen::patterns::random_pattern(&mut rng, &params);
        let Some(contained) = containment::contains_within(&p, &q, 1 << 12) else {
            continue;
        };
        let (r, i) = reduction::insert_instance(&p, &q);
        let conflict = if let Some(t_p) = containment::find_counterexample(&p, &q, 4) {
            let w = reduction::insert_witness_from_counterexample(&p, &q, &t_p);
            witness::witnesses_insert_conflict(&r, &i, &w, Semantics::Node)
        } else {
            matches!(
                find_witness(
                    &r,
                    &Update::Insert(i),
                    Semantics::Node,
                    Budget { max_nodes: 4, max_trees: 200_000 }
                ),
                SearchOutcome::Conflict(_)
            )
        };
        total += 1;
        if conflict != contained {
            agree += 1;
        }
    }
    println!("Theorem 4 agreement on {total} random pairs: {agree}/{total} (expected: all)\n");

    // Cost of the exact decision procedure without the homomorphism
    // fast path: sweep every canonical model of p (Miklau–Suciu). With a
    // star-length-2 container, the count is (2+2)^k = 4^k.
    println!("| descendant edges k | canonical models | full model sweep | homomorphism |");
    println!("|---|---|---|---|");
    for k in 1..=6 {
        let p = pattern_with_desc_edges(8, k);
        // Container with star-length 2 ending in p's leaf label.
        let q = {
            let leaf = format!("c{}", 7 % 3);
            cxu::pattern::xpath::parse(&format!("c0//*/*/{leaf}")).unwrap()
        };
        let w = q.star_length();
        let sweep = containment::canonical_models(&p, w, &q.alphabet());
        let models = sweep.total();
        let t_exact = time(3, || {
            let all = containment::canonical_models(&p, w, &q.alphabet())
                .all(|m| eval::matches(&q, &m));
            std::hint::black_box(all);
        });
        let t_hom = time(9, || {
            let _ = containment::homomorphism(&p, &q);
        });
        println!("| {k} | {models} | {} | {} |", fmt_dur(t_exact), fmt_dur(t_hom));
    }
    println!("\nExpected shape: sweep cost ∝ (w+2)^k; homomorphism flat (PTIME but incomplete).");
}

fn e6_witness_minimization() {
    println!("\n## E6 — witness minimization (Lemmas 9–11)\n");
    println!("| case | bloated witness | minimized | Lemma 11 bound |");
    println!("|---|---|---|---|");
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let cases: Vec<(&str, Read, Update, Tree)> = {
        let mk_del = |r: &str, d: &str, w: &str| {
            (
                Read::new(parse(r)),
                Update::Delete(Delete::new(parse(d)).unwrap()),
                cxu::tree::text::parse(w).unwrap(),
            )
        };
        let mk_ins = |r: &str, i: &str, x: &str, w: &str| {
            (
                Read::new(parse(r)),
                Update::Insert(Insert::new(parse(i), cxu::tree::text::parse(x).unwrap())),
                cxu::tree::text::parse(w).unwrap(),
            )
        };
        let (r1, u1, w1) = mk_ins("x//C", "x/B", "C", "x(B)");
        let (r2, u2, w2) = mk_del("a//v", "a/b", "a(b(v))");
        let (r3, u3, w3) = mk_del("a/*/*/v", "a//b", "a(b(m(v)))");
        vec![
            ("insert §1", r1, u1, w1),
            ("delete fig5", r2, u2, w2),
            ("star-chain", r3, u3, w3),
        ]
    };
    for (name, r, u, seed_witness) in cases {
        // Bloat the witness with noise at every node.
        let mut big = seed_witness.clone();
        let noise = cxu::tree::text::parse("n0(n1(n2) n3(n4 n5))").unwrap();
        for n in seed_witness.nodes() {
            big.graft(n, &noise);
            big.graft(n, &noise);
        }
        big.clear_mods();
        let small = witness_min::minimize(&r, &u, &big, Semantics::Node).expect("witness");
        let bound = cxu::core::brute::lemma11_bound(&r, &u);
        println!(
            "| {name} | {} nodes | {} nodes | {bound} |",
            big.live_count(),
            small.live_count()
        );
        assert!(witness::witnesses_update_conflict(&r, &u, &small, Semantics::Node));
    }
    println!("\nExpected shape: minimized sizes far below |R|·|U|·(k+1).");
}

fn e7_witness_check() {
    println!("\n## E7 — Lemma 1: witness checking vs document size\n");
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let r = Read::new(parse("s0//s1"));
    let u = Update::Insert(Insert::new(
        parse("s0/s2"),
        cxu::tree::text::parse("s1").unwrap(),
    ));
    println!("| |t| | node | tree | value |");
    println!("|---|---|---|---|");
    for n in [100usize, 1_000, 10_000] {
        let t = sized_document(n, 3);
        let row: Vec<String> = Semantics::ALL
            .iter()
            .map(|&sem| {
                fmt_dur(time(5, || {
                    let _ = witness::witnesses_update_conflict(&r, &u, &t, sem);
                }))
            })
            .collect();
        println!("| {n} | {} | {} | {} |", row[0], row[1], row[2]);
    }
    println!("\nExpected shape: near-linear in |t| for all three semantics.");
}

fn e8_eval() {
    println!("\n## E8 — evaluation engines (Core XPath claim, [7])\n");
    // A wildcard chain has Θ(n·depth²)-many embeddings on deep documents:
    // the naive enumerator materializes all of them, the two-pass engine
    // only the candidate sets.
    let p = cxu::pattern::xpath::parse("*//*//*//*").unwrap();
    println!("| |t| | two-pass | naive enumeration | embeddings |");
    println!("|---|---|---|---|");
    for n in [50usize, 100, 200, 400] {
        let mut rng = SmallRng::seed_from_u64(42);
        let t = random_tree(
            &mut rng,
            &TreeParams { nodes: n, alphabet: 3, deep_bias: 0.8, ..Default::default() },
        );
        let t_fast = time(5, || {
            let _ = eval::eval(&p, &t);
        });
        let (t_naive, count) = if n <= 200 {
            let count = embed::enumerate(&p, &t, usize::MAX).len();
            let d = time(3, || {
                let _ = embed::eval_naive(&p, &t);
            });
            (fmt_dur(d), count.to_string())
        } else {
            ("(skipped)".into(), "—".into())
        };
        println!("| {n} | {} | {t_naive} | {count} |", fmt_dur(t_fast));
    }
    println!("\nExpected shape: two-pass stays near-linear; naive grows with the");
    println!("embedding count (superlinear on deep documents).");
}

fn e9_optimizer() {
    println!("\n## E9 — §1 compiler scenario: provably reorderable pairs\n");
    println!("| semantics | pairs | independent | share |");
    println!("|---|---|---|---|");
    for sem in [Semantics::Node, Semantics::Tree] {
        let mut total = 0usize;
        let mut indep = 0usize;
        for seed in 0..50u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let prog = random_program(&mut rng, &ProgramParams::default());
            for (ui, ri) in motion_candidates(&prog) {
                let Stmt::Update(u) = &prog.stmts[ui] else { unreachable!() };
                let Stmt::Read(r) = &prog.stmts[ri] else { unreachable!() };
                total += 1;
                if detect::independent(r, u, sem).unwrap() {
                    indep += 1;
                }
            }
        }
        println!(
            "| {sem:?} | {total} | {indep} | {:.0}% |",
            100.0 * indep as f64 / total as f64
        );
    }
    // Observational spot check (tree semantics, adjacent pairs).
    let mut verified = 0usize;
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let prog = random_program(&mut rng, &ProgramParams::default());
        let doc = random_tree(
            &mut SmallRng::seed_from_u64(seed ^ 0xabc),
            &TreeParams { nodes: 60, alphabet: 3, ..Default::default() },
        );
        for (ui, ri) in motion_candidates(&prog) {
            if ri != ui + 1 {
                continue;
            }
            let Stmt::Update(u) = &prog.stmts[ui] else { unreachable!() };
            let Stmt::Read(r) = &prog.stmts[ri] else { unreachable!() };
            if detect::independent(r, u, Semantics::Tree).unwrap() {
                let mut stmts = prog.stmts.clone();
                stmts.swap(ui, ri);
                let swapped = cxu::gen::program::Program { stmts };
                assert_eq!(observe(&prog, &doc), observe(&swapped, &doc));
                verified += 1;
            }
        }
    }
    println!("\nObservational verification of hoists: {verified} pairs, all identical.");
    println!("Expected shape: node semantics admits more reorderings than tree");
    println!("semantics (node conflicts ⊆ tree conflicts).");
}

fn e10_update_update() {
    println!("\n## E10 — §6 update-update commutativity (value semantics)\n");
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let cases: Vec<(&str, Update, Update)> = vec![
        (
            "identical inserts",
            Update::Insert(Insert::new(parse("a/b"), cxu::tree::text::parse("x").unwrap())),
            Update::Insert(Insert::new(parse("a/b"), cxu::tree::text::parse("x").unwrap())),
        ),
        (
            "insert enables insert",
            Update::Insert(Insert::new(parse("a/b"), cxu::tree::text::parse("c").unwrap())),
            Update::Insert(Insert::new(parse("a/b/c"), cxu::tree::text::parse("q").unwrap())),
        ),
        (
            "delete vs insert inside",
            Update::Delete(Delete::new(parse("a/b/x")).unwrap()),
            Update::Insert(Insert::new(parse("a/b"), cxu::tree::text::parse("x").unwrap())),
        ),
        (
            "disjoint",
            Update::Insert(Insert::new(parse("a/b"), cxu::tree::text::parse("x").unwrap())),
            Update::Delete(Delete::new(parse("a/c")).unwrap()),
        ),
    ];
    println!("| pair | outcome (bound 5 nodes) |");
    println!("|---|---|");
    for (name, u1, u2) in cases {
        let out = update_update::find_noncommuting_witness(&u1, &u2, Default::default());
        let verdict = match out {
            update_update::Outcome::Conflict(w) => {
                format!("conflict (witness {} nodes)", w.live_count())
            }
            update_update::Outcome::NoConflictWithin(n) => format!("commute (≤ {n} nodes)"),
            update_update::Outcome::BudgetExceeded(_) => "undecided".into(),
        };
        println!("| {name} | {verdict} |");
    }
    println!("\nExpected: identical inserts commute (§6's requirement); enabling");
    println!("and delete-inside pairs conflict; disjoint pairs commute.");
}

fn e11_schema() {
    println!("\n## E11 — §6 schema-aware refinement\n");
    use cxu::schema::{ChildSpec, Dtd, SchemaSearchOutcome};
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let dtd = Dtd::new("inventory")
        .element("inventory", vec![ChildSpec::star("book")])
        .element(
            "book",
            vec![
                ChildSpec::one("title"),
                ChildSpec::optional("quantity"),
                ChildSpec::optional("restock"),
            ],
        );
    let cases = [
        ("read inv//restock vs insert under book/promo", "inventory//restock", "inventory/book/promo"),
        ("read inv//restock vs insert under book", "inventory//restock", "inventory/book"),
    ];
    println!("| pair | over all trees | over conforming trees |");
    println!("|---|---|---|");
    for (name, r_src, i_src) in cases {
        let r = Read::new(parse(r_src));
        let u = Update::Insert(Insert::new(
            parse(i_src),
            cxu::tree::text::parse("restock").unwrap(),
        ));
        let unconstrained = detect::read_update_conflict(&r, &u, Semantics::Node).unwrap();
        let constrained = match cxu::schema::find_witness_conforming(
            &r, &u, Semantics::Node, &dtd, 7, 200_000,
        ) {
            SchemaSearchOutcome::Conflict(_) => "conflict",
            SchemaSearchOutcome::NoConflictWithin(_) => "independent",
            SchemaSearchOutcome::BudgetExceeded => "undecided",
            SchemaSearchOutcome::DeadlineExceeded => "timed out",
        };
        println!(
            "| {name} | {} | {constrained} |",
            if unconstrained { "conflict" } else { "independent" }
        );
    }
    println!("\nExpected: the schema kills the <promo> conflict, keeps the real one.");
}

fn e10b_matcher_ablation() {
    println!("\n## E10b — matching ablation: all-prefixes DP vs per-edge NFA\n");
    println!("| |R| | prefix DP | per-edge NFA |");
    println!("|---|---|---|");
    for n in [8usize, 32, 128, 512] {
        let u = sized_linear_pattern(n, 1);
        let r = sized_linear_pattern(n, 0);
        let t_dp = time(5, || {
            let pm = matching::PrefixMatcher::new(&u, &r);
            let _ = pm.weak(pm.read_len());
        });
        let t_nfa = time(3, || {
            let k = matching::spine_nodes(&r).len();
            for j in 1..=k {
                let prefix = matching::read_prefix(&r, j);
                let _ = matching::match_weak(&u, &prefix);
            }
        });
        println!("| {n} | {} | {} |", fmt_dur(t_dp), fmt_dur(t_nfa));
    }
    println!("\nExpected shape: DP ~one pass (quadratic total); per-edge ~cubic.");
}

fn e12_construct() {
    println!("\n## E12 — constructive witnesses (Lemmas 3/6, If-directions)\n");
    use cxu::core::construct;
    println!("| |R| = |U| | detect | construct + verify | witness size |");
    println!("|---|---|---|---|");
    for n in [8usize, 32, 128, 512] {
        let (r, i) = sized_conflicting_insert_instance(n);
        let t_detect = time(9, || {
            let _ = detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap();
        });
        let mut size = String::from("—");
        let t_construct = time(5, || {
            if let Some(w) = construct::construct_insert_witness(&r, &i) {
                size = w.live_count().to_string();
            }
        });
        println!(
            "| {n} | {} | {} | {size} |",
            fmt_dur(t_detect),
            fmt_dur(t_construct)
        );
    }
    println!("\nExpected shape: construction stays polynomial; every returned");
    println!("witness is re-verified with the Lemma 1 checker before return.");
}

fn e13_minimization() {
    println!("\n## E13 — pattern minimization as preprocessing (baseline [2])\n");
    use cxu::pattern::minimize::minimize;
    // Random patterns with deliberately duplicated branches.
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    let mut cases = 0usize;
    for seed in 0..40u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = cxu::gen::patterns::random_pattern(
            &mut rng,
            &cxu::gen::patterns::PatternParams {
                nodes: 4,
                alphabet: 2,
                branch_rate: 0.5,
                wildcard_rate: 0.1,
                ..Default::default()
            },
        );
        // Duplicate one branch to inject redundancy.
        let mut p = base.clone();
        let spine = p.path(p.root(), p.output()).unwrap();
        let branch = p.node_ids().find(|n| !spine.contains(n));
        if let Some(b) = branch {
            let sub = p.subpattern(b);
            let (parent, axis) = p.parent(b).unwrap();
            p.graft(parent, axis, &sub);
        }
        let m = minimize(&p, 1 << 14);
        total_before += p.len();
        total_after += m.len();
        cases += 1;
    }
    println!("| metric | value |");
    println!("|---|---|");
    println!("| patterns | {cases} (random, one branch duplicated) |");
    println!(
        "| mean size before → after | {:.1} → {:.1} nodes |",
        total_before as f64 / cases as f64,
        total_after as f64 / cases as f64
    );
    // Effect on the NP-side search: Lemma 11 bound shrinks with |U|.
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    let r = Read::new(parse("s0[s1][s2]/s3"));
    let fat = parse("s0[s1][s1][s1[.//s1]]/s2");
    let slim = minimize(&fat, 1 << 14);
    let mk = |pat: &Pattern| {
        Update::Insert(Insert::new(pat.clone(), cxu::tree::text::parse("s3").unwrap()))
    };
    println!(
        "| Lemma 11 bound, redundant update | {} |",
        cxu::core::brute::lemma11_bound(&r, &mk(&fat))
    );
    println!(
        "| Lemma 11 bound, minimized update ({} → {} nodes) | {} |",
        fat.len(),
        slim.len(),
        cxu::core::brute::lemma11_bound(&r, &mk(&slim))
    );
    println!("\nExpected shape: injected redundancy removed; smaller update");
    println!("patterns shrink the exhaustive-search bound proportionally.");
}

fn e14_incremental() {
    println!("\n## E14 — incremental read maintenance vs full re-evaluation\n");
    use cxu::core::incremental::IncrementalRead;
    let parse = |s: &str| cxu::pattern::xpath::parse(s).unwrap();
    println!("| |t| | full re-eval | incremental maintenance |");
    println!("|---|---|---|");
    for n in [1_000usize, 10_000, 100_000] {
        let base = sized_document(n, 21);
        let read = Read::new(parse("s0//s1/s2"));
        let ins = Insert::new(parse("s0/s1"), cxu::tree::text::parse("s2").unwrap());
        // Full path: evaluate from scratch on the updated document.
        let updated = {
            let mut t = base.clone();
            ins.apply(&mut t);
            t
        };
        let t_full = time(5, || {
            std::hint::black_box(read.eval(&updated).len());
        });
        // Incremental path: the update is applied either way (finding its
        // points is the update's own cost); time only the maintenance of
        // the cached read result.
        let t_maintain = {
            let mut samples = Vec::new();
            for _ in 0..5 {
                let mut t = base.clone();
                let mut inc = IncrementalRead::new(read.clone(), &t).unwrap();
                let pairs = ins.apply_indexed(&mut t);
                let t0 = std::time::Instant::now();
                inc.note_insert(&t, &pairs);
                samples.push(t0.elapsed());
                std::hint::black_box(inc.result().len());
            }
            samples.sort_unstable();
            samples[samples.len() / 2]
        };
        println!("| {n} | {} | {} |", fmt_dur(t_full), fmt_dur(t_maintain));
    }
    println!("\nExpected shape: full re-evaluation grows with |t|; incremental");
    println!("maintenance is proportional to the update (paths + copies), not |t|.");
}

fn e15_program_analysis() {
    println!("\n## E15 — whole-program analysis (§1 compiler, assembled)\n");
    use cxu::gen::analysis::{conflict_matrix, cse_pairs, eliminate_common_reads, hoistable};
    use cxu::gen::program::{random_program, ProgramParams};
    let mut pairs = 0usize;
    let mut indep = 0usize;
    let mut hoists = 0usize;
    let mut cse = 0usize;
    let mut eliminated = 0usize;
    let programs = 60usize;
    for seed in 0..programs as u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xe15);
        let prog = random_program(&mut rng, &ProgramParams::default());
        let m = conflict_matrix(&prog, Semantics::Tree);
        pairs += m.len();
        indep += m.iter().filter(|v| v.independent).count();
        hoists += hoistable(&prog).len();
        cse += cse_pairs(&prog).len();
        eliminated += eliminate_common_reads(&prog).1;
    }
    println!("| metric (over {programs} random 10-stmt programs) | value |");
    println!("|---|---|");
    println!("| update→read pairs | {pairs} |");
    println!(
        "| provably independent (tree semantics) | {indep} ({:.0}%) |",
        100.0 * indep as f64 / pairs.max(1) as f64
    );
    println!("| hoistable reads (adjacent) | {hoists} |");
    println!("| CSE-reusable read pairs | {cse} |");
    println!("| reads eliminated by CSE | {eliminated} |");
    println!("\nExpected shape: a useful fraction of real programs is provably");
    println!("reorderable/reusable — the paper's motivation quantified.");
}

fn main() {
    println!("# Conflicting XML Updates — experiment report");
    println!("\n(Each section regenerates one table of EXPERIMENTS.md; shapes,");
    println!("not absolute numbers, are the reproduction target.)");
    e3_e4_linear_scaling();
    e4_crossover();
    e5_reduction();
    e6_witness_minimization();
    e7_witness_check();
    e8_eval();
    e9_optimizer();
    e10_update_update();
    e10b_matcher_ablation();
    e12_construct();
    e13_minimization();
    e14_incremental();
    e15_program_analysis();
    e11_schema();
    println!("\nDone.");
}
