//! Shared instance builders for the benchmark harness and the
//! `experiments` report binary. Everything is deterministic (seeded), so
//! criterion runs and report runs measure the same instances.

use cxu::gen::patterns::{random_pattern, PatternParams};
use cxu::gen::trees::{random_tree, TreeParams};
use cxu::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A deterministic linear pattern of exactly `n` nodes: labels cycle
/// through a small alphabet, every third edge is a descendant edge, every
/// fifth node a wildcard. Shapes are fixed so scaling curves measure size,
/// not shape noise.
pub fn sized_linear_pattern(n: usize, salt: u64) -> Pattern {
    let lbl = |i: usize| -> Option<Symbol> {
        if (i + salt as usize) % 5 == 4 {
            None
        } else {
            Some(Symbol::intern(&format!("s{}", (i + salt as usize) % 4)))
        }
    };
    let mut p = Pattern::new(lbl(0));
    let mut cur = p.root();
    for i in 1..n.max(1) {
        let axis = if (i + salt as usize) % 3 == 2 {
            Axis::Descendant
        } else {
            Axis::Child
        };
        cur = p.add_child(cur, axis, lbl(i));
    }
    p.set_output(cur);
    p
}

/// A read/insert pair of the given pattern size (both linear).
pub fn sized_insert_instance(n: usize) -> (Read, Insert) {
    let r = Read::new(sized_linear_pattern(n, 0));
    let x = cxu::tree::text::parse("s1(s2 s3)").unwrap();
    let i = Insert::new(sized_linear_pattern(n, 1), x);
    (r, i)
}

/// A read/delete pair of the given pattern size (both linear).
pub fn sized_delete_instance(n: usize) -> (Read, Delete) {
    let r = Read::new(sized_linear_pattern(n, 0));
    let d = Delete::new(sized_linear_pattern(n.max(2), 1))
        .expect("sized patterns of ≥2 nodes have non-root output");
    (r, d)
}

/// A read/insert pair of size `n` that is **guaranteed to conflict**:
/// the insert's pattern is the read's spine minus its last node, and `X`
/// is a model of that last node — the §1 situation at scale.
pub fn sized_conflicting_insert_instance(n: usize) -> (Read, Insert) {
    let read_pat = sized_linear_pattern(n.max(2), 0);
    let spine: Vec<_> = read_pat
        .path(read_pat.root(), read_pat.output())
        .expect("linear");
    let ins_pat = read_pat
        .seq(spine[0], spine[spine.len() - 2])
        .expect("prefix is a path");
    let x = read_pat
        .subpattern(*spine.last().expect("nonempty"))
        .model_fresh(&[]);
    (Read::new(read_pat), Insert::new(ins_pat, x))
}

/// A random document of `n` nodes over the same `s0..s3` alphabet the
/// sized patterns use, so evaluations actually match.
pub fn sized_document(n: usize, seed: u64) -> Tree {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_tree(
        &mut rng,
        &TreeParams {
            nodes: n,
            labels: (0..4).map(|i| Symbol::intern(&format!("s{i}"))).collect(),
            deep_bias: 0.35,
            ..TreeParams::default()
        },
    )
}

/// A random branching pattern of `n` nodes over the shared alphabet.
pub fn sized_branching_pattern(n: usize, seed: u64) -> Pattern {
    let mut rng = SmallRng::seed_from_u64(seed);
    random_pattern(
        &mut rng,
        &PatternParams {
            nodes: n,
            labels: (0..4).map(|i| Symbol::intern(&format!("s{i}"))).collect(),
            branch_rate: 0.4,
            wildcard_rate: 0.15,
            descendant_rate: 0.3,
            ..PatternParams::default()
        },
    )
}

/// A pattern with exactly `k` descendant edges and the rest child edges —
/// the scaling knob of the exact containment procedure (its canonical
/// model count is `(w+2)^k`).
pub fn pattern_with_desc_edges(total_nodes: usize, k: usize) -> Pattern {
    let mut p = Pattern::new(Some(Symbol::intern("c0")));
    let mut cur = p.root();
    for i in 1..total_nodes {
        let axis = if i <= k { Axis::Descendant } else { Axis::Child };
        cur = p.add_child(cur, axis, Some(Symbol::intern(&format!("c{}", i % 3))));
    }
    p.set_output(cur);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_patterns_have_exact_size() {
        for n in [1, 2, 10, 100] {
            assert_eq!(sized_linear_pattern(n, 0).len(), n);
            assert!(sized_linear_pattern(n, 0).is_linear());
        }
    }

    #[test]
    fn instances_wellformed() {
        let (r, i) = sized_insert_instance(12);
        assert!(r.pattern().is_linear());
        assert_eq!(i.pattern().len(), 12);
        let (_, d) = sized_delete_instance(12);
        assert_ne!(d.pattern().output(), d.pattern().root());
    }

    #[test]
    fn conflicting_instance_conflicts() {
        use cxu::detect;
        use cxu::prelude::Semantics;
        for n in [2usize, 8, 33] {
            let (r, i) = sized_conflicting_insert_instance(n);
            assert!(
                detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap(),
                "size {n}"
            );
        }
    }

    #[test]
    fn desc_edge_count() {
        let p = pattern_with_desc_edges(8, 3);
        let descs = p
            .node_ids()
            .filter(|&n| p.axis(n) == Some(Axis::Descendant))
            .count();
        assert_eq!(descs, 3);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn documents_match_pattern_alphabet() {
        let t = sized_document(100, 1);
        let labels: Vec<&str> = t.alphabet().iter().map(|s| s.as_str()).collect();
        assert!(labels.iter().all(|l| l.starts_with('s')));
    }
}
