//! Microbench for `pattern::eval` scratch reuse (PR 9 satellite).
//!
//! Runs `eval` and `matches` in a tight loop over a mid-sized tree and a
//! mix of linear/branching patterns — the shape of the hot loop inside
//! the pairwise detectors — and reports ns/op. Compare release-mode runs
//! before and after the scratch-buffer change:
//!
//! ```text
//! cargo run --release -p cxu-pattern --example eval_churn
//! ```

use cxu_pattern::{eval, xpath, Pattern};
use cxu_tree::{text, Tree};
use std::time::Instant;

fn build_tree(nodes: usize) -> Tree {
    // Deterministic mixed-shape tree: l0(l1(l2(l0 ...)) l1 ...).
    let mut t = Tree::new("l0");
    let mut spine = t.root();
    let mut ids = vec![t.root()];
    for i in 1..nodes {
        let label = format!("l{}", i % 5);
        if i % 3 == 0 {
            spine = t.build_child(spine, label.as_str());
            ids.push(spine);
        } else {
            let at = ids[(i * 7919) % ids.len()];
            ids.push(t.build_child(at, label.as_str()));
        }
    }
    t
}

fn main() {
    let t = build_tree(2000);
    let pats: Vec<Pattern> = [
        "l0//l4",
        "l0/l1/l2",
        "l0[l1]//l3",
        "l0[l1/l2][l3]//l4",
        "l0//*",
        "l0/*[l2]/l0",
    ]
    .iter()
    .map(|s| xpath::parse(s).unwrap())
    .collect();

    // Warmup + sanity.
    let mut hits = 0usize;
    for p in &pats {
        hits += eval::eval(p, &t).len();
    }
    let _ = text::parse("a").unwrap();

    const ITERS: usize = 2000;
    let t0 = Instant::now();
    let mut total = 0usize;
    for _ in 0..ITERS {
        for p in &pats {
            total += eval::eval(p, &t).len();
            total += usize::from(eval::matches(p, &t));
        }
    }
    let dt = t0.elapsed();
    let ops = ITERS * pats.len() * 2;
    println!(
        "tree=2000 nodes, {} patterns, {} ops in {:?} ({} ns/op, warmup hits {}, total {})",
        pats.len(),
        ops,
        dt,
        dt.as_nanos() as usize / ops,
        hits,
        total
    );
}
