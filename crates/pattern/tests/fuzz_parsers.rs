//! Robustness: the parsers must never panic, and must either produce a
//! well-formed pattern or a positioned error, on arbitrary input.

// Gated: needs the external `proptest` crate (see the workspace
// Cargo.toml note on hermetic builds).
#![cfg(feature = "proptest")]

use cxu_pattern::xpath;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode strings: parse returns, never panics.
    #[test]
    fn xpath_parse_total(s in "\\PC*") {
        let _ = xpath::parse(&s);
    }

    /// Strings over the grammar's own alphabet stress the interesting
    /// paths; whenever parsing succeeds, the result is internally
    /// consistent and re-renderable.
    #[test]
    fn xpath_parse_grammar_soup(s in "[a-c/*\\[\\]. ]{0,40}") {
        if let Ok(p) = xpath::parse(&s) {
            #[allow(clippy::len_zero)] // Pattern::is_empty is trivially false; ≥1 is the invariant
            { prop_assert!(p.len() >= 1); }
            // Output is reachable from the root.
            prop_assert!(p.path(p.root(), p.output()).is_ok());
            // Rendering round-trips.
            let rendered = xpath::to_xpath(&p);
            let q = xpath::parse(&rendered).expect("rendered form parses");
            prop_assert!(p.structurally_eq(&q), "{s:?} → {rendered}");
        }
    }

    /// Error positions are within the input.
    #[test]
    fn xpath_errors_positioned(s in "[a-c/*\\[\\]()%&. ]{0,30}") {
        if let Err(e) = xpath::parse(&s) {
            prop_assert!(e.at <= s.len());
        }
    }
}
