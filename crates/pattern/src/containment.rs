//! Tree-pattern containment `p ⊆ p'` (Definition 11) — the problem the
//! paper's NP-hardness reductions (Theorems 4 and 6) start from.
//!
//! `p ⊆ p'` iff every tree with an embedding of `p` also has an embedding
//! of `p'` (a *boolean* notion: result sets are not compared). Two
//! deciders are provided:
//!
//! * [`homomorphism`] — the polynomial-time homomorphism test. Sound
//!   (a homomorphism implies containment) but incomplete for
//!   `P^{//,[],*}`, as Miklau & Suciu showed.
//! * [`contains`] — the exact, exponential canonical-model procedure of
//!   Miklau & Suciu: `p ⊆ p'` iff `p'` matches every *canonical model* of
//!   `p`, obtained by replacing each descendant edge of `p` with a chain
//!   of `j` fresh `z`-labeled nodes for every `j ∈ {0, …, w+1}`
//!   (`w` = `STAR-LENGTH(p')`) and relabeling `*`-nodes to `z`. There are
//!   `(w+2)^k` models for `k` descendant edges.
//!
//! Both treat patterns as boolean filters anchored at the tree root;
//! output nodes are irrelevant here.

use crate::{eval, Axis, PNodeId, Pattern};
use cxu_runtime::{Deadline, DeadlineExceeded};
use cxu_tree::{Symbol, Tree};

/// Is there a *homomorphism* from `sup` into `sub`? (Pattern-to-pattern
/// map: root→root, labels preserved where `sup` is labeled, child edges to
/// child edges, descendant edges to paths of length ≥ 1.)
///
/// If one exists, `sub ⊆ sup` (sound). The converse fails in general for
/// `P^{//,[],*}` — see [`contains`] for the exact test.
pub fn homomorphism(sub: &Pattern, sup: &Pattern) -> bool {
    // h[n'][n] = the subpattern of `sup` rooted at n' maps into `sub` with
    // n' ↦ n.
    let mut h = vec![vec![false; sub.len()]; sup.len()];

    // For descendant edges we need "exists a proper descendant d of n with
    // h[c'][d]". Precompute descendant lists per sub node.
    let sub_nodes: Vec<PNodeId> = sub.node_ids().collect();

    for n_sup in sup.postorder() {
        for &n_sub in &sub_nodes {
            // Label condition: a labeled sup node must land on the same
            // label; a * sup node lands anywhere.
            let label_ok = match sup.label(n_sup) {
                Some(required) => sub.label(n_sub) == Some(required),
                None => true,
            };
            if !label_ok {
                continue;
            }
            let mut ok = true;
            for &c_sup in sup.children(n_sup) {
                let found = match sup.axis(c_sup).expect("child axis") {
                    Axis::Child => sub.children(n_sub).iter().any(|&c_sub| {
                        sub.axis(c_sub) == Some(Axis::Child) && h[c_sup.index()][c_sub.index()]
                    }),
                    Axis::Descendant => {
                        // Any proper descendant of n_sub, via any edges.
                        descendants(sub, n_sub)
                            .into_iter()
                            .any(|d| h[c_sup.index()][d.index()])
                    }
                };
                if !found {
                    ok = false;
                    break;
                }
            }
            h[n_sup.index()][n_sub.index()] = ok;
        }
    }
    h[sup.root().index()][sub.root().index()]
}

fn descendants(p: &Pattern, n: PNodeId) -> Vec<PNodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<PNodeId> = p.children(n).to_vec();
    while let Some(x) = stack.pop() {
        out.push(x);
        stack.extend(p.children(x).iter().copied());
    }
    out
}

/// The canonical models of `p` for parameter `w` (the container's
/// star-length): every way of replacing each descendant edge with a chain
/// of `j ∈ {0, …, w+1}` fresh `z`-nodes, with `*`-nodes relabeled to `z`.
///
/// `z` is chosen fresh w.r.t. `Σ_p ∪ avoid`. The iterator yields
/// `(w+2)^k` trees for `k` descendant edges — bound your inputs.
pub fn canonical_models<'p>(p: &'p Pattern, w: usize, avoid: &[Symbol]) -> CanonicalModels<'p> {
    let mut avoid_all = p.alphabet();
    avoid_all.extend_from_slice(avoid);
    let z = Symbol::fresh("z", &avoid_all);
    let desc_edges: Vec<PNodeId> = p
        .node_ids()
        .filter(|&n| p.axis(n) == Some(Axis::Descendant))
        .collect();
    CanonicalModels {
        p,
        z,
        desc_edges,
        choice_bound: w + 2,
        next: Some(Vec::new()),
    }
}

/// Iterator over canonical models; see [`canonical_models`].
pub struct CanonicalModels<'p> {
    p: &'p Pattern,
    z: Symbol,
    /// Nodes whose incoming edge is a descendant edge.
    desc_edges: Vec<PNodeId>,
    /// Each edge's chain length ranges over `0..choice_bound`.
    choice_bound: usize,
    /// Odometer state; `None` when exhausted.
    next: Option<Vec<usize>>,
}

impl CanonicalModels<'_> {
    /// Total number of models this iterator yields.
    pub fn total(&self) -> u128 {
        (self.choice_bound as u128).pow(self.desc_edges.len() as u32)
    }

    fn build(&self, lens: &[usize]) -> Tree {
        let p = self.p;
        let label = |n: PNodeId| p.label(n).unwrap_or(self.z);
        let mut t = Tree::new(label(p.root()));
        let mut stack = vec![(p.root(), t.root())];
        while let Some((src, dst)) = stack.pop() {
            for &c in p.children(src) {
                let mut attach = dst;
                if p.axis(c) == Some(Axis::Descendant) {
                    let slot = self
                        .desc_edges
                        .iter()
                        .position(|&e| e == c)
                        .expect("descendant edge indexed");
                    // `lens` may be shorter than desc_edges only before the
                    // odometer is initialized; `next()` always passes a
                    // complete vector.
                    for _ in 0..lens[slot] {
                        attach = t.build_child(attach, self.z);
                    }
                }
                let copy = t.build_child(attach, label(c));
                stack.push((c, copy));
            }
        }
        t
    }
}

impl Iterator for CanonicalModels<'_> {
    type Item = Tree;

    fn next(&mut self) -> Option<Tree> {
        let state = self.next.take()?;
        let lens: Vec<usize> = if state.len() == self.desc_edges.len() {
            state
        } else {
            vec![0; self.desc_edges.len()]
        };
        let tree = self.build(&lens);
        // Advance the odometer.
        let mut lens = lens;
        let mut i = 0;
        loop {
            if i == lens.len() {
                self.next = None;
                break;
            }
            lens[i] += 1;
            if lens[i] < self.choice_bound {
                self.next = Some(lens);
                break;
            }
            lens[i] = 0;
            i += 1;
        }
        Some(tree)
    }
}

/// Exact containment `p ⊆ p'` by the canonical-model procedure, with a
/// budget on the number of models examined. Returns `None` if the budget
/// is exceeded (the instance is too large for the exact test).
pub fn contains_within(p: &Pattern, p_prime: &Pattern, max_models: u128) -> Option<bool> {
    contains_within_deadline(p, p_prime, max_models, &Deadline::never())
        .expect("unbounded deadline never expires")
}

/// [`contains_within`] with a cooperative deadline, polled once per
/// canonical model. `Err` means the deadline expired (or the cancel
/// token fired) before the sweep finished.
pub fn contains_within_deadline(
    p: &Pattern,
    p_prime: &Pattern,
    max_models: u128,
    deadline: &Deadline,
) -> Result<Option<bool>, DeadlineExceeded> {
    // Fast path: a homomorphism proves containment outright.
    if homomorphism(p, p_prime) {
        return Ok(Some(true));
    }
    let w = p_prime.star_length();
    let models = canonical_models(p, w, &p_prime.alphabet());
    if models.total() > max_models {
        return Ok(None);
    }
    for m in models {
        deadline.check()?;
        debug_assert!(eval::matches(p, &m), "p embeds into each of its models");
        if !eval::matches(p_prime, &m) {
            return Ok(Some(false));
        }
    }
    Ok(Some(true))
}

/// Exact containment `p ⊆ p'`. Exponential in the number of descendant
/// edges of `p`; panics if more than ~2^24 canonical models would be
/// needed (use [`contains_within`] to handle that case gracefully).
pub fn contains(p: &Pattern, p_prime: &Pattern) -> bool {
    contains_within(p, p_prime, 1 << 24)
        .expect("containment instance exceeds the canonical-model budget")
}

/// Like the [`CanonicalModels`] iterator, but each model comes with the
/// *canonical embedding*: for every pattern node (by arena index) the
/// tree node it maps to. Needed by result-containment checks, which must
/// know where the output node lands in each model.
pub fn canonical_models_with_map(
    p: &Pattern,
    w: usize,
    avoid: &[Symbol],
) -> Vec<(Tree, Vec<cxu_tree::NodeId>)> {
    let mut avoid_all = p.alphabet();
    avoid_all.extend_from_slice(avoid);
    let z = Symbol::fresh("z", &avoid_all);
    let desc_edges: Vec<PNodeId> = p
        .node_ids()
        .filter(|&n| p.axis(n) == Some(Axis::Descendant))
        .collect();
    let bound = w + 2;

    let mut out = Vec::new();
    let mut lens = vec![0usize; desc_edges.len()];
    loop {
        // Build one model, recording the image of every pattern node.
        let label = |n: PNodeId| p.label(n).unwrap_or(z);
        let mut t = Tree::new(label(p.root()));
        let mut map = vec![t.root(); p.len()];
        let mut stack = vec![(p.root(), t.root())];
        while let Some((src, dst)) = stack.pop() {
            for &c in p.children(src) {
                let mut attach = dst;
                if p.axis(c) == Some(Axis::Descendant) {
                    let slot = desc_edges.iter().position(|&e| e == c).expect("indexed");
                    for _ in 0..lens[slot] {
                        attach = t.build_child(attach, z);
                    }
                }
                let copy = t.build_child(attach, label(c));
                map[c.index()] = copy;
                stack.push((c, copy));
            }
        }
        out.push((t, map));

        // Odometer.
        let mut i = 0;
        loop {
            if i == lens.len() {
                return out;
            }
            lens[i] += 1;
            if lens[i] < bound {
                break;
            }
            lens[i] = 0;
            i += 1;
        }
    }
}

/// Result containment `p ⊑_res q`: is `⟦p⟧(t) ⊆ ⟦q⟧(t)` for **every**
/// tree `t`? (Stronger than Definition 11's boolean containment: output
/// nodes matter.)
///
/// Decision procedure: the canonical-model argument relativized to the
/// output — `p ⊑_res q` iff in every canonical model `W` of `p` (chain
/// extensions up to `STAR-LENGTH(q)+1`), the canonical image of `𝒪(p)`
/// is in `⟦q⟧(W)`. "Only if" is immediate (each `W` is a tree and the
/// canonical embedding puts the image in `⟦p⟧(W)`); "if" follows by the
/// same reparenting argument as the boolean Miklau–Suciu theorem, since
/// Lemma 9-style chain collapses preserve output images. This procedure
/// is additionally cross-validated against brute-force evaluation-set
/// comparison in the test suite.
///
/// Returns `None` if more than `max_models` canonical models would be
/// needed.
pub fn result_contains(p: &Pattern, q: &Pattern, max_models: u128) -> Option<bool> {
    let w = q.star_length();
    {
        let count = canonical_models(p, w, &q.alphabet()).total();
        if count > max_models {
            return None;
        }
    }
    for (model, map) in canonical_models_with_map(p, w, &q.alphabet()) {
        let target = map[p.output().index()];
        if !eval::eval(q, &model).contains(&target) {
            return Some(false);
        }
    }
    Some(true)
}

/// Result equivalence: `⟦p⟧(t) = ⟦q⟧(t)` for every tree.
pub fn result_equivalent(p: &Pattern, q: &Pattern, max_models: u128) -> Option<bool> {
    Some(result_contains(p, q, max_models)? && result_contains(q, p, max_models)?)
}

/// Searches exhaustively for a tree of at most `max_nodes` nodes that
/// refutes `p ⊆ p'` (matches `p` but not `p'`). The alphabet is
/// `Σ_p ∪ Σ_{p'}` plus one fresh symbol. Testing oracle — exponential.
pub fn find_counterexample(p: &Pattern, p_prime: &Pattern, max_nodes: usize) -> Option<Tree> {
    let mut alpha = p.alphabet();
    alpha.extend(p_prime.alphabet());
    alpha.sort_unstable();
    alpha.dedup();
    alpha.push(Symbol::fresh("z", &alpha));
    cxu_tree::enumerate::enumerate_trees(&alpha, max_nodes)
        .into_iter()
        .find(|t| eval::matches(p, t) && !eval::matches(p_prime, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse;

    fn pat(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    #[test]
    fn reflexive() {
        for s in ["a", "a/b//c", "a[.//c]/b[d]", "*//x"] {
            let p = pat(s);
            assert!(homomorphism(&p, &p), "{s} hom-contains itself");
            assert!(contains(&p, &p), "{s} contains itself");
        }
    }

    #[test]
    fn child_contained_in_descendant() {
        // a/b ⊆ a//b, not vice versa.
        let pc = pat("a/b");
        let pd = pat("a//b");
        assert!(contains(&pc, &pd));
        assert!(!contains(&pd, &pc));
        assert!(homomorphism(&pc, &pd));
        assert!(!homomorphism(&pd, &pc));
    }

    #[test]
    fn label_contained_in_star() {
        let pa = pat("a/b");
        let ps = pat("a/*");
        assert!(contains(&pa, &ps));
        assert!(!contains(&ps, &pa));
    }

    #[test]
    fn branch_dropping() {
        // a[b][c] ⊆ a[b]
        let both = pat("a[b][c]");
        let one = pat("a[b]");
        assert!(contains(&both, &one));
        assert!(!contains(&one, &both));
    }

    #[test]
    fn incomparable() {
        let p = pat("a/b");
        let q = pat("a/c");
        assert!(!contains(&p, &q));
        assert!(!contains(&q, &p));
    }

    #[test]
    fn descendant_chain_lengths() {
        // a/*/b ⊆ a//b; a//b ⊄ a/*/b (witness: a(b)).
        let two = pat("a/*/b");
        let desc = pat("a//b");
        assert!(contains(&two, &desc));
        assert!(!contains(&desc, &two));
        let cx = find_counterexample(&desc, &two, 3).expect("a(b) refutes");
        assert!(eval::matches(&desc, &cx) && !eval::matches(&two, &cx));
    }

    #[test]
    fn miklau_suciu_incompleteness_example() {
        // The classic example where containment holds but no homomorphism
        // exists (Miklau–Suciu §3): p = a[b[c][d]] … variant:
        //   p  = a[.//b[c]][.//b[d]] and p' = a//b — hom exists there, so
        // use the canonical one:
        //   p  = a[b/c][b/d]   p' = a/b[c][d]? (no: not contained)
        // Known witness pair: p ⊆ p' with
        //   p  = a/*/b   and   p' = a[.//*/b]  — hom exists.
        // We use the M&S Figure-5-style pair:
        //   p  = a[b[d]][b[e]]//c? — craft directly:
        //   p  = a/*[b]/*[c]? …
        // Simpler reliable instance (their Proposition 3 example):
        //   p = a[.//b[c/*//d]] and p' = a[.//b[c//d]] — every tree
        // matching p matches p' (c/*//d implies c//d), but the hom test
        // handles it. Instead verify incompleteness *empirically*: find a
        // pair where `contains` = true but `homomorphism` = false.
        //   p  = a[*/b][*/c]  vs  p' = a/*[b]? not contained.
        // Use the standard: p = a//b[c]/d? This is exercised further by
        // the randomized cross-check below; here pin one concrete case:
        //   p  = a[b][*]/c? Keep it simple and well-understood:
        //   p  = a/b/c  and  p' = a//*/c : contained (b is the */c's *),
        // and a homomorphism also exists. The genuinely hom-incomplete
        // cases need star chains:
        let p = pat("a[b/*/*/d][b/*/c][c/*/d]");
        let p2 = pat("a//*[c]/*[d]");
        // Regardless of which way this instance falls, exact and
        // brute-force refutation must agree (checked below); and soundness
        // of hom must hold.
        let exact = contains(&p, &p2);
        if homomorphism(&p, &p2) {
            assert!(exact, "homomorphism must be sound");
        }
        if let Some(w) = find_counterexample(&p, &p2, 6) {
            assert!(!exact, "counterexample {w:?} but exact says contained");
        }
    }

    #[test]
    fn hom_soundness_randomized_structures() {
        // For a grid of small pattern pairs: hom ⇒ exact-contained, and
        // exact-contained ⇒ no small counterexample.
        let pats = [
            "a", "a/b", "a//b", "a/*", "a//*", "a[b]", "a[.//b]", "a/b[c]", "a[b]/c", "a//b/c",
            "a/*/b", "a[b][c]", "a[b/c]", "a//b//c",
        ];
        for s1 in &pats {
            for s2 in &pats {
                let p = pat(s1);
                let q = pat(s2);
                let hom = homomorphism(&p, &q);
                let exact = contains(&p, &q);
                if hom {
                    assert!(exact, "hom but not contained: {s1} ⊆ {s2}");
                }
                if exact {
                    assert!(
                        find_counterexample(&p, &q, 4).is_none(),
                        "contained but counterexample exists: {s1} ⊆ {s2}"
                    );
                } else {
                    // Exact says not contained: some canonical model
                    // refutes; our small search usually finds one too, but
                    // is not guaranteed to within 4 nodes — don't assert.
                }
            }
        }
    }

    #[test]
    fn canonical_model_counts() {
        let p = pat("a//b//c");
        let m = canonical_models(&p, 1, &[]);
        assert_eq!(m.total(), 9); // (1+2)^2
        assert_eq!(m.count(), 9);
    }

    #[test]
    fn canonical_models_all_match_p() {
        let p = pat("a[.//b]/c//d");
        for m in canonical_models(&p, 2, &[]) {
            assert!(eval::matches(&p, &m));
        }
    }

    #[test]
    fn contains_within_budget() {
        let p = pat("a//b//c//d//e");
        // 4 descendant edges; with w = 0 the bound is 2^4 = 16 models.
        let q = pat("a//e");
        assert_eq!(contains_within(&p, &q, 1), Some(true), "hom fast-path");
        let q2 = pat("a/e");
        assert_eq!(contains_within(&p, &q2, 2), None, "budget exceeded");
        assert_eq!(contains_within(&p, &q2, 1000), Some(false));
    }

    #[test]
    fn contains_within_deadline_trips() {
        let p = pat("a//b//c//d//e");
        let q = pat("a/e");
        let dl = Deadline::after(std::time::Duration::ZERO);
        // No homomorphism, so the model sweep runs and the deadline trips.
        assert!(contains_within_deadline(&p, &q, 1000, &dl).is_err());
        // The homomorphism fast-path is PTIME and never degrades.
        let q2 = pat("a//e");
        assert_eq!(contains_within_deadline(&p, &q2, 1000, &dl), Ok(Some(true)));
    }

    #[test]
    fn star_chain_containment() {
        // a//b ⊇ a/*/b needs chain extension ≥ star length to verify.
        let long = pat("a/*/*/*/b");
        let desc = pat("a//b");
        assert!(contains(&long, &desc));
        assert!(!contains(&desc, &long));
    }
}
