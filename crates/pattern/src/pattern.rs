//! Tree patterns: the classes `P^{//,[],*}` and `P^{//,*}` of §2.2.
//!
//! A pattern is a tree over `Σ ∪ {*}` whose edges are partitioned into
//! *child constraints* (`EDGES_/`) and *descendant constraints*
//! (`EDGES_//`), with one distinguished *output node* `𝒪(p)`. We store the
//! incoming axis on each non-root node.

use cxu_tree::{Symbol, Tree};
use std::fmt;

/// Identity of a node within one [`Pattern`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PNodeId(u32);

impl PNodeId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn new(i: usize) -> PNodeId {
        PNodeId(u32::try_from(i).expect("pattern arena overflow"))
    }
}

impl fmt::Debug for PNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The axis of a pattern edge: a child constraint (`/`) or a descendant
/// constraint (`//`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Axis {
    /// `EDGES_/(p)`: the images must be in `CHILD(t)`.
    Child,
    /// `EDGES_//(p)`: the images must be in `DESC(t)` (proper descendant).
    Descendant,
}

#[derive(Clone, Debug)]
struct PNode {
    /// `None` encodes the wildcard `*` (which is not in Σ).
    label: Option<Symbol>,
    parent: Option<(PNodeId, Axis)>,
    children: Vec<PNodeId>,
}

/// Errors from structured pattern operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// `seq(from, to)` requires `from` to be an ancestor-or-self of `to`.
    NotOnAPath,
    /// A deletion pattern must satisfy `𝒪(p) ≠ ROOT(p)` (§3).
    OutputIsRoot,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::NotOnAPath => write!(f, "nodes are not on a root-to-leaf path"),
            PatternError::OutputIsRoot => {
                write!(
                    f,
                    "the output node of a deletion pattern must not be the root"
                )
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A tree pattern `p ∈ P^{//,[],*}` (§2.2): labeled tree over `Σ ∪ {*}`,
/// edges split into child/descendant constraints, one output node.
#[derive(Clone)]
pub struct Pattern {
    nodes: Vec<PNode>,
    root: PNodeId,
    output: PNodeId,
}

impl Pattern {
    /// A one-node pattern; `None` is the wildcard. The single node is both
    /// root and output.
    pub fn new(label: Option<Symbol>) -> Pattern {
        Pattern {
            nodes: vec![PNode {
                label,
                parent: None,
                children: Vec::new(),
            }],
            root: PNodeId(0),
            output: PNodeId(0),
        }
    }

    /// Convenience: a one-node pattern labeled `label`.
    pub fn leaf(label: impl Into<Symbol>) -> Pattern {
        Pattern::new(Some(label.into()))
    }

    /// Convenience: a one-node wildcard pattern.
    pub fn star() -> Pattern {
        Pattern::new(None)
    }

    /// Appends a child with the given incoming axis; returns its id.
    pub fn add_child(&mut self, parent: PNodeId, axis: Axis, label: Option<Symbol>) -> PNodeId {
        let id = PNodeId::new(self.nodes.len());
        self.nodes.push(PNode {
            label,
            parent: Some((parent, axis)),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Root node `ROOT(p)`.
    pub fn root(&self) -> PNodeId {
        self.root
    }

    /// Output node `𝒪(p)`.
    pub fn output(&self) -> PNodeId {
        self.output
    }

    /// Marks `n` as the output node.
    pub fn set_output(&mut self, n: PNodeId) {
        assert!(n.index() < self.nodes.len());
        self.output = n;
    }

    /// Number of nodes, `|p|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the pattern is the single root node.
    pub fn is_empty(&self) -> bool {
        false // a pattern always has at least its root
    }

    /// Label of `n`; `None` is the wildcard `*`.
    pub fn label(&self, n: PNodeId) -> Option<Symbol> {
        self.nodes[n.index()].label
    }

    /// Parent of `n` with the incoming axis; `None` for the root.
    pub fn parent(&self, n: PNodeId) -> Option<(PNodeId, Axis)> {
        self.nodes[n.index()].parent
    }

    /// The incoming axis of `n` (`None` for the root).
    pub fn axis(&self, n: PNodeId) -> Option<Axis> {
        self.nodes[n.index()].parent.map(|(_, a)| a)
    }

    /// Children of `n`.
    pub fn children(&self, n: PNodeId) -> &[PNodeId] {
        &self.nodes[n.index()].children
    }

    /// All node ids in arena order (root first).
    pub fn node_ids(&self) -> impl Iterator<Item = PNodeId> + '_ {
        (0..self.nodes.len()).map(PNodeId::new)
    }

    /// Nodes in a postorder (children before parents).
    pub fn postorder(&self) -> Vec<PNodeId> {
        let mut pre = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            pre.push(n);
            stack.extend(self.children(n).iter().copied());
        }
        pre.reverse();
        pre
    }

    /// Is `a` equal to `b` or an ancestor of `b`?
    pub fn is_ancestor_or_eq(&self, a: PNodeId, b: PNodeId) -> bool {
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            cur = self.parent(n).map(|(p, _)| p);
        }
        false
    }

    /// Is this a *linear pattern* (`P^{//,*}`)? Per §2.2: every node has at
    /// most one outgoing edge and the output node is the leaf.
    pub fn is_linear(&self) -> bool {
        self.node_ids().all(|n| self.children(n).len() <= 1)
            && self.children(self.output).is_empty()
            && {
                // With ≤1 child per node and |p| nodes, the unique leaf is
                // reached by walking down from the root.
                let mut cur = self.root;
                while let Some(&c) = self.children(cur).first() {
                    cur = c;
                }
                cur == self.output
            }
    }

    /// The distinct Σ-symbols used in the pattern — `Σ_p` (excludes `*`).
    pub fn alphabet(&self) -> Vec<Symbol> {
        let mut syms: Vec<Symbol> = self.node_ids().filter_map(|n| self.label(n)).collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    /// `STAR-LENGTH(p)`: the number of nodes in the longest *chain*
    /// (consecutive child edges) in which every node is labeled `*`.
    pub fn star_length(&self) -> usize {
        // f(n) = length of the longest all-* chain starting at n going
        // down through child edges; defined only for *-labeled n.
        let mut best = 0usize;
        let mut f = vec![0usize; self.nodes.len()];
        for n in self.postorder() {
            if self.label(n).is_some() {
                continue;
            }
            let down = self
                .children(n)
                .iter()
                .filter(|&&c| self.axis(c) == Some(Axis::Child) && self.label(c).is_none())
                .map(|&c| f[c.index()])
                .max()
                .unwrap_or(0);
            f[n.index()] = 1 + down;
            best = best.max(f[n.index()]);
        }
        best
    }

    /// The nodes on the path from `from` down to `to`, inclusive.
    /// `Err(NotOnAPath)` if `from` is not an ancestor-or-self of `to`.
    pub fn path(&self, from: PNodeId, to: PNodeId) -> Result<Vec<PNodeId>, PatternError> {
        let mut rev = vec![to];
        let mut cur = to;
        while cur != from {
            match self.parent(cur) {
                Some((p, _)) => {
                    rev.push(p);
                    cur = p;
                }
                None => return Err(PatternError::NotOnAPath),
            }
        }
        rev.reverse();
        Ok(rev)
    }

    /// `SEQ_from^to` (§2.2): the linear pattern consisting of the nodes on
    /// the path from `from` to `to`, with the output at `to`.
    pub fn seq(&self, from: PNodeId, to: PNodeId) -> Result<Pattern, PatternError> {
        let path = self.path(from, to)?;
        let mut out = Pattern::new(self.label(path[0]));
        let mut cur = out.root();
        for &n in &path[1..] {
            let axis = self.axis(n).expect("non-root node on path has an axis");
            cur = out.add_child(cur, axis, self.label(n));
        }
        out.set_output(cur);
        Ok(out)
    }

    /// The *spine* `SEQ_{ROOT(p)}^{𝒪(p)}` — the linear pattern the update
    /// side is reduced to by Lemmas 4 and 8.
    pub fn spine(&self) -> Pattern {
        self.seq(self.root, self.output)
            .expect("output is always reachable from the root")
    }

    /// `SUBPATTERN_n(p)`: the subtree of `p` rooted at `n`, with `n` as
    /// both root and output. The root of the result has no incoming axis.
    pub fn subpattern(&self, n: PNodeId) -> Pattern {
        let mut out = Pattern::new(self.label(n));
        let mut stack = vec![(n, out.root())];
        while let Some((src, dst)) = stack.pop() {
            for &c in self.children(src) {
                let axis = self.axis(c).expect("child has incoming axis");
                let copy = out.add_child(dst, axis, self.label(c));
                stack.push((c, copy));
            }
        }
        out
    }

    /// A *model* `𝕄_p` for the pattern (§2.3): the tree with the same
    /// shape where each `*` is replaced by `star_label` (descendant edges
    /// become plain edges). Every pattern embeds into its model.
    pub fn model(&self, star_label: Symbol) -> Tree {
        let lbl = |n: PNodeId| self.label(n).unwrap_or(star_label);
        let mut t = Tree::new(lbl(self.root));
        let mut stack = vec![(self.root, t.root())];
        while let Some((src, dst)) = stack.pop() {
            for &c in self.children(src) {
                let copy = t.build_child(dst, lbl(c));
                stack.push((c, copy));
            }
        }
        t
    }

    /// A model using a symbol guaranteed fresh w.r.t. this pattern and
    /// `also_avoid`.
    pub fn model_fresh(&self, also_avoid: &[Symbol]) -> Tree {
        let mut avoid = self.alphabet();
        avoid.extend_from_slice(also_avoid);
        self.model(Symbol::fresh("z", &avoid))
    }

    /// Grafts a copy of pattern `other` under `at` with the given incoming
    /// axis for `other`'s root; returns the id of the copied root. The
    /// output marker of `other` is ignored.
    pub fn graft(&mut self, at: PNodeId, axis: Axis, other: &Pattern) -> PNodeId {
        let new_root = self.add_child(at, axis, other.label(other.root()));
        let mut stack = vec![(other.root(), new_root)];
        let mut map_out = new_root;
        while let Some((src, dst)) = stack.pop() {
            if src == other.output() {
                map_out = dst;
            }
            for &c in other.children(src) {
                let a = other.axis(c).expect("child axis");
                let copy = self.add_child(dst, a, other.label(c));
                stack.push((c, copy));
            }
        }
        // Return the image of other's root; stash nothing else. Callers
        // that care about other's output can use `graft_with_output`.
        let _ = map_out;
        new_root
    }

    /// Like [`Pattern::graft`] but also returns the image of `other`'s
    /// output node.
    pub fn graft_with_output(
        &mut self,
        at: PNodeId,
        axis: Axis,
        other: &Pattern,
    ) -> (PNodeId, PNodeId) {
        let new_root = self.add_child(at, axis, other.label(other.root()));
        let mut out_img = new_root;
        let mut stack = vec![(other.root(), new_root)];
        while let Some((src, dst)) = stack.pop() {
            if src == other.output() {
                out_img = dst;
            }
            for &c in other.children(src) {
                let a = other.axis(c).expect("child axis");
                let copy = self.add_child(dst, a, other.label(c));
                stack.push((c, copy));
            }
        }
        (new_root, out_img)
    }

    /// Structural equality of two patterns as *unordered* trees, including
    /// axes, labels, and output position. Used by tests.
    pub fn structurally_eq(&self, other: &Pattern) -> bool {
        fn key(p: &Pattern, n: PNodeId) -> String {
            let mut kids: Vec<String> = p
                .children(n)
                .iter()
                .map(|&c| {
                    let a = match p.axis(c).unwrap() {
                        Axis::Child => "/",
                        Axis::Descendant => "//",
                    };
                    format!("{a}{}", key(p, c))
                })
                .collect();
            kids.sort_unstable();
            let lbl = p
                .label(n)
                .map(|s| s.as_str().to_owned())
                .unwrap_or_else(|| "*".into());
            let mark = if n == p.output() { "!" } else { "" };
            format!("{lbl}{mark}({})", kids.join(","))
        }
        key(self, self.root()) == key(other, other.root())
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern({})", crate::xpath::to_xpath(self))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::xpath::to_xpath(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Option<Symbol> {
        Some(Symbol::intern(s))
    }

    /// a / b // c  (linear), output c
    fn linear_abc() -> (Pattern, PNodeId, PNodeId, PNodeId) {
        let mut p = Pattern::new(sym("a"));
        let a = p.root();
        let b = p.add_child(a, Axis::Child, sym("b"));
        let c = p.add_child(b, Axis::Descendant, sym("c"));
        p.set_output(c);
        (p, a, b, c)
    }

    #[test]
    fn basic_structure() {
        let (p, a, b, c) = linear_abc();
        assert_eq!(p.len(), 3);
        assert_eq!(p.root(), a);
        assert_eq!(p.output(), c);
        assert_eq!(p.axis(b), Some(Axis::Child));
        assert_eq!(p.axis(c), Some(Axis::Descendant));
        assert_eq!(p.axis(a), None);
        assert_eq!(p.parent(c), Some((b, Axis::Descendant)));
    }

    #[test]
    fn linearity() {
        let (p, a, _, _) = linear_abc();
        assert!(p.is_linear());
        let mut q = p.clone();
        q.add_child(a, Axis::Child, sym("d"));
        assert!(!q.is_linear(), "branching breaks linearity");
        // Output not at the leaf also breaks linearity.
        let (mut r, _, b, _) = linear_abc();
        r.set_output(b);
        assert!(!r.is_linear());
    }

    #[test]
    fn single_node_is_linear() {
        assert!(Pattern::star().is_linear());
        assert!(Pattern::leaf("a").is_linear());
    }

    #[test]
    fn star_length_simple() {
        // a / * / * / b : chain of two *'s
        let mut p = Pattern::new(sym("a"));
        let s1 = p.add_child(p.root(), Axis::Child, None);
        let s2 = p.add_child(s1, Axis::Child, None);
        let b = p.add_child(s2, Axis::Child, sym("b"));
        p.set_output(b);
        assert_eq!(p.star_length(), 2);
    }

    #[test]
    fn star_length_broken_by_descendant_edge() {
        // * // * : two stars but not a chain (descendant edge)
        let mut p = Pattern::new(None);
        let s = p.add_child(p.root(), Axis::Descendant, None);
        p.set_output(s);
        assert_eq!(p.star_length(), 1);
    }

    #[test]
    fn star_length_broken_by_labels() {
        let (p, _, _, _) = linear_abc();
        assert_eq!(p.star_length(), 0);
    }

    #[test]
    fn star_length_in_branches() {
        // a[*/*/*]/b — the longest *-chain lives in a predicate
        let mut p = Pattern::new(sym("a"));
        let s1 = p.add_child(p.root(), Axis::Child, None);
        let s2 = p.add_child(s1, Axis::Child, None);
        let _s3 = p.add_child(s2, Axis::Child, None);
        let b = p.add_child(p.root(), Axis::Child, sym("b"));
        p.set_output(b);
        assert_eq!(p.star_length(), 3);
    }

    #[test]
    fn seq_extracts_linear_path() {
        let (p, a, _, c) = linear_abc();
        let s = p.seq(a, c).unwrap();
        assert!(s.is_linear());
        assert_eq!(s.len(), 3);
        assert!(s.structurally_eq(&p));
    }

    #[test]
    fn seq_rejects_non_path() {
        let mut p = Pattern::new(sym("a"));
        let b = p.add_child(p.root(), Axis::Child, sym("b"));
        let c = p.add_child(p.root(), Axis::Child, sym("c"));
        assert!(matches!(p.seq(b, c), Err(PatternError::NotOnAPath)));
    }

    #[test]
    fn spine_of_branching_pattern() {
        // a[x]/b[y]//c with output c: spine is a/b//c.
        let mut p = Pattern::new(sym("a"));
        p.add_child(p.root(), Axis::Child, sym("x"));
        let b = p.add_child(p.root(), Axis::Child, sym("b"));
        p.add_child(b, Axis::Child, sym("y"));
        let c = p.add_child(b, Axis::Descendant, sym("c"));
        p.set_output(c);
        let spine = p.spine();
        let (expect, _, _, _) = linear_abc();
        assert!(spine.structurally_eq(&expect));
    }

    #[test]
    fn subpattern_copies_subtree() {
        let mut p = Pattern::new(sym("a"));
        let b = p.add_child(p.root(), Axis::Child, sym("b"));
        let c = p.add_child(b, Axis::Descendant, sym("c"));
        p.add_child(c, Axis::Child, None);
        p.set_output(c);
        let sub = p.subpattern(b);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.label(sub.root()), sym("b"));
        assert_eq!(sub.output(), sub.root());
    }

    #[test]
    fn model_replaces_stars() {
        let mut p = Pattern::new(sym("a"));
        let s = p.add_child(p.root(), Axis::Descendant, None);
        p.set_output(s);
        let m = p.model(Symbol::intern("zz"));
        assert_eq!(m.live_count(), 2);
        assert_eq!(m.label(m.children(m.root())[0]).as_str(), "zz");
    }

    #[test]
    fn model_fresh_avoids_pattern_alphabet() {
        let p = Pattern::leaf("z");
        let m = p.model_fresh(&[]);
        assert_eq!(m.label(m.root()).as_str(), "z"); // labeled nodes keep labels
        let q = Pattern::star();
        let m2 = q.model_fresh(&[Symbol::intern("z")]);
        assert_ne!(m2.label(m2.root()).as_str(), "z");
    }

    #[test]
    fn alphabet_excludes_star() {
        let mut p = Pattern::new(sym("a"));
        p.add_child(p.root(), Axis::Child, None);
        p.add_child(p.root(), Axis::Descendant, sym("a"));
        let alpha = p.alphabet();
        assert_eq!(alpha.len(), 1);
        assert_eq!(alpha[0].as_str(), "a");
    }

    #[test]
    fn graft_with_output_tracks_output() {
        let (mut p, _, b, _) = linear_abc();
        let (sub_root, sub_out) = {
            let mut q = Pattern::new(sym("x"));
            let y = q.add_child(q.root(), Axis::Child, sym("y"));
            q.set_output(y);
            p.graft_with_output(b, Axis::Descendant, &q)
        };
        assert_eq!(p.label(sub_root), sym("x"));
        assert_eq!(p.label(sub_out), sym("y"));
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn structural_eq_ignores_child_order() {
        let mut p = Pattern::new(sym("a"));
        p.add_child(p.root(), Axis::Child, sym("b"));
        p.add_child(p.root(), Axis::Descendant, sym("c"));
        let mut q = Pattern::new(sym("a"));
        q.add_child(q.root(), Axis::Descendant, sym("c"));
        q.add_child(q.root(), Axis::Child, sym("b"));
        assert!(p.structurally_eq(&q));
    }

    #[test]
    fn structural_eq_sees_output_position() {
        let (p, _, b, _) = linear_abc();
        let mut q = p.clone();
        q.set_output(b);
        assert!(!p.structurally_eq(&q));
    }

    #[test]
    fn postorder_children_first() {
        let (p, a, b, c) = linear_abc();
        let po = p.postorder();
        let pos = |n: PNodeId| po.iter().position(|&x| x == n).unwrap();
        assert!(pos(c) < pos(b));
        assert!(pos(b) < pos(a));
    }
}
