//! Tree-pattern minimization — the paper's cited baseline \[2\]
//! (Amer-Yahia, Cho, Lakshmanan, Srivastava, *Tree pattern query
//! minimization*, VLDB J. 2002) as a preprocessing pass for conflict
//! detection: smaller update patterns mean smaller spines, fewer branch
//! models, and cheaper NP-side searches.
//!
//! The minimizer prunes *redundant branches*: subtrees (never containing
//! the output node) whose removal leaves a result-equivalent pattern.
//! Each removal is justified by an exact
//! [`containment::result_equivalent`] check, so the output is always
//! equivalent to the input; iterating to a fixpoint removes all
//! single-branch redundancy (for the star-free fragment this is the
//! AYCLS notion of minimality; with wildcards global minimality may
//! require joint removals, which we deliberately do not chase).

use crate::{containment, PNodeId, Pattern};

/// Prunes redundant branches of `p` to a fixpoint. `max_models` bounds
/// each underlying canonical-model sweep; if any check would exceed it,
/// the candidate branch is conservatively kept (the result is still
/// equivalent to `p`, just possibly less minimal).
pub fn minimize(p: &Pattern, max_models: u128) -> Pattern {
    let mut cur = p.clone();
    'outer: loop {
        let spine: Vec<PNodeId> = cur
            .path(cur.root(), cur.output())
            .expect("output reachable from root");
        // Candidate removals: any node not on the spine, largest-first so
        // whole redundant branches disappear in one step.
        let mut candidates: Vec<PNodeId> = cur.node_ids().filter(|n| !spine.contains(n)).collect();
        candidates.sort_by_key(|&n| std::cmp::Reverse(subtree_size(&cur, n)));
        for n in candidates {
            let pruned = without_subtree(&cur, n);
            if containment::result_equivalent(&cur, &pruned, max_models) == Some(true) {
                cur = pruned;
                continue 'outer;
            }
        }
        return cur;
    }
}

fn subtree_size(p: &Pattern, n: PNodeId) -> usize {
    1 + p
        .children(n)
        .iter()
        .map(|&c| subtree_size(p, c))
        .sum::<usize>()
}

/// Copies `p` without the subtree rooted at `cut` (which must not be an
/// ancestor-or-self of the output node).
pub fn without_subtree(p: &Pattern, cut: PNodeId) -> Pattern {
    assert!(
        !p.is_ancestor_or_eq(cut, p.output()),
        "cannot prune the output's path"
    );
    let mut out = Pattern::new(p.label(p.root()));
    let mut map: Vec<Option<PNodeId>> = vec![None; p.len()];
    map[p.root().index()] = Some(out.root());
    let mut stack = vec![p.root()];
    while let Some(src) = stack.pop() {
        let dst = map[src.index()].expect("parents copied before children");
        for &c in p.children(src) {
            if c == cut {
                continue;
            }
            let axis = p.axis(c).expect("child axis");
            let copy = out.add_child(dst, axis, p.label(c));
            map[c.index()] = Some(copy);
            stack.push(c);
        }
    }
    out.set_output(map[p.output().index()].expect("output is never pruned"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::xpath::parse;
    use cxu_tree::enumerate::enumerate_trees;
    use cxu_tree::Symbol;

    fn assert_equiv_brute(p: &Pattern, q: &Pattern) {
        // Evaluation sets agree on every small tree.
        let mut alpha = p.alphabet();
        alpha.extend(q.alphabet());
        alpha.sort_unstable();
        alpha.dedup();
        alpha.push(Symbol::fresh("zz", &alpha));
        for t in enumerate_trees(&alpha, 4) {
            assert_eq!(
                eval::eval(p, &t),
                eval::eval(q, &t),
                "{p} vs {q} differ on {t:?}"
            );
        }
    }

    #[test]
    fn duplicate_branch_removed() {
        let p = parse("a[b][b]/c").unwrap();
        let m = minimize(&p, 1 << 16);
        assert_eq!(m.len(), 3, "a[b]/c expected, got {m}");
        assert_equiv_brute(&p, &m);
    }

    #[test]
    fn descendant_branch_subsumed_by_child_branch() {
        // [b] implies [.//b].
        let p = parse("a[b][.//b]/c").unwrap();
        let m = minimize(&p, 1 << 16);
        assert_eq!(m.len(), 3, "{m}");
        assert_equiv_brute(&p, &m);
    }

    #[test]
    fn star_branch_subsumed_by_spine() {
        // a[*]//d: the spine's descendant step already forces a child.
        let p = parse("a[*]//d").unwrap();
        let m = minimize(&p, 1 << 16);
        assert_eq!(m.len(), 2, "{m}");
        assert_equiv_brute(&p, &m);
    }

    #[test]
    fn nested_redundancy() {
        // a[b/c][b] : [b] is subsumed by [b/c].
        let p = parse("a[b/c][b]/d").unwrap();
        let m = minimize(&p, 1 << 16);
        assert_eq!(m.len(), 4, "{m}");
        assert_equiv_brute(&p, &m);
    }

    #[test]
    fn irreducible_patterns_untouched() {
        for src in ["a[b][c]/d", "a[b/c]/d", "a//b", "a[.//x]/y[z]"] {
            let p = parse(src).unwrap();
            let m = minimize(&p, 1 << 16);
            assert_eq!(m.len(), p.len(), "{src} should be minimal, got {m}");
        }
    }

    #[test]
    fn spine_never_pruned() {
        let p = parse("a[b]/b/b").unwrap(); // branch b duplicates a spine step
        let m = minimize(&p, 1 << 16);
        // Branch [b] is implied by the spine's /b: removable.
        assert_eq!(m.len(), 3, "{m}");
        assert_eq!(m.to_string(), "a/b/b");
        assert_equiv_brute(&p, &m);
    }

    #[test]
    fn partial_branch_pruning() {
        // a[b[x][.//x]]/c — inner redundancy within a kept branch.
        let p = parse("a[b[x][.//x]]/c").unwrap();
        let m = minimize(&p, 1 << 16);
        assert_eq!(m.len(), 4, "{m}");
        assert_equiv_brute(&p, &m);
    }

    #[test]
    fn without_subtree_keeps_output() {
        let p = parse("a[b]/c[d]").unwrap();
        let b = p
            .node_ids()
            .find(|&n| p.label(n).map(|s| s.as_str()) == Some("b"))
            .unwrap();
        let q = without_subtree(&p, b);
        assert_eq!(q.len(), 3);
        assert_eq!(q.label(q.output()).unwrap().as_str(), "c");
    }

    #[test]
    #[should_panic(expected = "output")]
    fn without_subtree_rejects_output_path() {
        let p = parse("a/b/c").unwrap();
        let b = p.children(p.root())[0];
        let _ = without_subtree(&p, b);
    }

    #[test]
    fn result_containment_sanity() {
        use crate::containment::{result_contains, result_equivalent};
        let p = parse("a/b").unwrap();
        let q = parse("a//b").unwrap();
        // Same outputs wherever p matches.
        assert_eq!(result_contains(&p, &q, 1 << 16), Some(true));
        assert_eq!(result_contains(&q, &p, 1 << 16), Some(false));
        // Boolean-equivalent but result-different: outputs at different
        // depths.
        let r1 = parse("a/b[c]").unwrap();
        let r2 = parse("a[b/c]").unwrap();
        assert_eq!(result_equivalent(&r1, &r2, 1 << 16), Some(false));
    }

    #[test]
    fn result_containment_vs_brute() {
        // Cross-validate result_contains against small-tree sweeps.
        let pairs = [
            ("a/b", "a//b"),
            ("a//b", "a/b"),
            ("a/b[c]", "a/b"),
            ("a/b", "a/b[c]"),
            ("a/*", "a/b"),
            ("a/b", "a/*"),
            ("a[x]/b", "a/b"),
        ];
        for (ps, qs) in pairs {
            let p = parse(ps).unwrap();
            let q = parse(qs).unwrap();
            let exact = crate::containment::result_contains(&p, &q, 1 << 16).unwrap();
            // Brute refutation on trees of ≤4 nodes.
            let mut alpha = p.alphabet();
            alpha.extend(q.alphabet());
            alpha.sort_unstable();
            alpha.dedup();
            alpha.push(Symbol::fresh("zz", &alpha));
            let refuted = enumerate_trees(&alpha, 4).iter().any(|t| {
                let pe = eval::eval(&p, t);
                let qe = eval::eval(&q, t);
                pe.iter().any(|n| !qe.contains(n))
            });
            if refuted {
                assert!(!exact, "{ps} ⊑ {qs}: brute refutes but exact accepts");
            }
            if exact {
                assert!(!refuted);
            }
        }
    }
}
