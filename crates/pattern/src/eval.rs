//! The production evaluator: `⟦p⟧(t)` by two candidate-set passes.
//!
//! The paper notes (§3) that its patterns are a subset of *Core XPath*,
//! evaluable in time linear in `|p|·|t|` [Gottlob–Koch–Pichler]. This
//! module implements the standard two-pass algorithm for conjunctive tree
//! patterns:
//!
//! 1. **Bottom-up** over the pattern: `cand[n]` = tree nodes `u` such that
//!    the subpattern rooted at `n` embeds with `n ↦ u` (label compatible,
//!    and each pattern child reachable via its axis from `u`).
//! 2. **Top-down**: `feas[n]` = `cand[n]` restricted to nodes whose
//!    ancestor chain can realize the path from the pattern root (which
//!    must map to the tree root).
//!
//! `⟦p⟧(t) = feas[𝒪(p)]`. Because patterns are trees of conjunctive
//! constraints, branch satisfiability decomposes per child, so the two
//! passes are exact (cross-validated against [`crate::embed::eval_naive`]
//! in tests and property tests).
//!
//! The row buffers (one `Vec<bool>` per pattern node, each `slot_count`
//! wide) dominated allocation on the detector hot path — every
//! `eval`/`matches` call allocated `O(|p|)` fresh vectors. They now live
//! in a thread-local [`Scratch`] pool reused across calls (the same
//! treatment PR 4 gave `Nfa::accepts`); rows are resized and cleared in
//! place, and the top-down pass reads the parent row directly from the
//! pool instead of copying it.

use crate::{Axis, Pattern};
use cxu_tree::{NodeId, Tree};
use std::cell::RefCell;

/// Reusable per-thread evaluation state: candidate and feasibility rows
/// (indexed by pattern-node arena index, each `slot_count` wide), the two
/// single-row buffers of the axis passes, and the live-node list.
#[derive(Default)]
struct Scratch {
    cand: Vec<Vec<bool>>,
    feas: Vec<Vec<bool>>,
    axis: Vec<bool>,
    live: Vec<NodeId>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Grows `rows` to `count` rows and resets each to `false × slots`,
/// keeping allocated capacity.
fn reset_rows(rows: &mut Vec<Vec<bool>>, count: usize, slots: usize) {
    if rows.len() < count {
        rows.resize_with(count, Vec::new);
    }
    for row in rows[..count].iter_mut() {
        row.clear();
        row.resize(slots, false);
    }
}

/// Computes the bottom-up candidate sets into `s.cand`. `cand(n)` holds
/// `u` iff the subpattern rooted at `n` embeds into `t` with `n ↦ u` (no
/// root anchoring) — the conflict algorithms reuse this to answer "does
/// this suffix embed into X (or a subtree of X)?" (Lemma 6). Also fills
/// `s.live` with the tree's preorder.
fn candidates(p: &Pattern, t: &Tree, s: &mut Scratch) {
    s.live.clear();
    s.live.extend(t.nodes());
    let slots = t.slot_count();
    reset_rows(&mut s.cand, p.len(), slots);

    for n in p.postorder() {
        // Take the row out of the pool so child rows stay borrowable.
        let mut row = std::mem::take(&mut s.cand[n.index()]);
        // Label screen.
        match p.label(n) {
            Some(required) => {
                for &u in &s.live {
                    row[u.index()] = t.label(u) == required;
                }
            }
            None => {
                for &u in &s.live {
                    row[u.index()] = true;
                }
            }
        }
        // Edge constraints, one pattern child at a time.
        for &c in p.children(n) {
            let ok = &mut s.axis;
            ok.clear();
            ok.resize(slots, false);
            let child_row = &s.cand[c.index()];
            match p.axis(c).expect("pattern child has an axis") {
                Axis::Child => {
                    // ok[u] = some tree child of u is in cand[c]
                    for &u in &s.live {
                        if child_row[u.index()] {
                            if let Some(par) = t.parent(u) {
                                ok[par.index()] = true;
                            }
                        }
                    }
                }
                Axis::Descendant => {
                    // ok[u] = some proper descendant of u is in cand[c]:
                    // one pass over the tree postorder (reversed preorder —
                    // `t.nodes()` puts parents before children).
                    for &u in s.live.iter().rev() {
                        let mut any = false;
                        for &v in t.children(u) {
                            if child_row[v.index()] || ok[v.index()] {
                                any = true;
                                break;
                            }
                        }
                        ok[u.index()] = any;
                    }
                }
            }
            for &u in &s.live {
                row[u.index()] &= ok[u.index()];
            }
        }
        s.cand[n.index()] = row;
    }
}

/// `⟦p⟧(t)`: the set of images of the output node over all embeddings.
/// Sorted and deduplicated.
pub fn eval(p: &Pattern, t: &Tree) -> Vec<NodeId> {
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        candidates(p, t, s);
        if !s.cand[p.root().index()][t.root().index()] {
            return Vec::new();
        }
        let slots = t.slot_count();

        // Top-down feasibility.
        reset_rows(&mut s.feas, p.len(), slots);
        s.feas[p.root().index()][t.root().index()] = true;
        let mut preorder = p.postorder();
        preorder.reverse();
        for &n in &preorder {
            let Some((parent, axis)) = p.parent(n) else {
                continue;
            };
            let mut row = std::mem::take(&mut s.feas[n.index()]);
            let parent_row = &s.feas[parent.index()];
            let cand_row = &s.cand[n.index()];
            match axis {
                Axis::Child => {
                    for &u in &s.live {
                        if cand_row[u.index()] {
                            if let Some(par) = t.parent(u) {
                                row[u.index()] = parent_row[par.index()];
                            }
                        }
                    }
                }
                Axis::Descendant => {
                    // anc_ok[u] = some proper ancestor of u is feasible for
                    // `parent`: one pass down the tree preorder.
                    let anc_ok = &mut s.axis;
                    anc_ok.clear();
                    anc_ok.resize(slots, false);
                    for &u in &s.live {
                        if let Some(par) = t.parent(u) {
                            anc_ok[u.index()] = parent_row[par.index()] || anc_ok[par.index()];
                        }
                    }
                    for &u in &s.live {
                        row[u.index()] = cand_row[u.index()] && anc_ok[u.index()];
                    }
                }
            }
            s.feas[n.index()] = row;
        }

        let out_row = &s.feas[p.output().index()];
        let mut result: Vec<NodeId> = s
            .live
            .iter()
            .copied()
            .filter(|u| out_row[u.index()])
            .collect();
        result.sort_unstable();
        result
    })
}

/// Does any embedding of `p` into `t` exist? (Root anchored at the tree
/// root, as always.) Cheaper than `!eval(p, t).is_empty()` — skips the
/// top-down pass.
pub fn matches(p: &Pattern, t: &Tree) -> bool {
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        candidates(p, t, s);
        s.cand[p.root().index()][t.root().index()]
    })
}

/// Can the subpattern-with-root semantics embed `p` with **its root
/// anchored at `anchor`** instead of the tree root? Used by the cut-edge
/// analysis (Lemma 6): "there is an embedding from `SEQ_{n'}^{𝒪(R)}` to
/// `X`" anchors at `ROOT(X)`; "…or some subtree of `X`" anchors anywhere.
pub fn can_embed_at(p: &Pattern, t: &Tree, anchor: NodeId) -> bool {
    assert!(t.is_alive(anchor), "anchor must be alive");
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        candidates(p, t, s);
        s.cand[p.root().index()][anchor.index()]
    })
}

/// All nodes where `p` can embed with its root anchored there.
pub fn embed_anchors(p: &Pattern, t: &Tree) -> Vec<NodeId> {
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        candidates(p, t, s);
        let row = &s.cand[p.root().index()];
        t.nodes().filter(|u| row[u.index()]).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::eval_naive;
    use crate::xpath::parse;
    use cxu_tree::text;

    fn check(pat: &str, tree: &str) {
        let p = parse(pat).unwrap();
        let t = text::parse(tree).unwrap();
        assert_eq!(
            eval(&p, &t),
            eval_naive(&p, &t),
            "eval vs oracle mismatch for {pat} on {tree}"
        );
    }

    #[test]
    fn agrees_with_oracle_on_basics() {
        check("a", "a(b c)");
        check("a", "x");
        check("a/b", "a(b b c)");
        check("a//b", "a(b(b) x(b))");
        check("a/*/c", "a(x(c) y(c) z(d))");
        check("*", "anything(at all)");
    }

    #[test]
    fn agrees_with_oracle_on_branching() {
        check("a[.//c]/b[d][*//f]", "a(x(c) b(d g(e(f))))");
        check("a[.//c]/b[d][*//f]", "a(b(d g(e(f))))"); // no c → empty
        check("a[b][c]", "a(b c)");
        check("a[b][c]", "a(b)");
        check("a[b/c]//d", "a(b(c) x(d(d)))");
    }

    #[test]
    fn agrees_with_oracle_on_wildcard_chains() {
        check("*/*/*", "a(b(c(d)) e)");
        check("*//*", "a(b)");
        check("*//*", "a");
    }

    #[test]
    fn descendant_from_root_is_proper() {
        let p = parse("a//a").unwrap();
        let t = text::parse("a").unwrap();
        assert!(eval(&p, &t).is_empty());
    }

    #[test]
    fn matches_agrees_with_eval() {
        for (pat, tree) in [
            ("a[b][c]", "a(b c)"),
            ("a[b][c]", "a(b)"),
            ("a//b", "a(x(y(b)))"),
            ("q", "a"),
        ] {
            let p = parse(pat).unwrap();
            let t = text::parse(tree).unwrap();
            assert_eq!(matches(&p, &t), !eval(&p, &t).is_empty(), "{pat} on {tree}");
        }
    }

    #[test]
    fn can_embed_at_non_root_anchor() {
        let p = parse("b//c").unwrap();
        let t = text::parse("a(b(x(c)) b(d))").unwrap();
        let kids = t.children(t.root());
        assert!(can_embed_at(&p, &t, kids[0]));
        assert!(!can_embed_at(&p, &t, kids[1]));
        assert!(!can_embed_at(&p, &t, t.root()));
    }

    #[test]
    fn embed_anchors_lists_all() {
        let p = parse("b").unwrap();
        let t = text::parse("a(b x(b) b)").unwrap();
        assert_eq!(embed_anchors(&p, &t).len(), 3);
    }

    #[test]
    fn eval_after_mutation() {
        let p = parse("a//c").unwrap();
        let mut t = text::parse("a(b)").unwrap();
        assert!(eval(&p, &t).is_empty());
        let b = t.children(t.root())[0];
        let c_tree = text::parse("c").unwrap();
        t.graft(b, &c_tree);
        assert_eq!(eval(&p, &t).len(), 1);
    }

    #[test]
    fn eval_skips_dead_nodes() {
        let p = parse("a//b").unwrap();
        let mut t = text::parse("a(b x(b b))").unwrap();
        let x = t
            .children(t.root())
            .iter()
            .copied()
            .find(|&n| t.label(n).as_str() == "x")
            .unwrap();
        t.remove_subtree(x).unwrap();
        assert_eq!(eval(&p, &t).len(), 1);
    }

    #[test]
    fn output_in_predicate_branch() {
        // Setting the output to a branch node is legal for patterns even
        // if the XPath surface syntax wouldn't produce it.
        let mut p = parse("a[b]/c").unwrap();
        let b = p
            .children(p.root())
            .iter()
            .copied()
            .find(|&n| p.label(n).map(|s| s.as_str()) == Some("b"))
            .unwrap();
        p.set_output(b);
        let t = text::parse("a(b b c)").unwrap();
        assert_eq!(eval(&p, &t).len(), 2);
        assert_eq!(eval_naive(&p, &t).len(), 2);
    }

    #[test]
    fn deep_tree_linear_pattern() {
        // A 300-deep chain; the recursive oracle would be fine too, but
        // this exercises the iterative passes.
        let mut s = String::from("leaf");
        for _ in 0..300 {
            s = format!("a({s})");
        }
        let t = text::parse(&s).unwrap();
        let p = parse("a//leaf").unwrap();
        assert_eq!(eval(&p, &t).len(), 1);
    }
}
