//! Graphviz (DOT) export for trees and patterns — visualization support
//! for the CLI and for debugging conflict witnesses.
//!
//! Conventions follow the paper's figures: descendant edges are drawn as
//! double lines (rendered here as `style=dashed` with a `//` label),
//! output nodes get a thick border (`penwidth=2`), wildcard nodes show
//! `*`. Deleted (tombstoned) tree nodes are not emitted.

use crate::{Axis, Pattern};
use cxu_tree::{NodeId, Tree};
use std::fmt::Write as _;

/// Renders a tree as a DOT digraph named `name`.
pub fn tree_to_dot(t: &Tree, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  node [shape=ellipse, fontname=\"monospace\"];");
    for n in t.nodes() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            n.index(),
            escape(t.label(n).as_str())
        );
    }
    for n in t.nodes() {
        if let Some(p) = t.parent(n) {
            let _ = writeln!(out, "  n{} -> n{};", p.index(), n.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a pattern as a DOT digraph: dashed `//` edges, thick-bordered
/// output node, `*` wildcards.
pub fn pattern_to_dot(p: &Pattern, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  node [shape=ellipse, fontname=\"monospace\"];");
    for n in p.node_ids() {
        let label = p
            .label(n)
            .map(|s| escape(s.as_str()))
            .unwrap_or_else(|| "*".into());
        let extra = if n == p.output() { ", penwidth=2" } else { "" };
        let _ = writeln!(out, "  p{} [label=\"{label}\"{extra}];", n.index());
    }
    for n in p.node_ids() {
        if let Some((parent, axis)) = p.parent(n) {
            let style = match axis {
                Axis::Child => "",
                Axis::Descendant => " [style=dashed, label=\"//\"]",
            };
            let _ = writeln!(out, "  p{} -> p{}{style};", parent.index(), n.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a tree with an embedding overlay: image nodes of the
/// embedding are highlighted, and the output image is double-circled —
/// a Figure 2-style picture.
pub fn embedding_to_dot(p: &Pattern, t: &Tree, e: &crate::embed::Embedding, name: &str) -> String {
    let images: Vec<NodeId> = e.images().to_vec();
    let out_img = e.image(p.output());
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  node [shape=ellipse, fontname=\"monospace\"];");
    for n in t.nodes() {
        let mut attrs = String::new();
        if images.contains(&n) {
            attrs.push_str(", style=filled, fillcolor=lightgrey");
        }
        if n == out_img {
            attrs.push_str(", shape=doublecircle");
        }
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"{attrs}];",
            n.index(),
            escape(t.label(n).as_str())
        );
    }
    for n in t.nodes() {
        if let Some(par) = t.parent(n) {
            let _ = writeln!(out, "  n{} -> n{};", par.index(), n.index());
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) || cleaned.is_empty() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed;
    use crate::xpath::parse;
    use cxu_tree::text;

    #[test]
    fn tree_dot_structure() {
        let t = text::parse("a(b c(d))").unwrap();
        let dot = tree_to_dot(&t, "t");
        assert!(dot.starts_with("digraph t {"));
        assert_eq!(dot.matches("->").count(), 3);
        assert!(dot.contains("label=\"a\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn tree_dot_skips_dead_nodes() {
        let mut t = text::parse("a(b(c) d)").unwrap();
        let b = t.children(t.root())[0];
        t.remove_subtree(b).unwrap();
        let dot = tree_to_dot(&t, "t");
        assert!(!dot.contains("label=\"c\""));
        assert_eq!(dot.matches("->").count(), 1);
    }

    #[test]
    fn pattern_dot_conventions() {
        let p = parse("a[.//c]/b").unwrap();
        let dot = pattern_to_dot(&p, "fig");
        assert!(dot.contains("style=dashed"), "descendant edge dashed");
        assert!(dot.contains("penwidth=2"), "output node thick");
        let q = parse("*//x").unwrap();
        let dot2 = pattern_to_dot(&q, "q");
        assert!(dot2.contains("label=\"*\""));
    }

    #[test]
    fn embedding_dot_highlights_images() {
        let p = parse("a//b").unwrap();
        let t = text::parse("a(x(b))").unwrap();
        let e = embed::enumerate(&p, &t, 1).pop().unwrap();
        let dot = embedding_to_dot(&p, &t, &e, "fig2");
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("fillcolor=lightgrey"));
    }

    #[test]
    fn names_sanitized() {
        let t = text::parse("a").unwrap();
        let dot = tree_to_dot(&t, "1 weird-name!");
        assert!(dot.starts_with("digraph g_1_weird_name_ {"));
    }

    #[test]
    fn labels_escaped() {
        let t = text::parse("we\"ird").unwrap();
        let dot = tree_to_dot(&t, "t");
        assert!(dot.contains("we\\\"ird"));
    }
}
