//! # cxu-pattern — tree patterns, embeddings, evaluation, containment
//!
//! Implements §2 of *Conflicting XML Updates* (Raghavachari & Shmueli):
//!
//! * [`Pattern`] — tree patterns over `Σ ∪ {*}` with child and descendant
//!   edges and a distinguished output node: the class `P^{//,[],*}`, and
//!   its linear subclass `P^{//,*}` ([`Pattern::is_linear`]);
//! * [`xpath`] — a parser for the paper's XPath fragment
//!   `e → e/e | e//e | e[e] | e[.//e] | σ | *` and a pretty-printer back;
//! * [`embed`] — embeddings (§2.3): validity checking and exhaustive
//!   enumeration (the testing oracle);
//! * [`eval`] — the production evaluator: a two-pass candidate-set
//!   algorithm, the Core-XPath-style engine the paper cites
//!   (\[7\], Gottlob–Koch–Pichler);
//! * [`containment`] — tree-pattern containment: a polynomial
//!   homomorphism check (sound, incomplete) and the exact Miklau–Suciu
//!   canonical-model procedure, which the §5 NP-hardness reductions are
//!   validated against.
//!
//! ```
//! use cxu_pattern::{xpath, eval};
//! use cxu_tree::text;
//!
//! // Figure 2 of the paper: a[.//c]/b[d][*//f]
//! let p = xpath::parse("a[.//c]/b[d][*//f]").unwrap();
//! let t = text::parse("a(x(c) b(d g(e(f))))").unwrap();
//! let hits = eval::eval(&p, &t);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(t.label(hits[0]).as_str(), "b");
//! ```

pub mod containment;
pub mod dot;
pub mod embed;
pub mod eval;
pub mod minimize;
mod pattern;
pub mod xpath;

pub use pattern::{Axis, PNodeId, Pattern, PatternError};
