//! Parser and printer for the paper's XPath fragment:
//!
//! ```text
//! e  →  e/e  |  e//e  |  e[e]  |  e[.//e]  |  σ  |  *
//! ```
//!
//! The translation into tree patterns is the straightforward one the paper
//! omits: the main path becomes the spine (its last step is the output
//! node `𝒪(p)`), each predicate becomes a branch hanging off its step —
//! via a child edge for `[e]` and a descendant edge for `[.//e]` (we also
//! accept the common `[//e]` spelling).
//!
//! A leading `/` is optional (`/a/b` ≡ `a/b`: the first step is the
//! pattern root, which embeddings always map to the document root). A
//! leading `//` introduces an implicit `*` root with a descendant edge, so
//! `//book` selects book descendants of whatever the root is — matching
//! the paper's use of `$x//A`.

use crate::{Axis, PNodeId, Pattern};
use cxu_tree::Symbol;
use std::fmt;

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xpath error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for XPathError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, XPathError> {
        Err(XPathError {
            at: self.pos,
            msg: msg.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if !c.is_whitespace() {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    fn label(&mut self) -> Result<Option<Symbol>, XPathError> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(None);
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || "_-.:@#=".contains(c)) {
            self.pos += self.peek().unwrap().len_utf8();
        }
        if self.pos == start {
            return self.err("expected a step label or '*'");
        }
        Ok(Some(Symbol::intern(&self.src[start..self.pos])))
    }

    /// Parses `step (sep step)*` attached under `parent` via `axis`;
    /// returns the id of the last step (the local output).
    fn path(
        &mut self,
        pat: &mut Pattern,
        parent: Option<PNodeId>,
        mut axis: Axis,
    ) -> Result<PNodeId, XPathError> {
        let mut cur = match parent {
            Some(p) => {
                let lbl = self.label()?;
                let n = pat.add_child(p, axis, lbl);
                self.predicates(pat, n)?;
                n
            }
            None => {
                // Root step already in `pat` — parse its predicates only.
                let r = pat.root();
                self.predicates(pat, r)?;
                r
            }
        };
        loop {
            self.skip_ws();
            if self.eat("//") {
                axis = Axis::Descendant;
            } else if self.eat("/") {
                axis = Axis::Child;
            } else {
                return Ok(cur);
            }
            let lbl = self.label()?;
            cur = pat.add_child(cur, axis, lbl);
            self.predicates(pat, cur)?;
        }
    }

    fn predicates(&mut self, pat: &mut Pattern, node: PNodeId) -> Result<(), XPathError> {
        loop {
            self.skip_ws();
            if !self.eat("[") {
                return Ok(());
            }
            self.skip_ws();
            let axis = if self.eat(".//") || self.eat("//") {
                Axis::Descendant
            } else {
                let _ = self.eat("./");
                Axis::Child
            };
            self.path(pat, Some(node), axis)?;
            self.skip_ws();
            if !self.eat("]") {
                return self.err("expected ']'");
            }
        }
    }
}

/// Parses an expression of the paper's fragment into a [`Pattern`]. The
/// output node is the last step of the main path.
pub fn parse(src: &str) -> Result<Pattern, XPathError> {
    let mut p = Parser { src, pos: 0 };
    p.skip_ws();

    let (mut pat, root_is_synthetic) = if p.eat("//") {
        // Implicit wildcard root with a descendant edge to the first step.
        (Pattern::star(), true)
    } else {
        let _ = p.eat("/");
        let lbl = p.label()?;
        (Pattern::new(lbl), false)
    };

    let out = if root_is_synthetic {
        let root = pat.root();
        let lbl = p.label()?;
        let first = pat.add_child(root, Axis::Descendant, lbl);
        p.predicates(&mut pat, first)?;
        // Continue the main path from `first`.
        continue_path(&mut p, &mut pat, first)?
    } else {
        p.path(&mut pat, None, Axis::Child)?
    };
    pat.set_output(out);

    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input after expression");
    }
    Ok(pat)
}

fn continue_path(
    p: &mut Parser<'_>,
    pat: &mut Pattern,
    mut cur: PNodeId,
) -> Result<PNodeId, XPathError> {
    loop {
        p.skip_ws();
        let axis = if p.eat("//") {
            Axis::Descendant
        } else if p.eat("/") {
            Axis::Child
        } else {
            return Ok(cur);
        };
        let lbl = p.label()?;
        cur = pat.add_child(cur, axis, lbl);
        p.predicates(pat, cur)?;
    }
}

/// Renders a pattern back to the fragment's surface syntax.
///
/// The spine (root → output) becomes the main path; every off-spine child
/// becomes a predicate (`[x…]` for child edges, `[.//x…]` for descendant
/// edges), with branch-internal structure rendered as nested predicates.
/// `parse(to_xpath(p))` is structurally equal to `p` (predicate chains
/// like `a/b` normalize to `a[b]`, which denotes the same pattern tree).
pub fn to_xpath(p: &Pattern) -> String {
    let spine = p
        .path(p.root(), p.output())
        .expect("output is a descendant-or-self of the root");
    let on_spine = |n: PNodeId| spine.contains(&n);
    let mut out = String::new();
    for (i, &n) in spine.iter().enumerate() {
        if i > 0 {
            out.push_str(match p.axis(n).expect("spine step has an axis") {
                Axis::Child => "/",
                Axis::Descendant => "//",
            });
        }
        step(p, n, &on_spine, &mut out);
    }
    out
}

fn step(p: &Pattern, n: PNodeId, on_spine: &dyn Fn(PNodeId) -> bool, out: &mut String) {
    match p.label(n) {
        Some(s) => out.push_str(s.as_str()),
        None => out.push('*'),
    }
    for &c in p.children(n) {
        if on_spine(c) {
            continue;
        }
        out.push('[');
        if p.axis(c) == Some(Axis::Descendant) {
            out.push_str(".//");
        }
        branch(p, c, out);
        out.push(']');
    }
}

fn branch(p: &Pattern, n: PNodeId, out: &mut String) {
    match p.label(n) {
        Some(s) => out.push_str(s.as_str()),
        None => out.push('*'),
    }
    for &c in p.children(n) {
        out.push('[');
        if p.axis(c) == Some(Axis::Descendant) {
            out.push_str(".//");
        }
        branch(p, c, out);
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let p = parse("a/b//c").unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.is_linear());
        assert_eq!(p.label(p.root()).unwrap().as_str(), "a");
        assert_eq!(p.label(p.output()).unwrap().as_str(), "c");
        assert_eq!(p.axis(p.output()), Some(Axis::Descendant));
    }

    #[test]
    fn leading_slash_optional() {
        let a = parse("/a/b").unwrap();
        let b = parse("a/b").unwrap();
        assert!(a.structurally_eq(&b));
    }

    #[test]
    fn leading_double_slash_synthesizes_star_root() {
        let p = parse("//book").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.label(p.root()), None);
        assert_eq!(p.axis(p.output()), Some(Axis::Descendant));
        assert_eq!(p.label(p.output()).unwrap().as_str(), "book");
    }

    #[test]
    fn wildcards() {
        let p = parse("*/a/*").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.label(p.root()), None);
        assert_eq!(p.label(p.output()), None);
    }

    #[test]
    fn figure2_pattern() {
        // a[.//c]/b[d][*//f]
        let p = parse("a[.//c]/b[d][*//f]").unwrap();
        assert_eq!(p.len(), 6);
        assert!(!p.is_linear());
        let root = p.root();
        assert_eq!(p.children(root).len(), 2);
        // Output is the b step on the spine.
        assert_eq!(p.label(p.output()).unwrap().as_str(), "b");
        // The c branch hangs off the root with a descendant edge.
        let c_branch = p
            .children(root)
            .iter()
            .copied()
            .find(|&n| p.label(n).map(|s| s.as_str()) == Some("c"))
            .unwrap();
        assert_eq!(p.axis(c_branch), Some(Axis::Descendant));
        // b has predicate children d (child) and * (child) with f below.
        let b = p.output();
        assert_eq!(p.children(b).len(), 2);
    }

    #[test]
    fn predicate_with_inner_path() {
        // a[b/c] == a[b[c]]
        let p = parse("a[b/c]").unwrap();
        let q = parse("a[b[c]]").unwrap();
        assert!(p.structurally_eq(&q));
        assert_eq!(p.output(), p.root());
    }

    #[test]
    fn predicate_double_slash_spellings() {
        let a = parse("a[.//c]").unwrap();
        let b = parse("a[//c]").unwrap();
        assert!(a.structurally_eq(&b));
    }

    #[test]
    fn predicate_child_spellings() {
        let a = parse("a[./c]").unwrap();
        let b = parse("a[c]").unwrap();
        assert!(a.structurally_eq(&b));
    }

    #[test]
    fn nested_predicates() {
        let p = parse("a[b[.//c][d]]/e").unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.label(p.output()).unwrap().as_str(), "e");
    }

    #[test]
    fn whitespace_tolerated() {
        let p = parse(" a [ .// c ] / b ").unwrap();
        let q = parse("a[.//c]/b").unwrap();
        assert!(p.structurally_eq(&q));
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("a[").is_err());
        assert!(parse("a]").is_err());
        assert!(parse("a/").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("[a]").is_err());
    }

    #[test]
    fn multibyte_whitespace_regression() {
        // Found by fuzzing: skip_ws advanced one byte per whitespace
        // char, slicing mid-codepoint on U+2003 (EM SPACE) and friends.
        for src in ["\u{2003}a/b", "a\u{2003}/\u{00A0}b", "\u{3000}*"] {
            let _ = parse(src); // must not panic
        }
        let p = parse("\u{2003}a/b").unwrap();
        assert!(p.structurally_eq(&parse("a/b").unwrap()));
    }

    #[test]
    fn roundtrip_linear() {
        for src in ["a/b//c", "*//x/*", "//book", "a"] {
            let p = parse(src).unwrap();
            let q = parse(&to_xpath(&p)).unwrap();
            assert!(p.structurally_eq(&q), "{src} → {} → ?", to_xpath(&p));
        }
    }

    #[test]
    fn roundtrip_branching() {
        for src in [
            "a[.//c]/b[d][*//f]",
            "a[b[c][.//d]]/e//f[g]",
            "*[.//x]//y[z[w]]",
        ] {
            let p = parse(src).unwrap();
            let q = parse(&to_xpath(&p)).unwrap();
            assert!(p.structurally_eq(&q), "{src} → {} → ?", to_xpath(&p));
        }
    }

    #[test]
    fn display_uses_xpath() {
        let p = parse("a/b").unwrap();
        assert_eq!(p.to_string(), "a/b");
    }

    #[test]
    fn spine_rendering_keeps_output() {
        let p = parse("a[x]/b").unwrap();
        let s = to_xpath(&p);
        let q = parse(&s).unwrap();
        assert_eq!(q.label(q.output()).unwrap().as_str(), "b");
    }
}
