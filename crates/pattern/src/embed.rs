//! Embeddings of tree patterns into trees (§2.3) — the semantic ground
//! truth.
//!
//! An embedding is a function `ℰ : NODES_p → NODES_t` that is
//! root-preserving, label-preserving, and satisfies every child and
//! descendant edge constraint. This module provides validity checking and
//! exhaustive enumeration by backtracking. Enumeration is exponential in
//! the worst case and exists as the **testing oracle** for the production
//! evaluator in [`crate::eval`]; property tests cross-validate the two.

use crate::{Axis, PNodeId, Pattern};
use cxu_tree::{NodeId, Tree};

/// A (candidate) embedding: the image of every pattern node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    map: Vec<NodeId>,
}

impl Embedding {
    /// The image `ℰ(n)`.
    pub fn image(&self, n: PNodeId) -> NodeId {
        self.map[n.index()]
    }

    /// The image of the pattern's output node.
    pub fn output_image(&self, p: &Pattern) -> NodeId {
        self.image(p.output())
    }

    /// All images, indexed by pattern-node index.
    pub fn images(&self) -> &[NodeId] {
        &self.map
    }
}

/// Checks the four embedding conditions of §2.3 for a candidate map.
pub fn is_valid(p: &Pattern, t: &Tree, e: &Embedding) -> bool {
    if e.map.len() != p.len() {
        return false;
    }
    // ROOT-PRESERVING
    if e.image(p.root()) != t.root() {
        return false;
    }
    for n in p.node_ids() {
        let img = e.image(n);
        if !t.is_alive(img) {
            return false;
        }
        // LABEL-PRESERVING
        if let Some(required) = p.label(n) {
            if t.label(img) != required {
                return false;
            }
        }
        // EDGE CONSTRAINTS (checked on the child side)
        if let Some((parent, axis)) = p.parent(n) {
            let pimg = e.image(parent);
            let ok = match axis {
                Axis::Child => t.parent(img) == Some(pimg),
                Axis::Descendant => t.is_ancestor(pimg, img),
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Enumerates embeddings of `p` into `t` by backtracking, up to `limit`
/// results (`usize::MAX` for all). Exponential worst case — testing only.
pub fn enumerate(p: &Pattern, t: &Tree, limit: usize) -> Vec<Embedding> {
    let mut results = Vec::new();
    if limit == 0 {
        return results;
    }
    // Assign pattern nodes in preorder so every non-root node's parent
    // image is known when we reach it.
    let order: Vec<PNodeId> = {
        let mut po = p.postorder();
        po.reverse();
        po
    };
    debug_assert_eq!(order[0], p.root());
    let mut map: Vec<Option<NodeId>> = vec![None; p.len()];
    assign(p, t, &order, 0, &mut map, &mut results, limit);
    results
}

fn assign(
    p: &Pattern,
    t: &Tree,
    order: &[PNodeId],
    idx: usize,
    map: &mut Vec<Option<NodeId>>,
    results: &mut Vec<Embedding>,
    limit: usize,
) {
    if results.len() >= limit {
        return;
    }
    if idx == order.len() {
        results.push(Embedding {
            map: map
                .iter()
                .map(|o| o.expect("complete assignment"))
                .collect(),
        });
        return;
    }
    let n = order[idx];
    let label_ok = |u: NodeId| match p.label(n) {
        Some(required) => t.label(u) == required,
        None => true,
    };
    match p.parent(n) {
        None => {
            let r = t.root();
            if label_ok(r) {
                map[n.index()] = Some(r);
                assign(p, t, order, idx + 1, map, results, limit);
                map[n.index()] = None;
            }
        }
        Some((parent, axis)) => {
            let pimg = map[parent.index()].expect("preorder: parent already assigned");
            let candidates: Vec<NodeId> = match axis {
                Axis::Child => t.children(pimg).to_vec(),
                Axis::Descendant => t.descendants(pimg).collect(),
            };
            for u in candidates {
                if label_ok(u) {
                    map[n.index()] = Some(u);
                    assign(p, t, order, idx + 1, map, results, limit);
                    map[n.index()] = None;
                    if results.len() >= limit {
                        return;
                    }
                }
            }
        }
    }
}

/// Finds one embedding of `p` into `t` whose output image is `target`,
/// if any exists. Backtracking with an early output check — used by the
/// witness-minimization machinery (§5, Definition 9) to extract the
/// embeddings whose images get *marked*.
pub fn find_with_output(p: &Pattern, t: &Tree, target: NodeId) -> Option<Embedding> {
    // Order the pattern nodes so the output is assigned as early as its
    // ancestors allow: preorder already assigns ancestors first; we prune
    // by checking the output image the moment it is assigned.
    let order: Vec<PNodeId> = {
        let mut po = p.postorder();
        po.reverse();
        po
    };
    let mut map: Vec<Option<NodeId>> = vec![None; p.len()];
    if assign_targeted(p, t, &order, 0, &mut map, target) {
        Some(Embedding {
            map: map.iter().map(|o| o.expect("complete")).collect(),
        })
    } else {
        None
    }
}

fn assign_targeted(
    p: &Pattern,
    t: &Tree,
    order: &[PNodeId],
    idx: usize,
    map: &mut Vec<Option<NodeId>>,
    target: NodeId,
) -> bool {
    if idx == order.len() {
        return true;
    }
    let n = order[idx];
    let label_ok = |u: NodeId| match p.label(n) {
        Some(required) => t.label(u) == required,
        None => true,
    };
    let try_one = |u: NodeId, map: &mut Vec<Option<NodeId>>| -> bool {
        if n == p.output() && u != target {
            return false;
        }
        if !label_ok(u) {
            return false;
        }
        map[n.index()] = Some(u);
        if assign_targeted(p, t, order, idx + 1, map, target) {
            return true;
        }
        map[n.index()] = None;
        false
    };
    match p.parent(n) {
        None => try_one(t.root(), map),
        Some((parent, axis)) => {
            let pimg = map[parent.index()].expect("parent assigned first");
            match axis {
                Axis::Child => {
                    for u in t.children(pimg).to_vec() {
                        if try_one(u, map) {
                            return true;
                        }
                    }
                    false
                }
                Axis::Descendant => {
                    let cands: Vec<NodeId> = t.descendants(pimg).collect();
                    for u in cands {
                        if try_one(u, map) {
                            return true;
                        }
                    }
                    false
                }
            }
        }
    }
}

/// `⟦p⟧(t)` computed by exhaustive enumeration — the oracle for
/// [`crate::eval::eval`]. Returns a sorted, deduplicated node set.
pub fn eval_naive(p: &Pattern, t: &Tree) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = enumerate(p, t, usize::MAX)
        .iter()
        .map(|e| e.output_image(p))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Does at least one embedding of `p` into `t` exist?
pub fn embeds(p: &Pattern, t: &Tree) -> bool {
    !enumerate(p, t, 1).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse;
    use cxu_tree::text;

    #[test]
    fn single_node_matches_root_label() {
        let p = parse("a").unwrap();
        let t = text::parse("a(b)").unwrap();
        let es = enumerate(&p, &t, usize::MAX);
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].output_image(&p), t.root());
        let t2 = text::parse("x(a)").unwrap();
        assert!(
            enumerate(&p, &t2, usize::MAX).is_empty(),
            "root label must match"
        );
    }

    #[test]
    fn star_root_matches_anything() {
        let p = parse("*").unwrap();
        let t = text::parse("whatever").unwrap();
        assert!(embeds(&p, &t));
    }

    #[test]
    fn child_edge_requires_direct_child() {
        let p = parse("a/c").unwrap();
        let t = text::parse("a(b(c))").unwrap();
        assert!(!embeds(&p, &t));
        let p2 = parse("a//c").unwrap();
        assert!(embeds(&p2, &t));
    }

    #[test]
    fn descendant_is_proper() {
        // a//a must find a *proper* descendant labeled a.
        let p = parse("a//a").unwrap();
        let t1 = text::parse("a(b)").unwrap();
        assert!(!embeds(&p, &t1));
        let t2 = text::parse("a(b(a))").unwrap();
        assert!(embeds(&p, &t2));
    }

    #[test]
    fn multiple_embeddings_distinct_outputs() {
        let p = parse("a//b").unwrap();
        let t = text::parse("a(b(b) x(b))").unwrap();
        assert_eq!(eval_naive(&p, &t).len(), 3);
    }

    #[test]
    fn multiple_embeddings_same_output_deduped() {
        // a[.//x]/b with two x's: two embeddings, one output node.
        let p = parse("a[.//x]//b").unwrap();
        let t = text::parse("a(x x b)").unwrap();
        assert_eq!(enumerate(&p, &t, usize::MAX).len(), 2);
        assert_eq!(eval_naive(&p, &t).len(), 1);
    }

    #[test]
    fn figure2_embedding() {
        // Figure 2: p = a[.//c]/b[d][*//f] embeds into a tree shaped like
        // the paper's example.
        let p = parse("a[.//c]/b[d][*//f]").unwrap();
        let t = text::parse("a(x(c) b(d g(e(f))))").unwrap();
        let hits = eval_naive(&p, &t);
        assert_eq!(hits.len(), 1);
        assert_eq!(t.label(hits[0]).as_str(), "b");
    }

    #[test]
    fn predicate_failure_blocks_match() {
        let p = parse("a[.//c]/b").unwrap();
        let t = text::parse("a(b)").unwrap();
        assert!(!embeds(&p, &t));
    }

    #[test]
    fn model_always_embeds() {
        for src in ["a/b//c", "a[.//c]/b[d][*//f]", "*[x]//*", "//y[z]"] {
            let p = parse(src).unwrap();
            let m = p.model_fresh(&[]);
            assert!(embeds(&p, &m), "pattern {src} must embed into its model");
        }
    }

    #[test]
    fn is_valid_agrees_with_enumerate() {
        let p = parse("a[c]//b").unwrap();
        let t = text::parse("a(c b(b))").unwrap();
        for e in enumerate(&p, &t, usize::MAX) {
            assert!(is_valid(&p, &t, &e));
        }
    }

    #[test]
    fn is_valid_rejects_bad_maps() {
        let p = parse("a/b").unwrap();
        let t = text::parse("a(b c)").unwrap();
        let good = enumerate(&p, &t, usize::MAX).pop().unwrap();
        // Tamper: send the output to the c node.
        let c = t
            .children(t.root())
            .iter()
            .copied()
            .find(|&n| t.label(n).as_str() == "c")
            .unwrap();
        let bad = Embedding {
            map: vec![good.image(p.root()), c],
        };
        assert!(!is_valid(&p, &t, &bad));
    }

    #[test]
    fn limit_respected() {
        let p = parse("a//b").unwrap();
        let t = text::parse("a(b b b b)").unwrap();
        assert_eq!(enumerate(&p, &t, 2).len(), 2);
        assert_eq!(enumerate(&p, &t, 0).len(), 0);
    }

    #[test]
    fn find_with_output_hits_each_result() {
        let p = parse("a//b").unwrap();
        let t = text::parse("a(b x(b))").unwrap();
        for target in eval_naive(&p, &t) {
            let e = find_with_output(&p, &t, target).expect("embedding exists");
            assert!(is_valid(&p, &t, &e));
            assert_eq!(e.output_image(&p), target);
        }
    }

    #[test]
    fn find_with_output_respects_target() {
        let p = parse("a//b").unwrap();
        let t = text::parse("a(b c)").unwrap();
        let c = t
            .children(t.root())
            .iter()
            .copied()
            .find(|&n| t.label(n).as_str() == "c")
            .unwrap();
        assert!(find_with_output(&p, &t, c).is_none());
    }

    #[test]
    fn find_with_output_branching() {
        let p = parse("a[.//c]/b[d]").unwrap();
        let t = text::parse("a(x(c) b(d) b)").unwrap();
        let hits = eval_naive(&p, &t);
        assert_eq!(hits.len(), 1);
        let e = find_with_output(&p, &t, hits[0]).unwrap();
        assert!(is_valid(&p, &t, &e));
    }

    #[test]
    fn embeddings_ignore_dead_nodes() {
        let p = parse("a//b").unwrap();
        let mut t = text::parse("a(b x(b))").unwrap();
        let x = t
            .children(t.root())
            .iter()
            .copied()
            .find(|&n| t.label(n).as_str() == "x")
            .unwrap();
        t.remove_subtree(x).unwrap();
        assert_eq!(eval_naive(&p, &t).len(), 1);
    }
}
