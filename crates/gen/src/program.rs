//! The §1 "pidgin language": straight-line programs over one document.
//!
//! The paper motivates conflict detection with compiler transformations:
//!
//! ```text
//! 1  x = ...
//! 2  y = read $x//A
//! 3  insert $x/B, <C/>
//! 4  z = read $x//C
//! ```
//!
//! Line 4 cannot move above line 3; a read of `$x//D` could. This module
//! models such programs ([`Program`], [`Stmt`]), provides an interpreter
//! (so transformed programs can be checked observationally), and a
//! generator of random programs for the E9 experiment: *what fraction of
//! read/update pairs can a compiler prove independent?*

use crate::patterns::{random_delete_pattern, random_pattern, PatternParams};
use crate::rng::Rng;
use cxu_ops::{Delete, Insert, Read, Update};
use cxu_tree::Tree;

/// One statement of the pidgin language.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `y = read $x/<pattern>` — bind the selected node set.
    Read(Read),
    /// `insert $x/<pattern>, <X/>` or `delete $x/<pattern>`.
    Update(Update),
}

impl Stmt {
    /// Is this statement an update?
    pub fn is_update(&self) -> bool {
        matches!(self, Stmt::Update(_))
    }
}

/// A straight-line program over a single document variable.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Statements in program order.
    pub stmts: Vec<Stmt>,
}

/// The observable behaviour of a program on a document: the label
/// multiset every read returned, in order. (Node ids are not observable
/// across program transformations — fresh inserts get fresh ids — so the
/// observation is value-based: the canonical forms of the read results.)
pub fn observe(program: &Program, doc: &Tree) -> Vec<Vec<String>> {
    let mut t = doc.clone();
    let mut out = Vec::new();
    for stmt in &program.stmts {
        match stmt {
            Stmt::Read(r) => {
                let mut obs: Vec<String> = r
                    .eval(&t)
                    .into_iter()
                    .map(|n| cxu_tree::text::subtree_to_text(&t, n))
                    .collect();
                obs.sort_unstable();
                out.push(obs);
            }
            Stmt::Update(u) => {
                u.apply(&mut t);
            }
        }
    }
    out
}

/// Parameters for [`random_program`].
#[derive(Clone, Debug)]
pub struct ProgramParams {
    /// Number of statements.
    pub len: usize,
    /// Fraction of statements that are updates.
    pub update_rate: f64,
    /// Fraction of updates that are deletions (the rest insert).
    pub delete_rate: f64,
    /// Pattern shape shared by all statements.
    pub pattern: PatternParams,
}

impl Default for ProgramParams {
    fn default() -> ProgramParams {
        ProgramParams {
            len: 10,
            update_rate: 0.4,
            delete_rate: 0.4,
            pattern: PatternParams::linear(4),
        }
    }
}

/// Generates a random straight-line program.
pub fn random_program<R: Rng>(rng: &mut R, params: &ProgramParams) -> Program {
    let mut stmts = Vec::with_capacity(params.len);
    for _ in 0..params.len {
        if rng.gen_bool(params.update_rate.clamp(0.0, 1.0)) {
            if rng.gen_bool(params.delete_rate.clamp(0.0, 1.0)) {
                let p = random_delete_pattern(rng, &params.pattern);
                stmts.push(Stmt::Update(Update::Delete(
                    Delete::new(p).expect("delete pattern generator guarantees output ≠ root"),
                )));
            } else {
                let p = random_pattern(rng, &params.pattern);
                // Small inserted payloads: one or two nodes from the pool.
                let labels = params.pattern.pool_labels();
                let mut x = Tree::new(labels[rng.gen_range(0..labels.len())]);
                if rng.gen_bool(0.5) {
                    let r = x.root();
                    x.build_child(r, labels[rng.gen_range(0..labels.len())]);
                }
                stmts.push(Stmt::Update(Update::Insert(Insert::new(p, x))));
            }
        } else {
            let p = random_pattern(rng, &params.pattern);
            stmts.push(Stmt::Read(Read::new(p)));
        }
    }
    Program { stmts }
}

/// Helper on [`PatternParams`] exposing the label pool (used by the
/// program generator to build inserted payloads from the same alphabet).
trait PoolLabels {
    fn pool_labels(&self) -> Vec<cxu_tree::Symbol>;
}

impl PoolLabels for PatternParams {
    fn pool_labels(&self) -> Vec<cxu_tree::Symbol> {
        if !self.labels.is_empty() {
            self.labels.clone()
        } else {
            (0..self.alphabet.max(1))
                .map(|i| cxu_tree::Symbol::intern(&format!("l{i}")))
                .collect()
        }
    }
}

/// All (read, update) pairs where the read comes *after* the update —
/// the candidates for hoisting the read above the update (§1's code
/// motion). Returned as `(update_idx, read_idx)` with indexes into
/// `program.stmts`.
pub fn motion_candidates(program: &Program) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (ui, u) in program.stmts.iter().enumerate() {
        if !u.is_update() {
            continue;
        }
        for (ri, r) in program.stmts.iter().enumerate().skip(ui + 1) {
            if matches!(r, Stmt::Read(_)) {
                out.push((ui, ri));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64 as SmallRng;
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn section1_program() -> Program {
        Program {
            stmts: vec![
                Stmt::Read(Read::new(parse("x//A").unwrap())),
                Stmt::Update(Update::Insert(Insert::new(
                    parse("x/B").unwrap(),
                    text::parse("C").unwrap(),
                ))),
                Stmt::Read(Read::new(parse("x//C").unwrap())),
            ],
        }
    }

    #[test]
    fn observe_sees_insert_effects() {
        let prog = section1_program();
        let doc = text::parse("x(B A)").unwrap();
        let obs = observe(&prog, &doc);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0], vec!["A"]); // read before insert
        assert_eq!(obs[1], vec!["C"]); // read after insert sees the C
    }

    #[test]
    fn observation_detects_illegal_reorder() {
        // Swapping lines 3 and 4 changes the observation — the conflict
        // §1 describes.
        let prog = section1_program();
        let swapped = Program {
            stmts: vec![
                prog.stmts[0].clone(),
                prog.stmts[2].clone(),
                prog.stmts[1].clone(),
            ],
        };
        let doc = text::parse("x(B A)").unwrap();
        assert_ne!(observe(&prog, &doc), observe(&swapped, &doc));
    }

    #[test]
    fn legal_reorder_preserves_observation() {
        // read $x//D commutes with the insert.
        let prog = Program {
            stmts: vec![
                Stmt::Update(Update::Insert(Insert::new(
                    parse("x/B").unwrap(),
                    text::parse("C").unwrap(),
                ))),
                Stmt::Read(Read::new(parse("x//D").unwrap())),
            ],
        };
        let swapped = Program {
            stmts: vec![prog.stmts[1].clone(), prog.stmts[0].clone()],
        };
        let doc = text::parse("x(B D(D))").unwrap();
        assert_eq!(observe(&prog, &doc), observe(&swapped, &doc));
    }

    #[test]
    fn motion_candidates_enumeration() {
        let prog = section1_program();
        // One update (index 1), one read after it (index 2).
        assert_eq!(motion_candidates(&prog), vec![(1, 2)]);
    }

    #[test]
    fn random_program_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let prog = random_program(&mut rng, &ProgramParams::default());
        assert_eq!(prog.stmts.len(), 10);
        // Deterministic from the seed.
        let mut rng2 = SmallRng::seed_from_u64(1);
        let prog2 = random_program(&mut rng2, &ProgramParams::default());
        assert_eq!(prog.stmts.len(), prog2.stmts.len());
    }

    #[test]
    fn random_programs_run() {
        let mut rng = SmallRng::seed_from_u64(2);
        let doc = crate::trees::random_tree(
            &mut rng,
            &crate::trees::TreeParams {
                nodes: 60,
                alphabet: 3,
                ..Default::default()
            },
        );
        for seed in 0..10 {
            let mut prng = SmallRng::seed_from_u64(seed);
            let prog = random_program(&mut prng, &ProgramParams::default());
            let obs = observe(&prog, &doc);
            let reads = prog
                .stmts
                .iter()
                .filter(|s| matches!(s, Stmt::Read(_)))
                .count();
            assert_eq!(obs.len(), reads);
        }
    }
}
