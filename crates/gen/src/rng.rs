//! A small in-tree PRNG, replacing the external `rand` dependency so the
//! workspace builds hermetically (no network, no vendored crates).
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): a 64-bit state advanced
//! by a Weyl sequence and finalized with two xor-shift-multiply rounds.
//! It passes BigCrush, is trivially seedable from a `u64`, and — the
//! property the generators here actually need — is *deterministic and
//! stable across platforms*, so every benchmark instance and randomized
//! test reproduces from its seed.
//!
//! The [`Rng`] trait mirrors the subset of `rand::Rng` the workspace
//! used (`gen_bool`, `gen_range` over `usize` ranges), so the generator
//! modules keep their shape. [`SplitMix64::seed_from_u64`] mirrors
//! `SeedableRng::seed_from_u64`; old call sites typically just swap
//! `rand::rngs::SmallRng` for [`SplitMix64`].

/// The random-number interface the workload generators consume.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 explicit mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniformly random value from a non-empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> usize
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges [`Rng::gen_range`] can draw from.
pub trait SampleRange {
    /// Draws a uniform sample; panics on an empty range.
    fn sample<R: Rng>(self, rng: &mut R) -> usize;
}

impl SampleRange for std::ops::Range<usize> {
    fn sample<R: Rng>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    fn sample<R: Rng>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + uniform_below(rng, (hi - lo + 1) as u64) as usize
    }
}

/// Unbiased sample from `[0, n)` by widening multiply with rejection
/// (Lemire's method).
fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let low = m as u64;
        if low >= n && low < n.wrapping_neg() % n + n {
            continue; // reject the biased sliver
        }
        if low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

/// SplitMix64: 64 bits of state, one add + two xor-shift-multiplies per
/// output. Deterministic and portable.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Named to match `rand::SeedableRng` so call
    /// sites read identically.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 1234567, from the SplitMix64 reference
        // implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SplitMix64::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut buckets = [0usize; 7];
        for _ in 0..70_000 {
            buckets[rng.gen_range(0..7)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "{buckets:?}");
        }
    }
}
