//! Random unordered labeled trees.

use crate::rng::Rng;
use cxu_tree::{NodeId, Symbol, Tree};

/// Shape parameters for [`random_tree`].
#[derive(Clone, Debug)]
pub struct TreeParams {
    /// Exact number of nodes.
    pub nodes: usize,
    /// Number of distinct labels, drawn as `l0..l{alphabet-1}` (or from
    /// `labels` if set).
    pub alphabet: usize,
    /// Explicit label pool; overrides `alphabet` when non-empty.
    pub labels: Vec<Symbol>,
    /// Bias toward depth: with probability `deep_bias` a new node attaches
    /// under the most recently added node instead of a uniformly random
    /// one. 0.0 gives uniformly random attachment (shallow, bushy trees);
    /// values near 1.0 give path-like trees.
    pub deep_bias: f64,
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams {
            nodes: 50,
            alphabet: 4,
            labels: Vec::new(),
            deep_bias: 0.3,
        }
    }
}

impl TreeParams {
    /// The label pool this parameter set draws from.
    pub fn pool(&self) -> Vec<Symbol> {
        if !self.labels.is_empty() {
            self.labels.clone()
        } else {
            (0..self.alphabet.max(1))
                .map(|i| Symbol::intern(&format!("l{i}")))
                .collect()
        }
    }
}

/// Generates a random tree by uniform random attachment (with optional
/// depth bias). Runs in `O(nodes)`.
pub fn random_tree<R: Rng>(rng: &mut R, params: &TreeParams) -> Tree {
    let pool = params.pool();
    let pick = |rng: &mut R| pool[rng.gen_range(0..pool.len())];
    let mut t = Tree::new(pick(rng));
    let mut ids: Vec<NodeId> = vec![t.root()];
    let mut last = t.root();
    for _ in 1..params.nodes.max(1) {
        let parent = if rng.gen_bool(params.deep_bias.clamp(0.0, 1.0)) {
            last
        } else {
            ids[rng.gen_range(0..ids.len())]
        };
        let label = pick(rng);
        last = t.build_child(parent, label);
        ids.push(last);
    }
    t
}

/// A uniformly random node of a tree (live nodes only).
pub fn random_node<R: Rng>(rng: &mut R, t: &Tree) -> NodeId {
    let nodes: Vec<NodeId> = t.nodes().collect();
    nodes[rng.gen_range(0..nodes.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64 as SmallRng;

    #[test]
    fn exact_node_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [1, 2, 10, 200] {
            let t = random_tree(
                &mut rng,
                &TreeParams {
                    nodes: n,
                    ..TreeParams::default()
                },
            );
            assert_eq!(t.live_count(), n);
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let p = TreeParams::default();
        let a = random_tree(&mut SmallRng::seed_from_u64(7), &p);
        let b = random_tree(&mut SmallRng::seed_from_u64(7), &p);
        assert_eq!(cxu_tree::text::to_text(&a), cxu_tree::text::to_text(&b));
    }

    #[test]
    fn alphabet_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = random_tree(
            &mut rng,
            &TreeParams {
                nodes: 300,
                alphabet: 2,
                ..TreeParams::default()
            },
        );
        assert!(t.alphabet().len() <= 2);
    }

    #[test]
    fn deep_bias_increases_height() {
        let shallow = random_tree(
            &mut SmallRng::seed_from_u64(5),
            &TreeParams {
                nodes: 300,
                deep_bias: 0.0,
                ..TreeParams::default()
            },
        );
        let deep = random_tree(
            &mut SmallRng::seed_from_u64(5),
            &TreeParams {
                nodes: 300,
                deep_bias: 0.95,
                ..TreeParams::default()
            },
        );
        assert!(deep.height() > shallow.height());
    }

    #[test]
    fn explicit_labels() {
        let mut rng = SmallRng::seed_from_u64(9);
        let labels = vec![Symbol::intern("only")];
        let t = random_tree(
            &mut rng,
            &TreeParams {
                nodes: 20,
                labels,
                ..TreeParams::default()
            },
        );
        assert!(t.nodes().all(|n| t.label(n).as_str() == "only"));
    }

    #[test]
    fn random_node_is_live() {
        let mut rng = SmallRng::seed_from_u64(11);
        let t = random_tree(&mut rng, &TreeParams::default());
        for _ in 0..20 {
            assert!(t.is_alive(random_node(&mut rng, &t)));
        }
    }
}
