//! Document generators for the paper's motivating scenarios.
//!
//! Figure 1 of the paper shows an inventory of books, each with nested
//! metadata and a `quantity`; the running example inserts `<restock/>`
//! into low-stock books. [`inventory`] generates documents of that shape
//! at any scale. [`bibliography`] generates a flatter, citation-style
//! corpus exercising deeper label variety.

use crate::rng::Rng;
use cxu_tree::Tree;

/// Parameters for [`inventory`].
#[derive(Clone, Debug)]
pub struct InventoryParams {
    /// Number of `book` elements.
    pub books: usize,
    /// Probability that a book's quantity is low (gets a `low` marker
    /// child under `quantity`, standing in for the paper's `< 10` value
    /// predicate, which the structural fragment cannot express).
    pub low_stock_rate: f64,
    /// Probability that the `quantity` sits under an extra `info` level
    /// (exercises the `.//quantity` descendant predicate).
    pub nested_rate: f64,
}

impl Default for InventoryParams {
    fn default() -> InventoryParams {
        InventoryParams {
            books: 20,
            low_stock_rate: 0.3,
            nested_rate: 0.5,
        }
    }
}

/// Generates a Figure 1-style inventory:
///
/// ```text
/// inventory( book( title author quantity(low?) | info(quantity(low?)) )* )
/// ```
///
/// The paper's constraint *C* "books whose quantity descendant is below
/// 10" becomes the structural pattern `inventory/book[.//quantity/low]`.
pub fn inventory<R: Rng>(rng: &mut R, params: &InventoryParams) -> Tree {
    let mut t = Tree::new("inventory");
    let root = t.root();
    for _ in 0..params.books {
        let book = t.build_child(root, "book");
        t.build_child(book, "title");
        t.build_child(book, "author");
        let qparent = if rng.gen_bool(params.nested_rate.clamp(0.0, 1.0)) {
            t.build_child(book, "info")
        } else {
            book
        };
        let q = t.build_child(qparent, "quantity");
        if rng.gen_bool(params.low_stock_rate.clamp(0.0, 1.0)) {
            t.build_child(q, "low");
        }
    }
    t
}

/// Generates a bibliography corpus: `bib( article|book ( title, author+,
/// year, (cite ref*)? )* )`.
pub fn bibliography<R: Rng>(rng: &mut R, entries: usize) -> Tree {
    let mut t = Tree::new("bib");
    let root = t.root();
    for _ in 0..entries {
        let kind = if rng.gen_bool(0.5) { "article" } else { "book" };
        let e = t.build_child(root, kind);
        t.build_child(e, "title");
        for _ in 0..rng.gen_range(1..=3) {
            t.build_child(e, "author");
        }
        t.build_child(e, "year");
        if rng.gen_bool(0.4) {
            let c = t.build_child(e, "cite");
            for _ in 0..rng.gen_range(1..=4) {
                t.build_child(c, "ref");
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64 as SmallRng;
    use cxu_pattern::{eval, xpath};

    #[test]
    fn inventory_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = inventory(
            &mut rng,
            &InventoryParams {
                books: 10,
                ..InventoryParams::default()
            },
        );
        let books = eval::eval(&xpath::parse("inventory/book").unwrap(), &t);
        assert_eq!(books.len(), 10);
        // Every book has a quantity descendant.
        let qs = eval::eval(&xpath::parse("inventory/book//quantity").unwrap(), &t);
        assert_eq!(qs.len(), 10);
    }

    #[test]
    fn low_stock_rate_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let all_low = inventory(
            &mut rng,
            &InventoryParams {
                books: 5,
                low_stock_rate: 1.0,
                ..InventoryParams::default()
            },
        );
        let low = eval::eval(
            &xpath::parse("inventory/book[.//quantity/low]").unwrap(),
            &all_low,
        );
        assert_eq!(low.len(), 5);
        let none_low = inventory(
            &mut rng,
            &InventoryParams {
                books: 5,
                low_stock_rate: 0.0,
                ..InventoryParams::default()
            },
        );
        let low2 = eval::eval(
            &xpath::parse("inventory/book[.//quantity/low]").unwrap(),
            &none_low,
        );
        assert!(low2.is_empty());
    }

    #[test]
    fn nesting_exercises_descendant_axis() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = inventory(
            &mut rng,
            &InventoryParams {
                books: 8,
                nested_rate: 1.0,
                ..InventoryParams::default()
            },
        );
        // With nesting forced, book/quantity (child axis) finds nothing…
        let direct = eval::eval(&xpath::parse("inventory/book/quantity").unwrap(), &t);
        assert!(direct.is_empty());
        // …while the descendant axis finds all of them.
        let deep = eval::eval(&xpath::parse("inventory/book//quantity").unwrap(), &t);
        assert_eq!(deep.len(), 8);
    }

    #[test]
    fn bibliography_shape() {
        let mut rng = SmallRng::seed_from_u64(4);
        let t = bibliography(&mut rng, 25);
        let titles = eval::eval(&xpath::parse("bib/*/title").unwrap(), &t);
        assert_eq!(titles.len(), 25);
        let authors = eval::eval(&xpath::parse("bib//author").unwrap(), &t);
        assert!(authors.len() >= 25);
    }

    #[test]
    fn deterministic() {
        let p = InventoryParams::default();
        let a = inventory(&mut SmallRng::seed_from_u64(7), &p);
        let b = inventory(&mut SmallRng::seed_from_u64(7), &p);
        assert_eq!(cxu_tree::text::to_text(&a), cxu_tree::text::to_text(&b));
    }
}
