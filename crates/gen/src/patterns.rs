//! Random tree patterns over `P^{//,[],*}` and `P^{//,*}`.

use crate::rng::Rng;
use cxu_pattern::{Axis, PNodeId, Pattern};
use cxu_tree::Symbol;

/// Shape parameters for [`random_pattern`].
#[derive(Clone, Debug)]
pub struct PatternParams {
    /// Exact number of pattern nodes.
    pub nodes: usize,
    /// Number of distinct labels (`l0..`), or an explicit pool.
    pub alphabet: usize,
    /// Explicit label pool; overrides `alphabet` when non-empty.
    pub labels: Vec<Symbol>,
    /// Probability that a node is the wildcard `*`.
    pub wildcard_rate: f64,
    /// Probability that an edge is a descendant (`//`) edge.
    pub descendant_rate: f64,
    /// Probability that a new node attaches as a *branch* (off the
    /// current spine) rather than extending the spine. 0.0 yields linear
    /// patterns (`P^{//,*}`).
    pub branch_rate: f64,
}

impl Default for PatternParams {
    fn default() -> PatternParams {
        PatternParams {
            nodes: 6,
            alphabet: 3,
            labels: Vec::new(),
            wildcard_rate: 0.15,
            descendant_rate: 0.3,
            branch_rate: 0.3,
        }
    }
}

impl PatternParams {
    /// A parameter set that generates linear patterns only.
    pub fn linear(nodes: usize) -> PatternParams {
        PatternParams {
            nodes,
            branch_rate: 0.0,
            ..PatternParams::default()
        }
    }

    fn pool(&self) -> Vec<Symbol> {
        if !self.labels.is_empty() {
            self.labels.clone()
        } else {
            (0..self.alphabet.max(1))
                .map(|i| Symbol::intern(&format!("l{i}")))
                .collect()
        }
    }
}

/// Generates a random pattern. The output node is the end of the spine
/// (so `branch_rate == 0` produces members of `P^{//,*}` exactly).
pub fn random_pattern<R: Rng>(rng: &mut R, params: &PatternParams) -> Pattern {
    let pool = params.pool();
    let label = |rng: &mut R| -> Option<Symbol> {
        if rng.gen_bool(params.wildcard_rate.clamp(0.0, 1.0)) {
            None
        } else {
            Some(pool[rng.gen_range(0..pool.len())])
        }
    };
    let mut p = Pattern::new(label(rng));
    let mut spine_tip = p.root();
    let mut all: Vec<PNodeId> = vec![p.root()];
    for _ in 1..params.nodes.max(1) {
        let axis = if rng.gen_bool(params.descendant_rate.clamp(0.0, 1.0)) {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let lbl = label(rng);
        if rng.gen_bool(params.branch_rate.clamp(0.0, 1.0)) {
            // Branch off any existing node.
            let at = all[rng.gen_range(0..all.len())];
            let n = p.add_child(at, axis, lbl);
            all.push(n);
        } else {
            let n = p.add_child(spine_tip, axis, lbl);
            spine_tip = n;
            all.push(n);
        }
    }
    p.set_output(spine_tip);
    p
}

/// A random pattern guaranteed valid for deletions (`𝒪(p) ≠ ROOT(p)`):
/// at least two spine nodes.
pub fn random_delete_pattern<R: Rng>(rng: &mut R, params: &PatternParams) -> Pattern {
    let mut params = params.clone();
    params.nodes = params.nodes.max(2);
    loop {
        let p = random_pattern(rng, &params);
        if p.output() != p.root() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64 as SmallRng;

    #[test]
    fn exact_node_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [1, 3, 12] {
            let p = random_pattern(
                &mut rng,
                &PatternParams {
                    nodes: n,
                    ..PatternParams::default()
                },
            );
            assert_eq!(p.len(), n);
        }
    }

    #[test]
    fn linear_params_give_linear_patterns() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let p = random_pattern(&mut rng, &PatternParams::linear(8));
            assert!(p.is_linear(), "{p:?}");
        }
    }

    #[test]
    fn zero_rates_give_child_only_labeled() {
        let mut rng = SmallRng::seed_from_u64(3);
        let p = random_pattern(
            &mut rng,
            &PatternParams {
                nodes: 10,
                wildcard_rate: 0.0,
                descendant_rate: 0.0,
                branch_rate: 0.0,
                ..PatternParams::default()
            },
        );
        for n in p.node_ids() {
            assert!(p.label(n).is_some());
            assert_ne!(p.axis(n), Some(Axis::Descendant));
        }
    }

    #[test]
    fn all_wildcards() {
        let mut rng = SmallRng::seed_from_u64(4);
        let p = random_pattern(
            &mut rng,
            &PatternParams {
                nodes: 5,
                wildcard_rate: 1.0,
                ..PatternParams::default()
            },
        );
        assert!(p.node_ids().all(|n| p.label(n).is_none()));
        assert!(p.star_length() >= 1);
    }

    #[test]
    fn delete_pattern_never_roots_output() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50 {
            let p = random_delete_pattern(
                &mut rng,
                &PatternParams {
                    nodes: 4,
                    branch_rate: 0.8,
                    ..PatternParams::default()
                },
            );
            assert_ne!(p.output(), p.root());
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let params = PatternParams::default();
        let a = random_pattern(&mut SmallRng::seed_from_u64(9), &params);
        let b = random_pattern(&mut SmallRng::seed_from_u64(9), &params);
        assert!(a.structurally_eq(&b));
    }

    #[test]
    fn generated_patterns_evaluate() {
        // Smoke: every generated pattern embeds into its own model.
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..30 {
            let p = random_pattern(&mut rng, &PatternParams::default());
            let m = p.model_fresh(&[]);
            assert!(cxu_pattern::eval::matches(&p, &m), "{p:?}");
        }
    }
}
