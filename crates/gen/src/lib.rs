//! # cxu-gen — workload generators
//!
//! Deterministic (seeded) generators for the experiment harness:
//!
//! * [`trees`] — random unordered labeled trees with controlled size,
//!   branching, and alphabet;
//! * [`patterns`] — random tree patterns with controlled wildcard,
//!   descendant-edge, and branching rates (rate 0 branches = linear
//!   patterns, the `P^{//,*}` class);
//! * [`docs`] — the paper's motivating documents: Figure 1-style
//!   inventories and a bibliography corpus;
//! * [`program`] — the §1 "pidgin language": straight-line programs of
//!   reads and updates over a document, used by the compiler-optimization
//!   experiment (E9);
//! * [`analysis`] — the §1 compiler itself: conflict matrices, hoistable
//!   reads, and conflict-checked common subexpression elimination;
//! * [`rng`] — the in-tree [`rng::SplitMix64`] PRNG every generator is
//!   driven by (no external `rand` dependency, so the workspace builds
//!   hermetically);
//! * [`json`] / [`wire`] — a dependency-free JSON value type and the
//!   round-trippable op/program wire schema shared by `cxu serve` and
//!   `cxu loadgen`.
//!
//! Everything takes an explicit [`rng::Rng`] so benchmark runs are
//! reproducible from a seed.

pub mod analysis;
pub mod docs;
pub mod json;
pub mod parse;
pub mod patterns;
pub mod program;
pub mod rng;
pub mod trees;
pub mod wire;
