//! Whole-program conflict analysis — the §1 compiler, assembled.
//!
//! The paper motivates conflict detection with two transformations:
//! *code motion* (hoist a read above an update it does not conflict
//! with) and *common subexpression elimination* (reuse an earlier read's
//! result when no conflicting update intervenes). This module builds
//! both analyses for [`Program`]s over linear patterns:
//!
//! * [`conflict_matrix`] — for every (update, read) pair, whether the
//!   PTIME detector can prove independence;
//! * [`hoistable`] — reads that may move above their immediately
//!   preceding update;
//! * [`cse_pairs`] — later reads that may reuse an earlier read's result
//!   because every update in between is provably independent;
//! * [`eliminate_common_reads`] — applies CSE, returning the rewritten
//!   program and the number of reads eliminated.
//!
//! Reorderings justified here are *tree-semantics* independent: the
//! cached result is reused **with its subtrees**, so node-set stability
//! alone (node semantics) would not be sound — exactly the distinction
//! §3 draws between the two reference-based semantics.

use crate::program::{Program, Stmt};
use cxu_core::detect;
use cxu_ops::Semantics;

/// One entry of the conflict matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairVerdict {
    /// Index of the update statement.
    pub update: usize,
    /// Index of the read statement (after the update).
    pub read: usize,
    /// `true` iff the detector proves the pair independent under the
    /// given semantics.
    pub independent: bool,
}

/// Classifies every (update, later read) pair. Reads with branching
/// patterns are conservatively reported as conflicting (the PTIME
/// detector does not apply; §5 says the exact question is NP-complete).
pub fn conflict_matrix(p: &Program, sem: Semantics) -> Vec<PairVerdict> {
    let mut out = Vec::new();
    for (ui, us) in p.stmts.iter().enumerate() {
        let Stmt::Update(u) = us else { continue };
        for (ri, rs) in p.stmts.iter().enumerate().skip(ui + 1) {
            let Stmt::Read(r) = rs else { continue };
            let independent = detect::independent(r, u, sem).unwrap_or(false);
            out.push(PairVerdict {
                update: ui,
                read: ri,
                independent,
            });
        }
    }
    out
}

/// Reads that can hoist above the update immediately before them
/// (tree semantics, so consumers of the read's subtrees stay correct).
pub fn hoistable(p: &Program) -> Vec<usize> {
    let mut out = Vec::new();
    for ri in 1..p.stmts.len() {
        let (Stmt::Update(u), Stmt::Read(r)) = (&p.stmts[ri - 1], &p.stmts[ri]) else {
            continue;
        };
        if detect::independent(r, u, Semantics::Tree).unwrap_or(false) {
            out.push(ri);
        }
    }
    out
}

/// Pairs `(earlier, later)` of read statements with *identical patterns*
/// where every update between them is provably tree-independent of the
/// read — the later read may reuse the earlier result.
pub fn cse_pairs(p: &Program) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..p.stmts.len() {
        let Stmt::Read(ri) = &p.stmts[i] else {
            continue;
        };
        'later: for j in i + 1..p.stmts.len() {
            let Stmt::Read(rj) = &p.stmts[j] else {
                continue;
            };
            if !ri.pattern().structurally_eq(rj.pattern()) {
                continue;
            }
            for stmt in &p.stmts[i + 1..j] {
                if let Stmt::Update(u) = stmt {
                    if !detect::independent(rj, u, Semantics::Tree).unwrap_or(false) {
                        continue 'later;
                    }
                }
            }
            out.push((i, j));
        }
    }
    out
}

/// Applies CSE: every read identified by [`cse_pairs`] whose earlier
/// partner survives is dropped from the program (its consumer would read
/// the cached binding instead). Returns the rewritten program and the
/// number of reads eliminated.
pub fn eliminate_common_reads(p: &Program) -> (Program, usize) {
    let pairs = cse_pairs(p);
    let mut dead: Vec<usize> = pairs.iter().map(|&(_, j)| j).collect();
    dead.sort_unstable();
    dead.dedup();
    let stmts = p
        .stmts
        .iter()
        .enumerate()
        .filter(|(i, _)| !dead.contains(i))
        .map(|(_, s)| s.clone())
        .collect();
    (Program { stmts }, dead.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::observe;
    use cxu_ops::{Insert, Read, Update};
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn read(p: &str) -> Stmt {
        Stmt::Read(Read::new(parse(p).unwrap()))
    }

    fn ins(p: &str, x: &str) -> Stmt {
        Stmt::Update(Update::Insert(Insert::new(
            parse(p).unwrap(),
            text::parse(x).unwrap(),
        )))
    }

    fn prog(stmts: Vec<Stmt>) -> Program {
        Program { stmts }
    }

    #[test]
    fn matrix_matches_section1() {
        let p = prog(vec![
            read("x//A"),
            ins("x/B", "C"),
            read("x//C"),
            read("x//D"),
        ]);
        let m = conflict_matrix(&p, Semantics::Node);
        assert_eq!(m.len(), 2);
        assert!(!m[0].independent, "x//C conflicts");
        assert!(m[1].independent, "x//D independent");
    }

    #[test]
    fn hoistable_identifies_safe_reads() {
        let p = prog(vec![ins("x/B", "C"), read("x//D"), read("x//C")]);
        assert_eq!(hoistable(&p), vec![1]);
    }

    #[test]
    fn cse_across_independent_update() {
        // read x//D; insert C under B; read x//D again — reusable.
        let p = prog(vec![read("x//D"), ins("x/B", "C"), read("x//D")]);
        assert_eq!(cse_pairs(&p), vec![(0, 2)]);
        let (opt, removed) = eliminate_common_reads(&p);
        assert_eq!(removed, 1);
        assert_eq!(opt.stmts.len(), 2);
        // Observations: the surviving read sees what the eliminated one
        // would have (the doc is observed once instead of twice, with
        // identical values).
        let doc = text::parse("x(B D(D))").unwrap();
        let obs = observe(&p, &doc);
        assert_eq!(obs[0], obs[1], "CSE-justified reads observe equal values");
    }

    #[test]
    fn cse_blocked_by_conflicting_update() {
        let p = prog(vec![read("x//C"), ins("x/B", "C"), read("x//C")]);
        assert!(cse_pairs(&p).is_empty());
        let (_, removed) = eliminate_common_reads(&p);
        assert_eq!(removed, 0);
    }

    #[test]
    fn cse_requires_tree_semantics() {
        // read x/B (node-stable under the insert, but the B subtree gains
        // a C child): reuse of the subtree value would be wrong, so the
        // analysis must NOT pair these reads.
        let p = prog(vec![read("x/B"), ins("x/B", "C"), read("x/B")]);
        assert!(cse_pairs(&p).is_empty());
    }

    #[test]
    fn cse_chain_reuses_earliest() {
        let p = prog(vec![read("x//D"), read("x//D"), read("x//D")]);
        let pairs = cse_pairs(&p);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(0, 2)));
        let (opt, removed) = eliminate_common_reads(&p);
        assert_eq!(removed, 2);
        assert_eq!(opt.stmts.len(), 1);
    }

    #[test]
    fn cse_observationally_sound_on_random_programs() {
        use crate::program::{random_program, ProgramParams};
        use crate::rng::SplitMix64 as SmallRng;
        use crate::trees::{random_tree, TreeParams};
        for seed in 0..15u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let p = random_program(&mut rng, &ProgramParams::default());
            let pairs = cse_pairs(&p);
            if pairs.is_empty() {
                continue;
            }
            let doc = random_tree(
                &mut SmallRng::seed_from_u64(seed ^ 0xc5e),
                &TreeParams {
                    nodes: 50,
                    alphabet: 3,
                    ..TreeParams::default()
                },
            );
            let obs = observe(&p, &doc);
            // Map statement index → observation index.
            let read_indices: Vec<usize> = p
                .stmts
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Stmt::Read(_)))
                .map(|(i, _)| i)
                .collect();
            for (i, j) in pairs {
                let oi = read_indices.iter().position(|&x| x == i).unwrap();
                let oj = read_indices.iter().position(|&x| x == j).unwrap();
                assert_eq!(
                    obs[oi], obs[oj],
                    "seed {seed}: CSE pair ({i},{j}) observed different values"
                );
            }
        }
    }
}
