//! Parser and printer for the paper's pidgin-language surface syntax.
//!
//! §1 writes programs like:
//!
//! ```text
//! y = read $x//A;
//! insert $x/B, <C/>;
//! z = read $x//C
//! ```
//!
//! This module parses that syntax into a [`Program`] (and prints one
//! back), so the compiler analyses in [`crate::analysis`] can run on
//! textual inputs — e.g. via `cxu analyze`. There is a single document
//! variable (`$x` or any other `$name`; the name is remembered only for
//! printing). `$x//A` translates to the pattern `*//A`: the variable
//! denotes the document, whose root may carry any label. Inserted
//! subtrees accept either `<xml/>` or the `a(b c)` term syntax.

use crate::program::{Program, Stmt};
use cxu_ops::{Delete, Insert, Read, Update};
use cxu_pattern::{xpath, Axis, Pattern};
use cxu_tree::{text, xml, Tree};
use std::fmt;

/// Error from [`parse_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramParseError {
    /// 1-based statement number where the error occurred.
    pub stmt: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ProgramParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "statement {}: {}", self.stmt, self.msg)
    }
}

impl std::error::Error for ProgramParseError {}

/// Parses `$var` + XPath-rest into a pattern anchored at a wildcard root.
fn parse_doc_path(src: &str, stmt: usize) -> Result<Pattern, ProgramParseError> {
    let err = |msg: String| ProgramParseError { stmt, msg };
    let src = src.trim();
    let rest = src
        .strip_prefix('$')
        .ok_or_else(|| err(format!("expected a document path like $x//A, got '{src}'")))?;
    let split = rest
        .find(['/', '['])
        .ok_or_else(|| err(format!("document path '{src}' selects nothing")))?;
    let (_, tail) = rest.split_at(split);
    // `$x//A` → `*//A`; `$x/B` → `*/B`; `$x[..]...` → predicates on the root.
    let expr = format!("*{tail}");
    xpath::parse(&expr).map_err(|e| err(format!("bad path '{src}': {e}")))
}

fn parse_payload(src: &str, stmt: usize) -> Result<Tree, ProgramParseError> {
    let src = src.trim();
    if src.starts_with('<') {
        xml::parse(src).map_err(|e| ProgramParseError {
            stmt,
            msg: format!("bad XML payload: {e}"),
        })
    } else {
        text::parse(src).map_err(|e| ProgramParseError {
            stmt,
            msg: format!("bad payload: {e}"),
        })
    }
}

/// Parses a pidgin program. Statements are separated by `;` or newlines;
/// `#`-comments run to end of line.
pub fn parse_program(src: &str) -> Result<Program, ProgramParseError> {
    let mut stmts = Vec::new();
    let cleaned: String = src
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    for (idx, raw) in cleaned
        .split([';', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .enumerate()
    {
        let stmt_no = idx + 1;
        let err = |msg: String| ProgramParseError { stmt: stmt_no, msg };
        if let Some(rest) = raw.strip_prefix("insert ") {
            let (path, payload) = rest
                .split_once(',')
                .ok_or_else(|| err("insert needs '<path>, <subtree>'".into()))?;
            let pattern = parse_doc_path(path, stmt_no)?;
            let subtree = parse_payload(payload, stmt_no)?;
            stmts.push(Stmt::Update(Update::Insert(Insert::new(pattern, subtree))));
        } else if let Some(rest) = raw.strip_prefix("delete ") {
            let pattern = parse_doc_path(rest, stmt_no)?;
            let del = Delete::new(pattern).map_err(|e| err(format!("invalid delete: {e}")))?;
            stmts.push(Stmt::Update(Update::Delete(del)));
        } else if let Some((_var, rhs)) = raw.split_once('=') {
            let rhs = rhs.trim();
            let path = rhs
                .strip_prefix("read ")
                .ok_or_else(|| err(format!("expected 'read $…', got '{rhs}'")))?;
            stmts.push(Stmt::Read(Read::new(parse_doc_path(path, stmt_no)?)));
        } else if let Some(path) = raw.strip_prefix("read ") {
            stmts.push(Stmt::Read(Read::new(parse_doc_path(path, stmt_no)?)));
        } else {
            return Err(err(format!("unrecognized statement '{raw}'")));
        }
    }
    Ok(Program { stmts })
}

/// Prints a program back in the pidgin syntax (reads get `y0, y1, …`).
pub fn to_source(p: &Program) -> String {
    let mut out = String::new();
    let mut reads = 0usize;
    for stmt in &p.stmts {
        match stmt {
            Stmt::Read(r) => {
                out.push_str(&format!("y{reads} = read {}", doc_path(r.pattern())));
                reads += 1;
            }
            Stmt::Update(Update::Insert(i)) => {
                out.push_str(&format!(
                    "insert {}, {}",
                    doc_path(i.pattern()),
                    text::to_text(i.subtree())
                ));
            }
            Stmt::Update(Update::Delete(d)) => {
                out.push_str(&format!("delete {}", doc_path(d.pattern())));
            }
        }
        out.push_str(";\n");
    }
    out
}

/// Renders a pattern as `$x`-rooted path where possible: a wildcard root
/// becomes the variable, otherwise the root label is shown explicitly
/// (the pattern constrains the document root's label).
fn doc_path(p: &Pattern) -> String {
    let rendered = xpath::to_xpath(p);
    if p.label(p.root()).is_none() && p.children(p.root()).len() == 1 {
        // `*//A` → `$x//A`; `*/B` → `$x/B`.
        let child = p.children(p.root())[0];
        let sep = match p.axis(child) {
            Some(Axis::Descendant) => "//",
            _ => "/",
        };
        let tail = rendered
            .strip_prefix('*')
            .and_then(|r| r.strip_prefix(sep))
            .unwrap_or(&rendered);
        format!("$x{sep}{tail}")
    } else {
        format!("$x:[{rendered}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::conflict_matrix;
    use cxu_ops::Semantics;

    const SECTION1: &str = "\
        y = read $x//A;\n\
        insert $x/B, <C/>;\n\
        z = read $x//C\n";

    #[test]
    fn parses_section1_program() {
        let p = parse_program(SECTION1).unwrap();
        assert_eq!(p.stmts.len(), 3);
        assert!(matches!(p.stmts[0], Stmt::Read(_)));
        assert!(matches!(p.stmts[1], Stmt::Update(Update::Insert(_))));
        // The analysis reproduces §1's verdicts.
        let m = conflict_matrix(&p, Semantics::Node);
        assert_eq!(m.len(), 1);
        assert!(!m[0].independent, "read $x//C conflicts with the insert");
    }

    #[test]
    fn variable_path_translation() {
        let p = parse_program("y = read $doc//A").unwrap();
        let Stmt::Read(r) = &p.stmts[0] else { panic!() };
        assert_eq!(r.pattern().to_string(), "*//A");
        assert!(r.pattern().label(r.pattern().root()).is_none());
    }

    #[test]
    fn predicates_in_paths() {
        let p = parse_program("insert $x/book[.//quantity/low], restock").unwrap();
        let Stmt::Update(Update::Insert(i)) = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(i.pattern().len(), 4); // *, book, quantity, low
        assert_eq!(i.subtree().live_count(), 1);
    }

    #[test]
    fn payload_formats() {
        let a = parse_program("insert $x/B, <C><D/></C>").unwrap();
        let b = parse_program("insert $x/B, C(D)").unwrap();
        let (Stmt::Update(Update::Insert(ia)), Stmt::Update(Update::Insert(ib))) =
            (&a.stmts[0], &b.stmts[0])
        else {
            panic!()
        };
        assert!(cxu_tree::iso::isomorphic(ia.subtree(), ib.subtree()));
    }

    #[test]
    fn delete_statements() {
        let p = parse_program("delete $x/B/C").unwrap();
        assert!(matches!(p.stmts[0], Stmt::Update(Update::Delete(_))));
        // Deleting the root is rejected.
        assert!(parse_program("delete $x").is_err());
    }

    #[test]
    fn comments_and_blank_lines() {
        let src = "# header\n\ny = read $x//A  # trailing\n\n# done\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn bare_read_without_binding() {
        let p = parse_program("read $x//A").unwrap();
        assert!(matches!(p.stmts[0], Stmt::Read(_)));
    }

    #[test]
    fn errors_carry_statement_numbers() {
        let e = parse_program("y = read $x//A; frobnicate $x").unwrap_err();
        assert_eq!(e.stmt, 2);
        let e2 = parse_program("insert $x/B").unwrap_err();
        assert!(e2.msg.contains("insert needs"));
    }

    #[test]
    fn roundtrip_through_source() {
        let p = parse_program(SECTION1).unwrap();
        let src = to_source(&p);
        let q = parse_program(&src).unwrap();
        assert_eq!(p.stmts.len(), q.stmts.len());
        // Patterns survive structurally.
        for (a, b) in p.stmts.iter().zip(&q.stmts) {
            match (a, b) {
                (Stmt::Read(ra), Stmt::Read(rb)) => {
                    assert!(ra.pattern().structurally_eq(rb.pattern()))
                }
                (Stmt::Update(ua), Stmt::Update(ub)) => {
                    assert!(ua.pattern().structurally_eq(ub.pattern()))
                }
                _ => panic!("statement kinds diverged"),
            }
        }
    }

    #[test]
    fn observational_run_of_parsed_program() {
        use crate::program::observe;
        let p = parse_program(SECTION1).unwrap();
        let doc = text::parse("anyroot(B A)").unwrap();
        let obs = observe(&p, &doc);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0], vec!["A"]);
        assert_eq!(obs[1], vec!["C"]);
    }
}
