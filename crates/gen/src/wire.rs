//! Round-trippable JSON wire schema for ops and programs.
//!
//! Until now the repo's JSON was emit-only (CLI reports, bench files).
//! The serving layer needs the opposite direction too: `cxu serve`
//! receives operations *as* JSON and `cxu loadgen` renders generated
//! programs *to* JSON, and the two must agree exactly. This module
//! defines that schema on top of [`crate::json`]:
//!
//! ```json
//! {"kind": "read",   "pattern": "*//A"}
//! {"kind": "insert", "pattern": "*/B[C]", "subtree": "C(D,E)"}
//! {"kind": "delete", "pattern": "a/b"}
//! ```
//!
//! Patterns travel in the paper fragment's surface syntax
//! ([`cxu_pattern::xpath`]), inserted payloads in the compact tree text
//! form ([`cxu_tree::text`]). Both renderers are documented to re-parse
//! to structurally-equal values, which gives the schema its round-trip
//! property: `stmt_from_json(stmt_to_json(s))` is equivalent to `s`
//! (checked by the seeded property test below and exposed to callers as
//! [`program_eq`]). Equivalence is structural — pattern node identity
//! and predicate-chain spelling may normalize — which is exactly the
//! granularity at which every detector in the stack operates.

use crate::json::Json;
use crate::program::{Program, Stmt};
use cxu_ops::{Delete, Insert, Read, Update};
use cxu_pattern::xpath;
use cxu_tree::{iso, text};
use std::fmt;

/// Error decoding a wire-schema value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn werr(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// Encodes one statement as a wire-schema object.
pub fn stmt_to_json(s: &Stmt) -> Json {
    match s {
        Stmt::Read(r) => Json::obj(vec![
            ("kind", Json::str("read")),
            ("pattern", Json::str(xpath::to_xpath(r.pattern()))),
        ]),
        Stmt::Update(Update::Insert(i)) => Json::obj(vec![
            ("kind", Json::str("insert")),
            ("pattern", Json::str(xpath::to_xpath(i.pattern()))),
            ("subtree", Json::str(text::to_text(i.subtree()))),
        ]),
        Stmt::Update(Update::Delete(d)) => Json::obj(vec![
            ("kind", Json::str("delete")),
            ("pattern", Json::str(xpath::to_xpath(d.pattern()))),
        ]),
    }
}

/// Decodes one wire-schema object back into a statement.
pub fn stmt_from_json(v: &Json) -> Result<Stmt, WireError> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| werr("op is missing string field 'kind'"))?;
    let pattern_src = v
        .get("pattern")
        .and_then(Json::as_str)
        .ok_or_else(|| werr("op is missing string field 'pattern'"))?;
    let pattern =
        xpath::parse(pattern_src).map_err(|e| werr(format!("bad pattern {pattern_src:?}: {e}")))?;
    match kind {
        "read" => Ok(Stmt::Read(Read::new(pattern))),
        "insert" => {
            let subtree_src = v
                .get("subtree")
                .and_then(Json::as_str)
                .ok_or_else(|| werr("insert op is missing string field 'subtree'"))?;
            let subtree = text::parse(subtree_src)
                .map_err(|e| werr(format!("bad subtree {subtree_src:?}: {e}")))?;
            Ok(Stmt::Update(Update::Insert(Insert::new(pattern, subtree))))
        }
        "delete" => {
            let d = Delete::new(pattern)
                .map_err(|e| werr(format!("bad delete pattern {pattern_src:?}: {e}")))?;
            Ok(Stmt::Update(Update::Delete(d)))
        }
        other => Err(werr(format!(
            "unknown op kind {other:?} (expected read | insert | delete)"
        ))),
    }
}

/// Encodes an update (insert or delete) as a wire-schema object — the
/// same schema as [`stmt_to_json`], which never produces `"read"` here.
pub fn update_to_json(u: &Update) -> Json {
    stmt_to_json(&Stmt::Update(u.clone()))
}

/// Decodes a wire-schema object into an update, rejecting reads: the
/// document-store put path only accepts mutations.
pub fn update_from_json(v: &Json) -> Result<Update, WireError> {
    match stmt_from_json(v)? {
        Stmt::Update(u) => Ok(u),
        Stmt::Read(_) => Err(werr("expected an update op, got a read")),
    }
}

/// Encodes a program as a wire-schema array of op objects.
pub fn program_to_json(p: &Program) -> Json {
    Json::Arr(p.stmts.iter().map(stmt_to_json).collect())
}

/// Decodes a wire-schema array back into a program.
pub fn program_from_json(v: &Json) -> Result<Program, WireError> {
    let items = v
        .as_arr()
        .ok_or_else(|| werr("program must be a JSON array of ops"))?;
    let mut stmts = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        stmts.push(stmt_from_json(item).map_err(|e| werr(format!("op {i}: {}", e.0)))?);
    }
    Ok(Program { stmts })
}

/// A transaction program at wire granularity: revision ids stay
/// strings (this crate has no revision type — the store parses them),
/// guards assert observed winners, ops apply in order.
///
/// ```json
/// {"guards": [{"doc": "d1", "rev": "1-89ab..."}],
///  "ops": [{"doc": "d1", "op": {"kind": "insert", "pattern": "a/b", "subtree": "x"}},
///          {"doc": "d2", "op": {"kind": "delete", "pattern": "a/c"}}]}
/// ```
#[derive(Clone, Debug, Default)]
pub struct TxnWire {
    /// `(doc, rev)` snapshot-read guards.
    pub guards: Vec<(String, String)>,
    /// `(doc, update)` writes, in program order.
    pub ops: Vec<(String, Update)>,
}

/// Encodes a transaction program as a wire-schema object.
pub fn txn_to_json(t: &TxnWire) -> Json {
    let guards: Vec<Json> = t
        .guards
        .iter()
        .map(|(doc, rev)| {
            Json::obj(vec![
                ("doc", Json::str(doc.clone())),
                ("rev", Json::str(rev.clone())),
            ])
        })
        .collect();
    let ops: Vec<Json> = t
        .ops
        .iter()
        .map(|(doc, op)| {
            Json::obj(vec![
                ("doc", Json::str(doc.clone())),
                ("op", update_to_json(op)),
            ])
        })
        .collect();
    Json::obj(vec![("guards", Json::Arr(guards)), ("ops", Json::Arr(ops))])
}

/// Decodes a wire-schema object back into a transaction program.
/// `guards` may be absent (no snapshot assertions); `ops` is required.
pub fn txn_from_json(v: &Json) -> Result<TxnWire, WireError> {
    let mut guards = Vec::new();
    if let Some(g) = v.get("guards") {
        let items = g
            .as_arr()
            .ok_or_else(|| werr("txn field 'guards' must be an array"))?;
        for (i, item) in items.iter().enumerate() {
            let doc = item
                .get("doc")
                .and_then(Json::as_str)
                .ok_or_else(|| werr(format!("guard {i}: missing string field 'doc'")))?;
            let rev = item
                .get("rev")
                .and_then(Json::as_str)
                .ok_or_else(|| werr(format!("guard {i}: missing string field 'rev'")))?;
            guards.push((doc.to_owned(), rev.to_owned()));
        }
    }
    let items = v
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or_else(|| werr("txn is missing array field 'ops'"))?;
    let mut ops = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let doc = item
            .get("doc")
            .and_then(Json::as_str)
            .ok_or_else(|| werr(format!("txn op {i}: missing string field 'doc'")))?;
        let op = item
            .get("op")
            .ok_or_else(|| werr(format!("txn op {i}: missing field 'op'")))?;
        let op = update_from_json(op).map_err(|e| werr(format!("txn op {i}: {}", e.0)))?;
        ops.push((doc.to_owned(), op));
    }
    Ok(TxnWire { guards, ops })
}

/// Structural equivalence of transactions at wire granularity: equal
/// guards, pointwise equal docs, structurally equivalent updates.
pub fn txn_eq(a: &TxnWire, b: &TxnWire) -> bool {
    a.guards == b.guards
        && a.ops.len() == b.ops.len()
        && a.ops.iter().zip(b.ops.iter()).all(|((da, ua), (db, ub))| {
            da == db && stmt_eq(&Stmt::Update(ua.clone()), &Stmt::Update(ub.clone()))
        })
}

/// Structural equivalence of statements at wire granularity: same kind,
/// structurally equal patterns, isomorphic inserted subtrees.
pub fn stmt_eq(a: &Stmt, b: &Stmt) -> bool {
    match (a, b) {
        (Stmt::Read(x), Stmt::Read(y)) => x.pattern().structurally_eq(y.pattern()),
        (Stmt::Update(Update::Insert(x)), Stmt::Update(Update::Insert(y))) => {
            x.pattern().structurally_eq(y.pattern()) && iso::isomorphic(x.subtree(), y.subtree())
        }
        (Stmt::Update(Update::Delete(x)), Stmt::Update(Update::Delete(y))) => {
            x.pattern().structurally_eq(y.pattern())
        }
        _ => false,
    }
}

/// Structural equivalence of programs (pointwise [`stmt_eq`]).
pub fn program_eq(a: &Program, b: &Program) -> bool {
    a.stmts.len() == b.stmts.len()
        && a.stmts
            .iter()
            .zip(b.stmts.iter())
            .all(|(x, y)| stmt_eq(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternParams;
    use crate::program::{random_program, ProgramParams};
    use crate::rng::{Rng, SplitMix64};

    fn roundtrip(p: &Program) {
        let encoded = program_to_json(p).to_string();
        let decoded =
            program_from_json(&Json::parse(&encoded).expect("writer output parses")).unwrap();
        assert!(
            program_eq(p, &decoded),
            "wire roundtrip changed the program: {encoded}"
        );
    }

    /// Property: `from_json(to_json(p)) == p` on seeded random programs,
    /// across linear and branching pattern shapes.
    #[test]
    fn seeded_programs_roundtrip() {
        for seed in [1u64, 7, 42, 1234, 0xC0FFEE, 20260806] {
            let mut rng = SplitMix64::seed_from_u64(seed);
            for branch_rate in [0.0, 0.35] {
                let mut pattern = PatternParams::linear(5);
                pattern.branch_rate = branch_rate;
                pattern.alphabet = 6;
                let params = ProgramParams {
                    len: 24,
                    update_rate: 0.5,
                    delete_rate: 0.4,
                    pattern,
                };
                roundtrip(&random_program(&mut rng, &params));
            }
        }
    }

    #[test]
    fn known_shapes_roundtrip() {
        let src = "y = read $x//A; insert $x/B, C; z = read $x//C; delete $x/B/C";
        let p = crate::parse::parse_program(src).unwrap();
        roundtrip(&p);
        // Spot-check the encoded form is the documented schema.
        let enc = program_to_json(&p);
        let first = &enc.as_arr().unwrap()[0];
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("read"));
        assert!(first.get("pattern").is_some());
    }

    /// Property: `txn_from_json(txn_to_json(t))` is equivalent to `t`
    /// on seeded random transaction programs, across linear and
    /// branching pattern shapes.
    #[test]
    fn seeded_txns_roundtrip() {
        for seed in [1u64, 7, 42, 1234, 0xC0FFEE, 20260808] {
            let mut rng = SplitMix64::seed_from_u64(seed);
            for branch_rate in [0.0, 0.35] {
                let mut pattern = PatternParams::linear(4);
                pattern.branch_rate = branch_rate;
                pattern.alphabet = 6;
                let params = ProgramParams {
                    len: 12,
                    update_rate: 1.0, // txn writes are updates only
                    delete_rate: 0.3,
                    pattern,
                };
                let program = random_program(&mut rng, &params);
                let n_guards = (rng.next_u64() % 3) as usize;
                let txn = TxnWire {
                    guards: (0..n_guards)
                        .map(|i| {
                            (
                                format!("doc-{}", rng.next_u64() % 4),
                                format!("{}-{:032x}", i + 1, rng.next_u64()),
                            )
                        })
                        .collect(),
                    ops: program
                        .stmts
                        .into_iter()
                        .filter_map(|s| match s {
                            Stmt::Update(u) => Some(u),
                            Stmt::Read(_) => None,
                        })
                        .enumerate()
                        .map(|(i, u)| (format!("doc-{}", i % 3), u))
                        .collect(),
                };
                let encoded = txn_to_json(&txn).to_string();
                let decoded =
                    txn_from_json(&Json::parse(&encoded).expect("writer output parses")).unwrap();
                assert!(
                    txn_eq(&txn, &decoded),
                    "txn wire roundtrip changed the program: {encoded}"
                );
            }
        }
    }

    #[test]
    fn txn_decode_rejects_malformed_programs() {
        for bad in [
            r#"{}"#,                                                                // missing ops
            r#"{"ops": 7}"#, // ops not an array
            r#"{"ops": [{"op": {"kind": "delete", "pattern": "a/b"}}]}"#, // op missing doc
            r#"{"ops": [{"doc": "d"}]}"#, // missing op
            r#"{"ops": [{"doc": "d", "op": {"kind": "read", "pattern": "a/b"}}]}"#, // read as write
            r#"{"guards": [{"doc": "d"}], "ops": []}"#, // guard missing rev
            r#"{"guards": 3, "ops": []}"#, // guards not an array
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(txn_from_json(&v).is_err(), "{bad} should be rejected");
        }
        // Guards are optional; an empty program decodes (the store
        // rejects empty writes, not the codec).
        let ok = txn_from_json(&Json::parse(r#"{"ops": []}"#).unwrap()).unwrap();
        assert!(ok.guards.is_empty() && ok.ops.is_empty());
    }

    #[test]
    fn decode_rejects_malformed_ops() {
        for bad in [
            r#"{"pattern": "a/b"}"#,                     // missing kind
            r#"{"kind": "read"}"#,                       // missing pattern
            r#"{"kind": "insert", "pattern": "a/b"}"#,   // missing subtree
            r#"{"kind": "delete", "pattern": "a"}"#,     // delete of the root
            r#"{"kind": "frobnicate", "pattern": "a"}"#, // unknown kind
            r#"{"kind": "read", "pattern": "a//"}"#,     // unparsable pattern
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(stmt_from_json(&v).is_err(), "{bad} should be rejected");
        }
        assert!(program_from_json(&Json::parse("{}").unwrap()).is_err());
    }
}
