//! A minimal, dependency-free JSON value: parser and writer.
//!
//! The workspace is hermetic (no serde), but the serving layer speaks
//! newline-delimited JSON on the wire and the op generators need a
//! round-trippable machine format (`cxu serve`, `cxu loadgen`, the
//! [`crate::wire`] op schema). This module is the shared substrate: a
//! small recursive-descent parser and a writer whose output it can
//! always re-read.
//!
//! Scope: full JSON per RFC 8259 minus one liberty — numbers are held
//! as `f64`, so integers round-trip exactly only up to 2⁵³ (every id,
//! counter, and duration the wire protocol carries is far below that).
//! Object keys keep their insertion order; duplicate keys are kept
//! verbatim (lookup returns the first).

use std::fmt;

/// Maximum nesting depth the parser accepts. Deep enough for any wire
/// payload, shallow enough that hostile input cannot overflow the stack.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as `f64`; integral values print without a dot).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: byte offset plus description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Appends `s` JSON-escaped (with surrounding quotes) to `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact single-line rendering; [`Json::parse`] re-reads it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emitting an unparsable token.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                write_escaped(s, &mut out);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(k, &mut key);
                    write!(f, "{key}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("bad unicode escape"))?,
                            );
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    let s = unsafe { std::str::from_utf8_unchecked(&self.bytes[start..]) };
                    let ch = s.chars().next().expect("peek saw a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash",
            "tabs\tnewlines\nreturns\r",
            "control \u{1} char",
            "unicode λ → 🎄",
        ] {
            let v = Json::Str(s.to_owned());
            let rendered = v.to_string();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "{rendered}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair → one astral scalar.
        assert_eq!(Json::parse(r#""🎄""#).unwrap(), Json::Str("🎄".into()));
        assert!(Json::parse(r#""\ud83c""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn integers_print_without_dot() {
        assert_eq!(Json::Num(7.0).to_string(), "7");
        assert_eq!(Json::Num(-2.0).to_string(), "-2");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(
            Json::from(1_000_000_000_000u64).to_string(),
            "1000000000000"
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_unbounded_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn display_roundtrips() {
        let src = r#"{"id": 3, "route": "check", "ops": [{"kind": "read", "pattern": "*//A"}], "t": true, "x": null}"#;
        let v = Json::parse(src).unwrap();
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn as_u64_guards() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(12.0).as_u64(), Some(12));
        assert_eq!(Json::Str("12".into()).as_u64(), None);
    }
}
