//! # cxu-serve — the conflict-detection daemon
//!
//! The paper casts conflict detection as the check a transaction
//! processor runs *online*, before interleaving concurrent XML updates
//! (§1, §3). This crate is that online layer: a long-running TCP
//! server exposing the sched/runtime/obs stack to clients, plus the
//! seeded closed-loop load generator that drives it.
//!
//! Hermetic by construction: `std::net` + `std::thread` only — no
//! tokio, no serde (the wire format is [`cxu_gen::json`]).
//!
//! ## Wire protocol
//!
//! Newline-delimited JSON both ways: one request object per line, one
//! response object per line, in order, per connection. Routes:
//!
//! * `check` — one operation pair under any semantics → verdict;
//! * `schedule` — a batch of operations → conflict-free rounds;
//! * `doc_put` / `doc_get` / `doc_delete` / `doc_changes` — the
//!   multi-version document store ([`cxu_store`]): MVCC puts with
//!   commutativity-aware auto-merge, winner reads, tombstones, and the
//!   monotonic changes feed;
//! * `metrics` — this server's own [`cxu_obs`] registry (every server
//!   instance owns a private registry; two servers in one process never
//!   bleed counters into each other);
//! * `health` — liveness plus queue/in-flight levels;
//! * `shutdown` — begin graceful shutdown (equivalent to SIGTERM).
//!
//! The full grammar lives in `DESIGN.md` ("Serving") and in
//! [`proto`]'s docs.
//!
//! ## Sharded nonblocking core
//!
//! The server is sharded: N shards (CLI `--shards`) each own their own
//! schedulers — a slice of the memo cache — and a bounded queue drained
//! by one worker. Requests are routed to a home shard by a
//! deterministic hash of their operations' canonical shapes, so
//! repeated shapes always hit a warm cache; idle workers steal queued
//! jobs from other shards but commit stolen verdicts back to the home
//! shard (`shard.rs` documents the soundness argument). Connections are
//! multiplexed by nonblocking IO event loops that pipeline many
//! requests per connection and answer warm-cache `check`s inline,
//! without a queue round-trip.
//!
//! ## Admission control and degradation
//!
//! A request that arrives when its home shard's bounded queue is full
//! is answered `overloaded` immediately — the server never buffers
//! without bound, so overload shows up as explicit rejections at the
//! client, not as silently growing latency. Admitted requests carry a
//! deadline that is threaded into the detectors as a
//! [`cxu_runtime::Deadline`]: a pair that cannot be decided in time
//! degrades to the scheduler's conservative verdicts instead of
//! stalling the connection. Worker panics are caught per request
//! ([`std::panic::catch_unwind`] plus the `serve::request` failpoint
//! site for injecting them).
//!
//! Accounting identity, checked by `tests/serve_validation.rs`:
//! `serve.accepted == serve.completed + serve.rejected_overload +
//! serve.failed`.

pub mod crash;
pub mod loadgen;
pub mod proto;
pub mod server;
pub(crate) mod shard;

pub use crash::{CrashConfig, CrashReport};
pub use loadgen::{sweep_to_json, LoadConfig, LoadProfile, LoadReport, StoreTallies};
pub use proto::{Request, Route};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
