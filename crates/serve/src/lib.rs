//! # cxu-serve — the conflict-detection daemon
//!
//! The paper casts conflict detection as the check a transaction
//! processor runs *online*, before interleaving concurrent XML updates
//! (§1, §3). This crate is that online layer: a long-running TCP
//! server exposing the sched/runtime/obs stack to clients, plus the
//! seeded closed-loop load generator that drives it.
//!
//! Hermetic by construction: `std::net` + `std::thread` only — no
//! tokio, no serde (the wire format is [`cxu_gen::json`]).
//!
//! ## Wire protocol
//!
//! Newline-delimited JSON both ways: one request object per line, one
//! response object per line, in order, per connection. Routes:
//!
//! * `check` — one operation pair under any semantics → verdict;
//! * `schedule` — a batch of operations → conflict-free rounds;
//! * `doc_put` / `doc_get` / `doc_delete` / `doc_changes` — the
//!   multi-version document store ([`cxu_store`]): MVCC puts with
//!   commutativity-aware auto-merge, winner reads, tombstones, and the
//!   monotonic changes feed;
//! * `metrics` — this server's [`cxu_obs`] activity (counters and
//!   histograms as deltas against the bind-time baseline, gauges as
//!   current levels);
//! * `health` — liveness plus queue/in-flight levels;
//! * `shutdown` — begin graceful shutdown (equivalent to SIGTERM).
//!
//! The full grammar lives in `DESIGN.md` ("Serving") and in
//! [`proto`]'s docs.
//!
//! ## Admission control and degradation
//!
//! Work is pulled from a **bounded** queue by a fixed worker pool. A
//! request that arrives when the queue is full is answered
//! `overloaded` immediately — the server never buffers without bound,
//! so overload shows up as explicit rejections at the client, not as
//! silently growing latency. Admitted requests carry a deadline that
//! is threaded into the detectors as a [`cxu_runtime::Deadline`]: a
//! pair that cannot be decided in time degrades to the scheduler's
//! conservative verdicts instead of stalling the connection. Worker
//! panics are caught per request ([`std::panic::catch_unwind`] plus
//! the `serve::request` failpoint site for injecting them).
//!
//! Accounting identity, checked by `tests/serve_validation.rs`:
//! `serve.accepted == serve.completed + serve.rejected_overload +
//! serve.failed`.

pub mod crash;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use crash::{CrashConfig, CrashReport};
pub use loadgen::{LoadConfig, LoadProfile, LoadReport, StoreTallies};
pub use proto::{Request, Route};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
