//! Sharded scheduler state: per-shard memo caches, bounded job queues,
//! and the work-stealing pop path.
//!
//! Each shard owns one [`Scheduler`] per semantics (a slice of the
//! process's memo cache) plus one bounded queue. Requests are routed to
//! a *home* shard by a deterministic hash of their operations' canonical
//! shapes ([`cxu_sched::pair_route_hash`]), so repeated traffic always
//! lands on the shard whose cache is warm for it — across connections,
//! processes, and restarts. Document routes hash the document id
//! instead, and batch (`schedule`) routes fold their operations' shape
//! hashes order-independently.
//!
//! Stealing: an idle shard worker that finds its own queue empty pops
//! the oldest job from another shard's queue. The stolen job still
//! carries its home shard id, and its verdict is committed to the
//! *home* shard's cache ([`Scheduler::commit_pair`], first writer
//! wins), so stealing moves CPU work — never cache entries — and the
//! memo cache can never hold two conflicting verdicts for one pair.

use crate::proto::{Request, Route};
use cxu_obs::{Counter, Registry};
use cxu_ops::Semantics;
use cxu_sched::{op_route_hash, pair_route_hash, PairTask, SchedConfig, Scheduler};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub(crate) fn sem_index(s: Semantics) -> usize {
    match s {
        Semantics::Node => 0,
        Semantics::Tree => 1,
        Semantics::Value => 2,
    }
}

/// Where a worker deposits the response for a queued request. The
/// owning IO loop polls cells in per-connection FIFO order, which is
/// what keeps pipelined responses in request order.
pub(crate) struct RespCell {
    resp: Mutex<Option<String>>,
}

impl RespCell {
    pub(crate) fn new() -> Arc<RespCell> {
        Arc::new(RespCell {
            resp: Mutex::new(None),
        })
    }

    pub(crate) fn fill(&self, s: String) {
        let mut guard = self.resp.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(s);
    }

    pub(crate) fn take(&self) -> Option<String> {
        let mut guard = self.resp.lock().unwrap_or_else(|e| e.into_inner());
        guard.take()
    }
}

/// One admitted unit of work, bound for `home`'s queue (but possibly
/// executed elsewhere via stealing).
pub(crate) struct Job {
    pub req: Request,
    pub received: Instant,
    pub deadline: Option<Instant>,
    /// The shard whose cache owns this request's verdict.
    pub home: usize,
    /// Whether the `serve::request` failpoint already fired for this
    /// request on the IO thread (inline-lookup path) — a worker must
    /// not fire it a second time.
    pub fired: bool,
    /// A detached pair task produced by an inline cache-miss lookup;
    /// the worker runs it lock-free and commits to `home`.
    pub prepared: Option<Box<PairTask>>,
    pub cell: Arc<RespCell>,
}

pub(crate) enum PushError {
    Full,
    Closed,
}

/// A bounded MPMC queue. `close` flips `closed`; `try_pop` keeps
/// handing out already-admitted jobs until empty — the drain guarantee.
pub(crate) struct Queue {
    state: Mutex<QueueState>,
    cond: Condvar,
    depth: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    fn new(depth: usize) -> Queue {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            depth: depth.max(1),
        }
    }

    pub(crate) fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.jobs.len() >= self.depth {
            return Err(PushError::Full);
        }
        st.jobs.push_back(job);
        self.cond.notify_one();
        Ok(())
    }

    fn try_pop(&self) -> Option<Job> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .pop_front()
    }

    /// Blocks briefly (until a push, close, or the timeout) when empty.
    /// The timeout bounds how stale an idle worker's view of *other*
    /// shards' queues can get — it is the steal polling interval.
    fn wait_brief(&self, timeout: Duration) {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.jobs.is_empty() && !st.closed {
            let _ = self.cond.wait_timeout(st, timeout);
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        self.cond.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    pub(crate) fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }
}

/// One shard: a queue, three schedulers (one per semantics — their memo
/// caches must not mix), and the `serve.shard.<i>.*` counters, resolved
/// against the owning server's registry at construction.
pub(crate) struct Shard {
    pub queue: Queue,
    scheds: [Mutex<Scheduler>; 3],
    /// Requests whose home is this shard (inline + queued + rejected).
    pub routed: &'static Counter,
    /// Check requests answered on the IO thread from this shard's warm
    /// cache (no queue round-trip).
    pub inline_hits: &'static Counter,
    /// Queued jobs with this home shard completed by any worker.
    pub executed: &'static Counter,
    /// Of `executed`, jobs run by a *different* shard's worker.
    pub stolen: &'static Counter,
}

impl Shard {
    pub(crate) fn sched(&self, sem: Semantics) -> &Mutex<Scheduler> {
        &self.scheds[sem_index(sem)]
    }
}

fn fnv_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The set of shards plus deterministic request routing.
pub(crate) struct ShardSet {
    shards: Vec<Shard>,
}

impl ShardSet {
    pub(crate) fn new(n: usize, queue_depth: usize, base: SchedConfig, reg: &Registry) -> ShardSet {
        let n = n.max(1);
        let shards = (0..n)
            .map(|i| {
                let mk = |sem: Semantics| {
                    Mutex::new(Scheduler::new(SchedConfig {
                        semantics: sem,
                        ..base
                    }))
                };
                Shard {
                    queue: Queue::new(queue_depth),
                    scheds: [
                        mk(Semantics::Node),
                        mk(Semantics::Tree),
                        mk(Semantics::Value),
                    ],
                    routed: reg.counter_dyn(&format!("serve.shard.{i}.routed")),
                    inline_hits: reg.counter_dyn(&format!("serve.shard.{i}.inline_hits")),
                    executed: reg.counter_dyn(&format!("serve.shard.{i}.executed")),
                    stolen: reg.counter_dyn(&format!("serve.shard.{i}.stolen")),
                }
            })
            .collect();
        ShardSet { shards }
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn get(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// The home shard of a request: pair hash for checks, folded op
    /// hashes for batches, document-id hash for store routes. Admin
    /// routes never reach a shard; they report 0 harmlessly.
    pub(crate) fn route(&self, req: &Request) -> usize {
        let n = self.shards.len() as u64;
        let h = match &req.route {
            Route::Check { a, b } => pair_route_hash(a, b),
            Route::Schedule { ops } => {
                // Commutative fold: the same batch in any order lands on
                // the same shard.
                ops.iter()
                    .fold(0u64, |acc, op| acc.wrapping_add(op_route_hash(op)))
            }
            Route::DocPut { doc, .. }
            | Route::DocGet { doc, .. }
            | Route::DocDelete { doc, .. }
            | Route::DocCheck { doc, .. } => fnv_str(doc),
            // A transaction routes like its first written document, so
            // single-doc transactions share their document's warm shard.
            Route::Txn { txn } => fnv_str(&txn.writes[0].doc),
            Route::DocChanges { .. } => fnv_str("doc_changes"),
            Route::TxnBegin | Route::TxnSubmit { .. } | Route::TxnCommit => 0,
            Route::Metrics | Route::Health | Route::Shutdown => 0,
        };
        (h % n) as usize
    }

    pub(crate) fn queued_total(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    pub(crate) fn close_all(&self) {
        for s in &self.shards {
            s.queue.close();
        }
    }

    /// The worker pop path: own queue first; when it is empty, steal
    /// the oldest job from another shard (scanning from `me + 1` so two
    /// idle workers don't always raid the same victim). Returns `None`
    /// only when every queue is closed *and* empty — admitted jobs are
    /// always drained, even across shards.
    pub(crate) fn next_job(&self, me: usize) -> Option<Job> {
        let n = self.shards.len();
        loop {
            if let Some(job) = self.shards[me].queue.try_pop() {
                return Some(job);
            }
            for off in 1..n {
                let victim = (me + off) % n;
                if let Some(job) = self.shards[victim].queue.try_pop() {
                    return Some(job);
                }
            }
            if self
                .shards
                .iter()
                .all(|s| s.queue.is_closed() && s.queue.len() == 0)
            {
                return None;
            }
            self.shards[me].queue.wait_brief(Duration::from_millis(1));
        }
    }
}
