//! The daemon: a sharded, nonblocking serving core with admission
//! control, request pipelining, work stealing, and graceful shutdown.
//!
//! Thread layout: one acceptor (the caller of [`Server::run`]), a small
//! set of IO event-loop threads, and one worker thread per shard.
//! Accepted connections are handed round-robin to the IO loops, which
//! run **nonblocking** reads (`std::net` + `set_nonblocking`, no
//! dependencies): each loop pass drains readable bytes, parses complete
//! NDJSON lines, and flushes buffered responses. A connection may have
//! many requests in flight (`pipeline_depth`); responses are delivered
//! strictly in request order because only the owning IO loop writes the
//! socket, popping per-request response cells FIFO.
//!
//! Sharding: every work request is routed to a *home* shard by a
//! deterministic hash of its operations' canonical shapes (see
//! [`crate::shard`]). Each shard owns its own schedulers — a slice of
//! the memo cache — so repeated shapes always hit a warm cache without
//! any cross-shard locking. The IO loop answers a `check` whose pair is
//! already memoized *inline* (one brief `try_lock` on the home shard —
//! no queue round-trip); misses are queued to the home shard, where the
//! detector runs with **no scheduler lock held**
//! ([`cxu_sched::PairTask`]) and only the commit re-takes it. Idle
//! shard workers steal queued jobs from other shards, committing stolen
//! verdicts back to the home shard's cache, so one NP-side straggler
//! can't head-of-line-block its shard.
//!
//! Admission: a work request is queued only if its home shard's bounded
//! queue has room; otherwise the client gets `overloaded` on the spot.
//! `health`, `metrics`, and `shutdown` are answered inline on the IO
//! thread — a health probe must succeed precisely when the server is
//! overloaded.
//!
//! Metrics isolation: every server owns a private
//! [`cxu_obs::Registry`], and every thread it spawns binds to it, so
//! *all* metrics the server's activity produces (serve, sched, store
//! layers alike) land in that registry. Two servers in one process —
//! concurrent or sequential — never bleed counters into each other;
//! the `metrics` route snapshots the server's own registry directly.
//!
//! Read-timeout accounting: the slow-loris guard measures how long a
//! connection has stalled on a *partial* request line, but only while
//! the server owes that connection nothing — a pipelined client slowly
//! draining responses (or waiting on in-flight work) is not a stalled
//! writer and is never misclassified as a `timeout`.
//!
//! Shutdown (`shutdown` route, [`ServerHandle::shutdown`], or the CLI's
//! signal hook): the acceptor stops accepting and closes the shard
//! queues; workers drain every already-admitted job; IO loops stop
//! reading, flush every pending response, then close. New work arriving
//! during the drain is answered `shutting-down`.

use crate::proto::{self, Request, Route};
use crate::shard::{Job, PushError, RespCell, ShardSet};
use cxu_gen::wire::TxnWire;
use cxu_obs::Registry;
use cxu_runtime::{failpoints, Deadline};
use cxu_sched::{Op, PairDecision, PairLookup, SchedConfig, Scheduler};
use cxu_store::{DurabilityConfig, FsyncPolicy, Store, StoreConfig, StoreError, TxnError};
use cxu_txn::Txn;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Shard count (≥ 1): each shard owns one worker thread, one
    /// bounded queue, and its own schedulers (a slice of the memo
    /// cache). The CLI exposes this as `--shards` (with `--workers`
    /// kept as an alias).
    pub workers: usize,
    /// Bounded queue depth *per shard*; a request arriving when its
    /// home shard already has `queue_depth` jobs waiting is rejected
    /// `overloaded` (≥ 1).
    pub queue_depth: usize,
    /// Maximum queued-but-unanswered requests per connection; the IO
    /// loop stops reading from a connection at this depth until
    /// responses drain (≥ 1).
    pub pipeline_depth: usize,
    /// Default per-request deadline (overridable per request with
    /// `deadline_ms`). `None` runs unbounded.
    pub default_deadline: Option<Duration>,
    /// Base scheduler configuration. `semantics` is overridden per
    /// request; `pair_deadline` is derived from the request deadline.
    pub sched: SchedConfig,
    /// Document store configuration (admission bound, merge retries).
    pub store: StoreConfig,
    /// Data directory for the document store's WAL and snapshots.
    /// `None` (the default) keeps the store purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// Fsync policy for the WAL (meaningful only with `data_dir`). A
    /// `doc_put` is acked only after its record is durable per this
    /// policy.
    pub fsync: FsyncPolicy,
    /// Compact the WAL every this many records (0 disables).
    pub snapshot_every: u64,
    /// How long a connection may sit on a *partial* request line — with
    /// no responses owed to it — before the server answers `timeout`
    /// and closes it (the slow-loris guard). Idle connections with no
    /// partial line are never timed out, and neither is a pipelined
    /// connection the server still owes responses. `None` disables the
    /// guard.
    pub read_timeout: Option<Duration>,
    /// Maximum request-line length; longer lines are answered
    /// `bad-request` and the connection closed (instead of buffering
    /// without bound).
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            pipeline_depth: 64,
            default_deadline: Some(Duration::from_millis(100)),
            data_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: 1024,
            read_timeout: Some(Duration::from_secs(10)),
            max_line_bytes: proto::MAX_LINE_BYTES,
            sched: SchedConfig {
                // Single-pair checks run on the worker thread itself;
                // batch fan-out inside one request would oversubscribe
                // the pool.
                jobs: 1,
                // A latency-oriented budget for the NP-side searches.
                // The batch default (200 000 trees) can burn hundreds of
                // milliseconds on one exotic update–update pair; under a
                // request deadline that degrades to conservative-deadline,
                // which is *never memoized* — so the server would re-pay
                // the full search on every repeat of the pair. A small
                // budget exhausts in single-digit milliseconds and lands
                // on conservative-undecided, which is memoized and still
                // sound (degraded, so clients can see it was not exact).
                np_max_trees: 5_000,
                ..SchedConfig::default()
            },
            store: StoreConfig::default(),
        }
    }
}

/// Totals for one server lifetime, returned by [`Server::run`].
/// Satisfies `accepted == completed + rejected_overload + failed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections served.
    pub connections: u64,
    /// Complete request lines received.
    pub accepted: u64,
    /// Requests answered `ok: true`.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected_overload: u64,
    /// Requests that failed for any other reason (bad request, internal
    /// error, shutdown race).
    pub failed: u64,
}

/// State shared by the acceptor, IO loops, and shard workers.
/// An in-flight transaction under optimistic admission: the token the
/// committing job holds, plus its ops keyed by document for cross-pair
/// analysis against arrivals.
type InflightTxn = (u64, Vec<(String, Op)>);

struct Shared {
    cfg: ServeConfig,
    start: Instant,
    shutdown: AtomicBool,
    shards: ShardSet,
    /// The document store behind the `doc_*` routes (internally
    /// synchronized; shared by all shards).
    store: Store,
    /// This server's private metrics registry. Every thread the server
    /// spawns binds to it, so serve/sched/store metrics all isolate per
    /// server even when two servers overlap in one process.
    registry: &'static Registry,
    /// Transactions currently applying, as `(token, sched ops)`.
    /// Optimistic admission analyzes an arriving transaction against
    /// every entry (under this lock, so admission is serialized and
    /// deterministic) and answers `result: "conflict"` without touching
    /// the store when any cross pair conflicts. Correctness does not
    /// depend on this — the store's guard checks are the authority —
    /// but it turns a doomed commit into an immediate retryable answer.
    txn_inflight: Mutex<Vec<InflightTxn>>,
    txn_tokens: AtomicU64,
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A handle for requesting graceful shutdown from another thread (the
/// CLI's signal hook, a test harness).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting, drain in-flight work.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` for an
    /// ephemeral port) without starting the loops.
    pub fn bind(cfg: ServeConfig, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let registry = Registry::leak();
        // Recover (or initialize) the durable store before accepting a
        // single connection — under the server's own registry, so
        // recovery counters are part of this server's metrics.
        let store = cxu_obs::with_registry(registry, || match &cfg.data_dir {
            Some(dir) => Store::open(
                cfg.store,
                DurabilityConfig {
                    dir: dir.clone(),
                    fsync: cfg.fsync,
                    snapshot_every: cfg.snapshot_every,
                },
            )
            .map_err(|e| std::io::Error::other(e.to_string())),
            None => Ok(Store::new(cfg.store)),
        })?;
        let shards = ShardSet::new(cfg.workers, cfg.queue_depth, cfg.sched, registry);
        let shared = Arc::new(Shared {
            shards,
            store,
            registry,
            txn_inflight: Mutex::new(Vec::new()),
            txn_tokens: AtomicU64::new(0),
            cfg,
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// What startup recovery found (durable stores only) — the CLI
    /// prints this before announcing the listening address.
    pub fn recovery_report(&self) -> Option<cxu_store::RecoveryReport> {
        self.shared.store.recovery_report()
    }

    /// Runs the accept loop until shutdown, then drains and joins every
    /// thread the server started. No thread outlives this call.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let Server { listener, shared } = self;
        cxu_obs::with_registry(shared.registry, || run_inner(listener, shared))
    }
}

/// How many IO event-loop threads to run: enough to spread readiness
/// polling across cores, never more than the shard count, capped small
/// (each loop multiplexes many connections).
fn io_thread_count(shards: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(shards)
        .clamp(1, 4)
}

/// Hands accepted connections from the acceptor to one IO loop.
struct Injector {
    streams: Mutex<Vec<TcpStream>>,
    closed: AtomicBool,
}

impl Injector {
    fn new() -> Injector {
        Injector {
            streams: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        }
    }

    fn push(&self, s: TcpStream) {
        lock(&self.streams).push(s);
    }

    fn drain(&self) -> Vec<TcpStream> {
        let mut guard = lock(&self.streams);
        std::mem::take(&mut *guard)
    }
}

fn run_inner(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let nshards = shared.shards.len();

    let mut workers = Vec::with_capacity(nshards);
    for me in 0..nshards {
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || {
            cxu_obs::bind_thread_registry(shared.registry);
            worker_loop(&shared, me)
        }));
    }

    let injectors: Vec<Arc<Injector>> = (0..io_thread_count(nshards))
        .map(|_| Arc::new(Injector::new()))
        .collect();
    let mut io_threads = Vec::with_capacity(injectors.len());
    for inj in &injectors {
        let shared = Arc::clone(&shared);
        let inj = Arc::clone(inj);
        io_threads.push(std::thread::spawn(move || {
            cxu_obs::bind_thread_registry(shared.registry);
            io_loop(&shared, &inj)
        }));
    }

    let drain = |shared: &Shared| {
        for inj in &injectors {
            inj.closed.store(true, Ordering::Release);
        }
        shared.shards.close_all();
    };

    let mut next_io = 0usize;
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                cxu_obs::counter!("serve.connections").inc();
                injectors[next_io].push(stream);
                next_io = (next_io + 1) % injectors.len();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                shared.begin_shutdown();
                drain(&shared);
                for h in workers.drain(..).chain(io_threads.drain(..)) {
                    let _ = h.join();
                }
                return Err(e);
            }
        }
    }

    // Drain: stop accepting (drop the listener), let workers finish
    // every admitted job, then let IO loops flush the responses and
    // close their connections.
    drop(listener);
    drain(&shared);
    for h in workers {
        let _ = h.join();
    }
    for h in io_threads {
        let _ = h.join();
    }
    // Graceful drain leaves nothing for the next boot to replay:
    // flush buffered records, then snapshot and reset the log.
    if shared.store.is_durable() {
        let _ = shared.store.flush();
        let _ = shared.store.compact();
    }
    // The CLI disables (and thereby flushes) the trace sink after
    // this returns; the event marks the drain as complete.
    if cxu_obs::trace::enabled() {
        cxu_obs::trace::event(
            "serve.shutdown",
            &[(
                "accepted",
                (shared.accepted.load(Ordering::Relaxed) as usize).into(),
            )],
        );
    }

    Ok(ServeSummary {
        connections: shared.connections.load(Ordering::Relaxed),
        accepted: shared.accepted.load(Ordering::Relaxed),
        completed: shared.completed.load(Ordering::Relaxed),
        rejected_overload: shared.rejected.load(Ordering::Relaxed),
        failed: shared.failed.load(Ordering::Relaxed),
    })
}

/// Counts one request outcome (the accounting identity's right side).
enum Outcome {
    Completed,
    RejectedOverload,
    Failed,
}

fn tally(shared: &Shared, o: Outcome) {
    match o {
        Outcome::Completed => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            cxu_obs::counter!("serve.completed").inc();
        }
        Outcome::RejectedOverload => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            cxu_obs::counter!("serve.rejected_overload").inc();
        }
        Outcome::Failed => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            cxu_obs::counter!("serve.failed").inc();
        }
    }
}

// ---------------------------------------------------------------------
// Shard workers
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared, me: usize) {
    while let Some(job) = shared.shards.next_job(me) {
        let home = shared.shards.get(job.home);
        home.executed.inc();
        if job.home != me {
            home.stolen.inc();
        }
        let resp = process_job(shared, &job);
        cxu_obs::gauge!("serve.in_flight").dec();
        cxu_obs::histogram!("serve.request_ns").record_since(job.received);
        job.cell.fill(resp);
    }
}

/// Decides one admitted job on a worker thread. Panics (real or
/// injected at the `serve::request` site) are caught here: the request
/// fails, the worker survives.
fn process_job(shared: &Shared, job: &Job) -> String {
    if job.req.delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(job.req.delay_ms));
    }
    let run = || -> Result<String, String> {
        if !job.fired && failpoints::fire("serve::request") {
            return Err("injected budget exhaustion".to_owned());
        }
        let deadline = match job.deadline {
            Some(at) => Deadline::at(at),
            None => Deadline::never(),
        };
        let home = shared.shards.get(job.home);
        match &job.req.route {
            Route::Check { a, b } => {
                let d = if let Some(task) = &job.prepared {
                    // The IO loop already interned the pair and missed:
                    // run the detector with no scheduler lock held, then
                    // commit to the home shard (first writer wins).
                    let verdict = task.run(&deadline);
                    let verdict =
                        lock(home.sched(job.req.semantics)).commit_pair(task.key(), verdict);
                    PairDecision {
                        verdict,
                        cached: false,
                    }
                } else {
                    let mut sched = lock(home.sched(job.req.semantics));
                    match sched.lookup_pair(a, b) {
                        PairLookup::Ready(d) => d,
                        PairLookup::Miss(task) => {
                            drop(sched);
                            let verdict = task.run(&deadline);
                            let verdict = lock(home.sched(job.req.semantics))
                                .commit_pair(task.key(), verdict);
                            PairDecision {
                                verdict,
                                cached: false,
                            }
                        }
                    }
                };
                cxu_obs::histogram!("serve.check_ns").record_since(job.received);
                Ok(proto::render_check(job.req.id, &d))
            }
            Route::Schedule { ops } => {
                let mut sched = lock(home.sched(job.req.semantics));
                // Budget the batch with the request's remaining time as
                // the per-pair slice — a resource-envelope change, so
                // the memo cache survives (`Scheduler::set_config`).
                let mut cfg = *sched.config();
                cfg.pair_deadline = match job.deadline {
                    Some(at) => Some(at.saturating_duration_since(Instant::now())),
                    None => shared.cfg.sched.pair_deadline,
                };
                sched.set_config(cfg);
                let out = sched.run(ops);
                drop(sched);
                cxu_obs::histogram!("serve.schedule_ns").record_since(job.received);
                Ok(proto::render_schedule(
                    job.req.id,
                    &out.schedule.rounds,
                    &out.stats,
                ))
            }
            Route::DocPut {
                doc,
                base_rev,
                payload,
            } => {
                // The merge rung consults the routed detectors; each
                // pair takes the home shard's scheduler lock for
                // exactly one `check_pair` (the store holds no lock of
                // its own while this closure runs).
                let mut check = |a: &Op, b: &Op| {
                    lock(home.sched(job.req.semantics)).check_pair(a, b, &deadline)
                };
                let out = shared
                    .store
                    .put(doc, *base_rev, (**payload).clone(), &mut check);
                cxu_obs::histogram!("serve.doc_put_ns").record_since(job.received);
                Ok(match out {
                    Ok(o) => proto::render_doc_put(job.req.id, "doc_put", doc, &o),
                    Err(e) => proto::render_doc_rejected(job.req.id, "doc_put", doc, &e),
                })
            }
            Route::DocDelete { doc, rev } => {
                let out = shared.store.delete(doc, *rev);
                cxu_obs::histogram!("serve.doc_put_ns").record_since(job.received);
                Ok(match out {
                    Ok(o) => proto::render_doc_put(job.req.id, "doc_delete", doc, &o),
                    Err(e) => proto::render_doc_rejected(job.req.id, "doc_delete", doc, &e),
                })
            }
            Route::DocGet {
                doc,
                rev,
                conflicts,
            } => {
                let out = shared.store.get(doc, *rev, *conflicts);
                cxu_obs::histogram!("serve.doc_get_ns").record_since(job.received);
                Ok(match out {
                    Ok(o) => proto::render_doc_get(job.req.id, doc, &o),
                    Err(e @ (StoreError::NotFound(_) | StoreError::UnknownRev(_))) => {
                        proto::render_doc_not_found(job.req.id, doc, &e)
                    }
                    Err(e) => proto::render_doc_rejected(job.req.id, "doc_get", doc, &e),
                })
            }
            Route::DocChanges { since, limit } => {
                let (entries, last_seq) = shared.store.changes(*since, *limit);
                cxu_obs::histogram!("serve.doc_get_ns").record_since(job.received);
                Ok(proto::render_doc_changes(job.req.id, &entries, last_seq))
            }
            Route::DocCheck {
                doc,
                rev,
                read,
                update,
            } => {
                // Grounded check: answer from the stored document's
                // structural index (cached per winner revision, built on
                // first use). The index is immutable once built, so the
                // detector runs with no store lock held.
                let out = shared.store.indexed(doc, *rev);
                let resp = match out {
                    Ok(idoc) => {
                        let conflict = cxu_index::detect_grounded(
                            read,
                            update,
                            &idoc.tree,
                            &idoc.index,
                            job.req.semantics,
                        );
                        proto::render_doc_check(
                            job.req.id,
                            doc,
                            &idoc.rev,
                            job.req.semantics,
                            conflict,
                            idoc.index.len(),
                        )
                    }
                    Err(e) => proto::render_doc_rejected(job.req.id, "doc_check", doc, &e),
                };
                cxu_obs::histogram!("serve.doc_check_ns").record_since(job.received);
                Ok(resp)
            }
            Route::Txn { txn } => {
                let resp = apply_txn_job(shared, job, txn, home, &deadline);
                cxu_obs::histogram!("serve.txn_ns").record_since(job.received);
                Ok(resp)
            }
            // Admin routes are answered inline on the IO thread (and
            // the txn accumulator routes on their connection) — none of
            // them ever enters a queue.
            Route::TxnBegin
            | Route::TxnSubmit { .. }
            | Route::TxnCommit
            | Route::Metrics
            | Route::Health
            | Route::Shutdown => Err("admin route reached the worker pool".to_owned()),
        }
    };
    let result = catch_unwind(AssertUnwindSafe(run)).unwrap_or_else(|_| {
        cxu_obs::counter!("serve.panics").inc();
        Err("request panicked (isolated)".to_owned())
    });
    match result {
        Ok(resp) => {
            tally(shared, Outcome::Completed);
            resp
        }
        Err(detail) => {
            // A document mutation that died (panic, injected fault)
            // before the store could answer still counts in the store
            // partition: `store.puts` moves together with
            // `store.put.failed`, preserving the identity
            // `puts == applied + merged + branched + rejected + noop +
            // failed` (the store itself tallies only at success or
            // rejection, never on an unwound put).
            if matches!(
                job.req.route,
                Route::DocPut { .. } | Route::DocDelete { .. }
            ) {
                cxu_obs::counter!("store.puts").inc();
                cxu_obs::counter!("store.put.failed").inc();
            }
            // Same discipline for the transaction partition:
            // `txn.commits == applied + conflicted + rejected + failed`,
            // and `failed` is owned by this panic path (the store never
            // tallies an unwound commit).
            if matches!(job.req.route, Route::Txn { .. }) {
                cxu_obs::counter!("txn.commits").inc();
                cxu_obs::counter!("txn.failed").inc();
            }
            tally(shared, Outcome::Failed);
            proto::render_error(job.req.id, "internal", &detail)
        }
    }
}

/// Commits one transaction job: optimistic admission against the
/// in-flight registry, then the store's atomic multi-op commit.
fn apply_txn_job(
    shared: &Shared,
    job: &Job,
    txn: &Txn,
    shard: &crate::shard::Shard,
    deadline: &Deadline,
) -> String {
    let ops = txn.sched_ops();
    let token = {
        let mut inflight = lock(&shared.txn_inflight);
        for (_, theirs) in inflight.iter() {
            // Transaction-pair analysis through the home shard's warm
            // cache; the registry lock is held, so two conflicting
            // transactions can never both pass this gate.
            let rep = lock(shard.sched(job.req.semantics)).analyze_txn_pair(&ops, theirs, deadline);
            if rep.conflict {
                drop(inflight);
                cxu_obs::counter!("txn.commits").inc();
                cxu_obs::counter!("txn.conflicted").inc();
                let err = TxnError::Conflict {
                    doc: txn.writes[0].doc.clone(),
                    detail: if rep.conservative {
                        "commutation with an in-flight transaction could not be \
                         proved within budget; retry after it completes"
                            .to_owned()
                    } else {
                        "conflicts with an in-flight transaction; retry after it \
                         completes"
                            .to_owned()
                    },
                };
                return proto::render_txn_denied(job.req.id, &err);
            }
        }
        let token = shared.txn_tokens.fetch_add(1, Ordering::Relaxed);
        inflight.push((token, ops));
        token
    };
    // Unregister on every exit — including an unwinding detector panic —
    // so a dead transaction can't wedge admission forever.
    struct Unregister<'a> {
        shared: &'a Shared,
        token: u64,
    }
    impl Drop for Unregister<'_> {
        fn drop(&mut self) {
            lock(&self.shared.txn_inflight).retain(|(t, _)| *t != self.token);
        }
    }
    let _guard = Unregister { shared, token };
    let mut check =
        |a: &Op, b: &Op| lock(shard.sched(job.req.semantics)).check_pair(a, b, deadline);
    match shared.store.apply_txn(&txn.guards, &txn.writes, &mut check) {
        Ok(out) => proto::render_txn_applied(job.req.id, &out),
        Err(e) => proto::render_txn_denied(job.req.id, &e),
    }
}

// ---------------------------------------------------------------------
// IO event loops
// ---------------------------------------------------------------------

/// A response owed to a connection, in request order.
enum Pending {
    /// Computed inline; ready to flush.
    Ready(String),
    /// Admitted to a shard queue; the worker fills the cell.
    Waiting(Arc<RespCell>),
}

/// One nonblocking connection owned by an IO loop.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into a complete line.
    pending_in: Vec<u8>,
    /// Responses owed, FIFO in request order.
    out: VecDeque<Pending>,
    /// Rendered bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// The open `txn_begin`/`txn_submit` accumulator, if any. Purely
    /// per-connection state: a connection that closes mid-transaction
    /// leaves nothing behind (nothing reaches the store before
    /// `txn_commit`).
    txn_acc: Option<TxnWire>,
    /// When the connection entered its current quiet partial-line
    /// stall (slow-loris clock; see `ServeConfig::read_timeout`).
    stall_since: Option<Instant>,
    /// Stop reading (EOF, fatal request, or timeout); flush then close.
    closing: bool,
    /// Fully finished; the IO loop drops the connection.
    done: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            pending_in: Vec::new(),
            out: VecDeque::new(),
            wbuf: Vec::new(),
            txn_acc: None,
            stall_since: None,
            closing: false,
            done: false,
        })
    }

    /// One pass: flush what's ready, read what's there, parse complete
    /// lines, keep the stall clock honest. Returns true if any progress
    /// was made (used for the IO loop's idle backoff).
    fn pump(&mut self, shared: &Shared, buf: &mut [u8], draining: bool) -> bool {
        if self.done {
            return false;
        }
        let mut progress = false;

        // Move in-order ready responses into the write buffer.
        loop {
            match self.out.front() {
                Some(Pending::Ready(_)) => {
                    if let Some(Pending::Ready(s)) = self.out.pop_front() {
                        self.wbuf.extend_from_slice(s.as_bytes());
                        self.wbuf.push(b'\n');
                        progress = true;
                    }
                }
                Some(Pending::Waiting(cell)) => match cell.take() {
                    Some(s) => {
                        self.out.pop_front();
                        self.wbuf.extend_from_slice(s.as_bytes());
                        self.wbuf.push(b'\n');
                        progress = true;
                    }
                    None => break,
                },
                None => break,
            }
        }

        // Flush.
        while !self.wbuf.is_empty() {
            match self.stream.write(&self.wbuf) {
                Ok(0) => {
                    self.done = true;
                    return true;
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                    progress = true;
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.done = true;
                    return true;
                }
            }
        }

        // Read, unless closing/draining or the pipeline is full. The
        // `pending_in` bound matters: when the pipeline cap (not a
        // missing newline) is what stalls parsing, reading further
        // would grow an unbounded parse backlog — the socket is the
        // backpressure. The `out.is_empty()` escape keeps one oversized
        // line (bigger than the read buffer) able to complete.
        if !self.closing
            && !draining
            && self.out.len() < shared.cfg.pipeline_depth.max(1)
            && self.wbuf.len() < 64 * 1024
            && (self.out.is_empty() || self.pending_in.len() < buf.len())
        {
            match self.stream.read(buf) {
                Ok(0) => {
                    self.closing = true;
                    progress = true;
                }
                Ok(n) => {
                    self.pending_in.extend_from_slice(&buf[..n]);
                    progress = true;
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.done = true;
                    return true;
                }
            }
        }

        // Parse complete lines (also while draining: lines already
        // buffered still get answers — typically `shutting-down`).
        // Consumed bytes are drained once at the end: a per-line drain
        // would memmove the whole remaining backlog for every request.
        let mut consumed = 0usize;
        while !self.closing && self.out.len() < shared.cfg.pipeline_depth.max(1) {
            let Some(rel) = self.pending_in[consumed..].iter().position(|&b| b == b'\n') else {
                break;
            };
            if rel > shared.cfg.max_line_bytes {
                cxu_obs::counter!("serve.oversized_line").inc();
                self.reject_at_socket(shared, "bad-request", "request line too long");
                return true;
            }
            let line_end = consumed + rel;
            let outcome = handle_line(
                shared,
                &self.pending_in[consumed..line_end],
                &mut self.txn_acc,
            );
            match outcome {
                LineOutcome::Ready(resp) => self.out.push_back(Pending::Ready(resp)),
                LineOutcome::Queued(cell) => self.out.push_back(Pending::Waiting(cell)),
            }
            consumed = line_end + 1;
            progress = true;
        }
        if consumed > 0 {
            self.pending_in.drain(..consumed);
        }
        // Only the current *partial line* is bounded by max_line_bytes —
        // the buffer as a whole may legitimately hold many complete
        // pipelined lines waiting behind the pipeline-depth cap.
        let partial_len = self
            .pending_in
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(self.pending_in.len(), |p| self.pending_in.len() - p - 1);
        if partial_len > shared.cfg.max_line_bytes {
            cxu_obs::counter!("serve.oversized_line").inc();
            self.reject_at_socket(shared, "bad-request", "request line too long");
            return true;
        }

        // The slow-loris clock runs only while the server owes this
        // connection *nothing*: a partial line alongside in-flight
        // responses (a pipelined client pausing between batches) is not
        // a stall — the clock starts, with a full budget, once the last
        // owed byte is flushed.
        let quiet = self.out.is_empty() && self.wbuf.is_empty();
        if self.pending_in.is_empty() || !quiet || self.closing || draining {
            self.stall_since = None;
        } else if self.stall_since.is_none() {
            self.stall_since = Some(Instant::now());
        }
        if let (Some(since), Some(limit)) = (self.stall_since, shared.cfg.read_timeout) {
            if since.elapsed() >= limit {
                cxu_obs::counter!("serve.read_timeouts").inc();
                self.reject_at_socket(shared, "timeout", "request line stalled");
                return true;
            }
        }

        if (self.closing || draining) && self.out.is_empty() && self.wbuf.is_empty() {
            self.done = true;
            progress = true;
        }
        progress
    }

    /// Counts a request the socket layer itself rejects (oversized
    /// line, stalled partial line): it enters the accounting identity
    /// as accepted + failed, exactly like a request a worker failed.
    fn reject_at_socket(&mut self, shared: &Shared, code: &str, detail: &str) {
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        cxu_obs::counter!("serve.accepted").inc();
        tally(shared, Outcome::Failed);
        self.out
            .push_back(Pending::Ready(proto::render_error(None, code, detail)));
        self.pending_in.clear();
        self.stall_since = None;
        self.closing = true;
    }
}

fn io_loop(shared: &Shared, inj: &Injector) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut idle_passes: u32 = 0;
    loop {
        let mut progress = false;
        for stream in inj.drain() {
            if let Ok(conn) = Conn::new(stream) {
                conns.push(conn);
            }
            progress = true;
        }
        let draining = shared.shutting_down();
        for conn in conns.iter_mut() {
            progress |= conn.pump(shared, &mut buf, draining);
        }
        conns.retain(|c| !c.done);
        if draining && conns.is_empty() && inj.closed.load(Ordering::Acquire) {
            let leftovers = inj.drain(); // races with the acceptor's last pushes
            if leftovers.is_empty() {
                return;
            }
            drop(leftovers);
            progress = true;
        }
        if progress {
            idle_passes = 0;
        } else {
            // Briefly spin-yield (cheap reactivity under load), then
            // back off to a sleep so an idle server doesn't burn a core.
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// What one parsed request line turned into.
enum LineOutcome {
    Ready(String),
    Queued(Arc<RespCell>),
}

/// The inline fast path's verdict on a `check` request.
enum InlineCheck {
    /// Answered from the home shard's warm cache (or trivially).
    Answered(String),
    /// The `serve::request` failpoint fired.
    Injected(String),
    /// Cache miss: the detached task goes to the home shard's queue.
    Miss(Box<cxu_sched::PairTask>),
    /// The home shard's scheduler was busy; queue without interning.
    Busy,
}

/// Handles one complete request line on the IO thread: admin routes,
/// the connection's transaction accumulator, and warm-cache checks
/// inline; everything else through shard admission.
fn handle_line(shared: &Shared, line: &[u8], txn_acc: &mut Option<TxnWire>) -> LineOutcome {
    let received = Instant::now();
    shared.accepted.fetch_add(1, Ordering::Relaxed);
    cxu_obs::counter!("serve.accepted").inc();
    cxu_obs::gauge!("serve.in_flight").inc();
    let finish = |outcome: Outcome, resp: String| -> LineOutcome {
        tally(shared, outcome);
        cxu_obs::gauge!("serve.in_flight").dec();
        cxu_obs::histogram!("serve.request_ns").record_since(received);
        LineOutcome::Ready(resp)
    };
    let text = match std::str::from_utf8(line) {
        Ok(t) => t,
        Err(_) => {
            return finish(
                Outcome::Failed,
                proto::render_error(None, "bad-request", "request line is not UTF-8"),
            )
        }
    };
    let mut req = match proto::parse_request(text) {
        Ok(r) => r,
        Err(e) => {
            return finish(
                Outcome::Failed,
                proto::render_error(None, "bad-request", &e),
            )
        }
    };
    // The accumulator routes run right here on the connection's state:
    // `txn_begin`/`txn_submit` answer inline, and a valid `txn_commit`
    // rewrites itself into a one-shot `txn` before dispatch.
    if matches!(req.route, Route::TxnBegin) {
        return if txn_acc.is_some() {
            finish(
                Outcome::Failed,
                proto::render_error(
                    req.id,
                    "bad-request",
                    "a transaction is already open on this connection",
                ),
            )
        } else {
            *txn_acc = Some(TxnWire::default());
            finish(
                Outcome::Completed,
                proto::render_txn_pending(req.id, "txn_begin", 0, 0),
            )
        };
    }
    if let Route::TxnSubmit { frag } = &req.route {
        return match txn_acc.as_mut() {
            None => finish(
                Outcome::Failed,
                proto::render_error(req.id, "bad-request", "txn_submit without txn_begin"),
            ),
            Some(acc) => {
                acc.guards.extend(frag.guards.iter().cloned());
                acc.ops.extend(frag.ops.iter().cloned());
                finish(
                    Outcome::Completed,
                    proto::render_txn_pending(
                        req.id,
                        "txn_submit",
                        acc.guards.len(),
                        acc.ops.len(),
                    ),
                )
            }
        };
    }
    if matches!(req.route, Route::TxnCommit) {
        // Commit consumes the accumulator whether or not it converts —
        // a malformed transaction leaves the connection clean.
        match txn_acc.take() {
            None => {
                return finish(
                    Outcome::Failed,
                    proto::render_error(req.id, "bad-request", "txn_commit without txn_begin"),
                )
            }
            Some(w) if w.ops.is_empty() => {
                return finish(
                    Outcome::Failed,
                    proto::render_error(req.id, "bad-request", "transaction has no ops"),
                )
            }
            Some(w) => match Txn::from_wire(&w) {
                Err(e) => {
                    return finish(
                        Outcome::Failed,
                        proto::render_error(req.id, "bad-request", &e.to_string()),
                    )
                }
                Ok(t) => req.route = Route::Txn { txn: Box::new(t) },
            },
        }
    }
    match &req.route {
        // Admin routes bypass the queues: they must answer precisely
        // when the pool is saturated.
        Route::Health => finish(
            Outcome::Completed,
            proto::render_health(
                req.id,
                shared.start.elapsed().as_millis().min(u64::MAX as u128) as u64,
                cxu_obs::gauge!("serve.in_flight").get(),
                shared.shards.queued_total(),
                shared.shutting_down(),
            ),
        ),
        Route::Metrics => {
            tally(shared, Outcome::Completed);
            cxu_obs::gauge!("serve.in_flight").dec();
            cxu_obs::histogram!("serve.request_ns").record_since(received);
            // This server's own registry: counters and histograms are
            // its activity from birth (no baseline subtraction needed),
            // gauges are current levels, refreshed for the store just
            // now. Another server in the same process — even a
            // concurrent one — contributes nothing here.
            shared.store.set_gauges();
            let snap = shared.registry.snapshot();
            LineOutcome::Ready(proto::render_metrics(req.id, &snap.to_json()))
        }
        Route::Shutdown => {
            let resp = finish(Outcome::Completed, proto::render_shutdown(req.id));
            shared.begin_shutdown();
            resp
        }
        // The accumulator routes were consumed above; reaching dispatch
        // with one would be a bug in this function.
        Route::TxnBegin | Route::TxnSubmit { .. } | Route::TxnCommit => finish(
            Outcome::Failed,
            proto::render_error(req.id, "internal", "txn accumulator route reached dispatch"),
        ),
        Route::Check { .. }
        | Route::Schedule { .. }
        | Route::DocPut { .. }
        | Route::DocGet { .. }
        | Route::DocDelete { .. }
        | Route::DocChanges { .. }
        | Route::DocCheck { .. }
        | Route::Txn { .. } => {
            let deadline = req
                .deadline_ms
                .map(Duration::from_millis)
                .or(shared.cfg.default_deadline)
                .map(|d| received + d);
            let home = shared.shards.route(&req);
            shared.shards.get(home).routed.inc();
            let mut fired = false;
            let mut prepared = None;
            if matches!(req.route, Route::Check { .. }) && req.delay_ms == 0 {
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    inline_check(shared, &req, home, received)
                }));
                match attempt {
                    Err(_) => {
                        cxu_obs::counter!("serve.panics").inc();
                        return finish(
                            Outcome::Failed,
                            proto::render_error(req.id, "internal", "request panicked (isolated)"),
                        );
                    }
                    Ok(InlineCheck::Answered(resp)) => return finish(Outcome::Completed, resp),
                    Ok(InlineCheck::Injected(detail)) => {
                        return finish(
                            Outcome::Failed,
                            proto::render_error(req.id, "internal", &detail),
                        )
                    }
                    Ok(InlineCheck::Miss(task)) => {
                        fired = true;
                        prepared = Some(task);
                    }
                    Ok(InlineCheck::Busy) => fired = true,
                }
            }
            let cell = RespCell::new();
            let id = req.id;
            let job = Job {
                req,
                received,
                deadline,
                home,
                fired,
                prepared,
                cell: Arc::clone(&cell),
            };
            match shared.shards.get(home).queue.try_push(job) {
                Ok(()) => LineOutcome::Queued(cell),
                Err(PushError::Full) => finish(
                    Outcome::RejectedOverload,
                    proto::render_error(id, "overloaded", "queue full"),
                ),
                Err(PushError::Closed) => finish(
                    Outcome::Failed,
                    proto::render_error(id, "shutting-down", "server is draining"),
                ),
            }
        }
    }
}

/// The warm-shard fast path, run on the IO thread: fire the request
/// failpoint, then try a brief lookup on the home shard. A cache hit
/// (or trivial pair) renders right here — no queue round-trip, no
/// worker wakeup. `try_lock` keeps the IO loop wait-free: if the home
/// shard is mid-batch, the request just queues.
fn inline_check(shared: &Shared, req: &Request, home: usize, received: Instant) -> InlineCheck {
    if failpoints::fire("serve::request") {
        return InlineCheck::Injected("injected budget exhaustion".to_owned());
    }
    let Route::Check { a, b } = &req.route else {
        return InlineCheck::Busy;
    };
    let shard = shared.shards.get(home);
    let mut sched: MutexGuard<'_, Scheduler> = match shard.sched(req.semantics).try_lock() {
        Ok(g) => g,
        Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => return InlineCheck::Busy,
    };
    match sched.lookup_pair(a, b) {
        PairLookup::Ready(d) => {
            drop(sched);
            shard.inline_hits.inc();
            cxu_obs::histogram!("serve.check_ns").record_since(received);
            InlineCheck::Answered(proto::render_check(req.id, &d))
        }
        PairLookup::Miss(task) => InlineCheck::Miss(task),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_gen::json::Json;
    use std::io::BufRead;

    fn roundtrip(stream: &mut TcpStream, req: &str) -> Json {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim_end()).unwrap()
    }

    #[test]
    fn smoke_check_and_shutdown() {
        let server = Server::bind(ServeConfig::default(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run().unwrap());
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        let req = r#"{"route": "check", "id": 1,
                "a": {"kind": "read", "pattern": "*//C"},
                "b": {"kind": "insert", "pattern": "*/B", "subtree": "C"}}"#
            .replace('\n', " ");
        let v = roundtrip(&mut c, &req);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("conflict").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));

        let v = roundtrip(&mut c, r#"{"route": "health"}"#);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));

        let v = roundtrip(&mut c, r#"{"route": "shutdown"}"#);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
        drop(c);
        let summary = t.join().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(
            summary.accepted,
            summary.completed + summary.rejected_overload + summary.failed
        );
        assert_eq!(summary.failed, 0);
    }

    #[test]
    fn bad_requests_fail_without_closing_the_connection() {
        let server = Server::bind(ServeConfig::default(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let t = std::thread::spawn(move || server.run().unwrap());
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        let v = roundtrip(&mut c, "this is not json");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("bad-request"));

        // The same connection still serves good requests afterwards.
        let v = roundtrip(&mut c, r#"{"route": "health"}"#);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));

        handle.shutdown();
        drop(c);
        let summary = t.join().unwrap();
        assert_eq!(summary.failed, 1);
        assert_eq!(
            summary.accepted,
            summary.completed + summary.rejected_overload + summary.failed
        );
    }

    #[test]
    fn txn_routes_commit_atomically_and_lose_retryably() {
        let server = Server::bind(ServeConfig::default(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run().unwrap());
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        let put = |c: &mut TcpStream, doc: &str, content: &str| -> String {
            let v = roundtrip(
                c,
                &format!(r#"{{"route": "doc_put", "doc": "{doc}", "content": "{content}"}}"#),
            );
            assert_eq!(v.get("result").and_then(Json::as_str), Some("created"));
            v.get("rev").and_then(Json::as_str).unwrap().to_owned()
        };
        let r1 = put(&mut c, "d1", "a(b c)");
        let r2 = put(&mut c, "d2", "a(x)");

        // One-shot txn: two documents, both guarded, all-or-nothing.
        let txn = format!(
            r#"{{"route": "txn", "id": 5,
                "guards": [{{"doc": "d1", "rev": "{r1}"}}, {{"doc": "d2", "rev": "{r2}"}}],
                "ops": [
                  {{"doc": "d1", "op": {{"kind": "insert", "pattern": "a/b", "subtree": "x"}}}},
                  {{"doc": "d2", "op": {{"kind": "delete", "pattern": "a/x"}}}}]}}"#
        )
        .replace('\n', " ");
        let v = roundtrip(&mut c, &txn);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
        assert_eq!(v.get("result").and_then(Json::as_str), Some("applied"));
        assert_eq!(v.get("replayed").and_then(Json::as_bool), Some(false));
        let revs = v.get("revs").and_then(Json::as_arr).unwrap();
        assert_eq!(revs.len(), 2);
        let g = roundtrip(&mut c, r#"{"route": "doc_get", "doc": "d1"}"#);
        assert_eq!(
            g.get("content").and_then(Json::as_str),
            Some("a(b(x) c)"),
            "{g}"
        );

        // A verbatim retry of a fully-guarded transaction is an
        // idempotent replay: the original revisions come back.
        let v2 = roundtrip(&mut c, &txn);
        assert_eq!(v2.get("result").and_then(Json::as_str), Some("applied"));
        assert_eq!(
            v2.get("replayed").and_then(Json::as_bool),
            Some(true),
            "{v2}"
        );
        assert_eq!(v2.get("revs").map(Json::to_string), revs_json(&v));

        // A stale guard whose chain does NOT commute with the program
        // loses retryably: delete a/b conflicts with the intervening
        // insert under a/b.
        let stale = format!(
            r#"{{"route": "txn", "guards": [{{"doc": "d1", "rev": "{r1}"}}],
                "ops": [{{"doc": "d1", "op": {{"kind": "delete", "pattern": "a/b"}}}}]}}"#
        )
        .replace('\n', " ");
        let v = roundtrip(&mut c, &stale);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
        assert_eq!(v.get("result").and_then(Json::as_str), Some("conflict"));
        assert_eq!(v.get("retryable").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("txn-conflict"));

        // The accumulator form: begin, submit fragments, commit.
        let v = roundtrip(&mut c, r#"{"route": "txn_begin"}"#);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("open"));
        let v = roundtrip(
            &mut c,
            r#"{"route": "txn_submit",
                "ops": [{"doc": "d2", "op": {"kind": "insert", "pattern": "a", "subtree": "y"}}]}"#
                .replace('\n', " ")
                .as_str(),
        );
        assert_eq!(v.get("ops").and_then(Json::as_u64), Some(1));
        let v = roundtrip(&mut c, r#"{"route": "txn_commit"}"#);
        assert_eq!(
            v.get("result").and_then(Json::as_str),
            Some("applied"),
            "{v}"
        );

        // Commit without an open transaction is a client error, and the
        // connection keeps serving.
        let v = roundtrip(&mut c, r#"{"route": "txn_commit"}"#);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("bad-request"));

        roundtrip(&mut c, r#"{"route": "shutdown"}"#);
        drop(c);
        t.join().unwrap();
    }

    fn revs_json(v: &Json) -> Option<String> {
        v.get("revs").map(Json::to_string)
    }

    #[test]
    fn repeated_pairs_are_answered_inline_from_the_warm_shard() {
        let server = Server::bind(ServeConfig::default(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run().unwrap());
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        let req = |id: u64| {
            format!(
                r#"{{"route": "check", "id": {id}, "a": {{"kind": "read", "pattern": "*//C"}}, "b": {{"kind": "insert", "pattern": "*/B", "subtree": "C"}}}}"#
            )
        };
        for id in 0..4 {
            let v = roundtrip(&mut c, &req(id));
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(v.get("cached").and_then(Json::as_bool), Some(id > 0));
        }
        let m = roundtrip(&mut c, r#"{"route": "metrics"}"#);
        let counters = m.get("metrics").and_then(|m| m.get("counters")).unwrap();
        let inline: u64 = (0..4)
            .filter_map(|i| {
                counters
                    .get(&format!("serve.shard.{i}.inline_hits"))
                    .and_then(Json::as_u64)
            })
            .sum();
        assert!(
            inline >= 3,
            "repeats should be served inline from the warm shard: {m}"
        );
        roundtrip(&mut c, r#"{"route": "shutdown"}"#);
        drop(c);
        let summary = t.join().unwrap();
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.completed, summary.accepted);
    }
}
