//! The daemon: bounded-queue worker pool, admission control, graceful
//! shutdown.
//!
//! Thread layout: one acceptor (the caller of [`Server::run`]), one
//! thread per connection (reads lines, performs admission, writes
//! responses), and a fixed pool of `workers` detector threads pulling
//! from one **bounded** queue. Connection threads never run detectors;
//! worker threads never touch sockets — the queue and per-request
//! response slots are the only coupling, so a slow pair on one
//! connection cannot stall another connection's reads.
//!
//! Admission: a `check`/`schedule` request is queued only if the queue
//! has room; otherwise the client gets `overloaded` on the spot.
//! `health`, `metrics`, and `shutdown` are answered inline on the
//! connection thread — a health probe must succeed precisely when the
//! server is overloaded.
//!
//! Shutdown (`shutdown` route, [`ServerHandle::shutdown`], or the CLI's
//! signal hook): the acceptor stops accepting and closes the queue;
//! workers drain every already-admitted job; connection threads deliver
//! those responses, then close. New work arriving during the drain is
//! answered `shutting-down`.

use crate::proto::{self, Request, Route};
use cxu_obs::Snapshot;
use cxu_ops::Semantics;
use cxu_runtime::{failpoints, Deadline};
use cxu_sched::{Op, SchedConfig, Scheduler};
use cxu_store::{DurabilityConfig, FsyncPolicy, Store, StoreConfig, StoreError};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Detector worker threads (≥ 1).
    pub workers: usize,
    /// Bounded queue depth; a request arriving when `queue_depth` jobs
    /// are already waiting is rejected `overloaded` (≥ 1).
    pub queue_depth: usize,
    /// Default per-request deadline (overridable per request with
    /// `deadline_ms`). `None` runs unbounded.
    pub default_deadline: Option<Duration>,
    /// Base scheduler configuration. `semantics` is overridden per
    /// request; `pair_deadline` is derived from the request deadline.
    pub sched: SchedConfig,
    /// Document store configuration (admission bound, merge retries).
    pub store: StoreConfig,
    /// Data directory for the document store's WAL and snapshots.
    /// `None` (the default) keeps the store purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// Fsync policy for the WAL (meaningful only with `data_dir`). A
    /// `doc_put` is acked only after its record is durable per this
    /// policy.
    pub fsync: FsyncPolicy,
    /// Compact the WAL every this many records (0 disables).
    pub snapshot_every: u64,
    /// How long a connection may sit on a *partial* request line before
    /// the server answers `timeout` and closes it (the slow-loris
    /// guard). Idle connections with no partial line are never timed
    /// out. `None` disables the guard.
    pub read_timeout: Option<Duration>,
    /// Maximum request-line length; longer lines are answered
    /// `bad-request` and the connection closed (instead of buffering
    /// without bound).
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            default_deadline: Some(Duration::from_millis(100)),
            data_dir: None,
            fsync: FsyncPolicy::Always,
            snapshot_every: 1024,
            read_timeout: Some(Duration::from_secs(10)),
            max_line_bytes: proto::MAX_LINE_BYTES,
            sched: SchedConfig {
                // Single-pair checks run on the worker thread itself;
                // batch fan-out inside one request would oversubscribe
                // the pool.
                jobs: 1,
                // A latency-oriented budget for the NP-side searches.
                // The batch default (200 000 trees) can burn hundreds of
                // milliseconds on one exotic update–update pair; under a
                // request deadline that degrades to conservative-deadline,
                // which is *never memoized* — so the server would re-pay
                // the full search on every repeat of the pair. A small
                // budget exhausts in single-digit milliseconds and lands
                // on conservative-undecided, which is memoized and still
                // sound (degraded, so clients can see it was not exact).
                np_max_trees: 5_000,
                ..SchedConfig::default()
            },
            store: StoreConfig::default(),
        }
    }
}

/// Totals for one server lifetime, returned by [`Server::run`].
/// Satisfies `accepted == completed + rejected_overload + failed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections served.
    pub connections: u64,
    /// Complete request lines received.
    pub accepted: u64,
    /// Requests answered `ok: true`.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected_overload: u64,
    /// Requests that failed for any other reason (bad request, internal
    /// error, shutdown race).
    pub failed: u64,
}

/// One admitted unit of work.
struct Job {
    req: Request,
    received: Instant,
    deadline: Option<Instant>,
    slot: Arc<Slot>,
}

/// Where a worker deposits the response for a waiting connection thread.
struct Slot {
    resp: Mutex<Option<String>>,
    cond: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            resp: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn fill(&self, s: String) {
        let mut guard = self.resp.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(s);
        self.cond.notify_one();
    }

    fn wait(&self) -> String {
        let mut guard = self.resp.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(s) = guard.take() {
                return s;
            }
            guard = self.cond.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

enum PushError {
    Full,
    Closed,
}

/// The bounded job queue. `close` flips `closed` and wakes everyone;
/// `pop` keeps handing out already-admitted jobs until the queue is
/// empty *and* closed — that is the drain guarantee.
struct Queue {
    state: Mutex<QueueState>,
    cond: Condvar,
    depth: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl Queue {
    fn new(depth: usize) -> Queue {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            depth: depth.max(1),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.jobs.len() >= self.depth {
            return Err(PushError::Full);
        }
        st.jobs.push_back(job);
        self.cond.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        self.cond.notify_all();
    }

    fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }
}

fn sem_index(s: Semantics) -> usize {
    match s {
        Semantics::Node => 0,
        Semantics::Tree => 1,
        Semantics::Value => 2,
    }
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    cfg: ServeConfig,
    start: Instant,
    shutdown: AtomicBool,
    queue: Queue,
    /// One scheduler per semantics: the pairwise memo cache is relative
    /// to the semantics it was computed under, so the three caches must
    /// not mix. Interners and compiled-chain caches still converge
    /// because the automata layer's compile cache is process-wide.
    scheds: [Mutex<Scheduler>; 3],
    /// The document store behind the `doc_*` routes.
    store: Store,
    /// Registry snapshot taken at bind time. The metrics route reports
    /// the delta against it: counters and histograms as this server's
    /// own activity, gauges as current levels — so a server started
    /// after another finishes reports only its own counts.
    ///
    /// Known limitation: the registry is process-global, so this
    /// isolation holds for *sequential* servers only. Two servers
    /// serving concurrently in one process see each other's increments
    /// in their deltas, and their gauge refreshes race. Exact
    /// per-server metrics under overlap needs a per-instance registry
    /// namespace; until then, embedders wanting exact numbers must not
    /// overlap server lifetimes in a process.
    baseline: Snapshot,
    connections: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
}

impl Shared {
    fn sched_for(&self, sem: Semantics) -> &Mutex<Scheduler> {
        &self.scheds[sem_index(sem)]
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A handle for requesting graceful shutdown from another thread (the
/// CLI's signal hook, a test harness).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting, drain in-flight work.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` for an
    /// ephemeral port) without starting the loops.
    pub fn bind(cfg: ServeConfig, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mk = |sem: Semantics| {
            Mutex::new(Scheduler::new(SchedConfig {
                semantics: sem,
                ..cfg.sched
            }))
        };
        // Recover (or initialize) the durable store before accepting a
        // single connection: a server that cannot trust its data
        // directory must not come up at all.
        let store = match &cfg.data_dir {
            Some(dir) => Store::open(
                cfg.store,
                DurabilityConfig {
                    dir: dir.clone(),
                    fsync: cfg.fsync,
                    snapshot_every: cfg.snapshot_every,
                },
            )
            .map_err(|e| std::io::Error::other(e.to_string()))?,
            None => Store::new(cfg.store),
        };
        let shared = Arc::new(Shared {
            queue: Queue::new(cfg.queue_depth),
            scheds: [
                mk(Semantics::Node),
                mk(Semantics::Tree),
                mk(Semantics::Value),
            ],
            store,
            baseline: cxu_obs::registry().snapshot(),
            cfg,
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// What startup recovery found (durable stores only) — the CLI
    /// prints this before announcing the listening address.
    pub fn recovery_report(&self) -> Option<cxu_store::RecoveryReport> {
        self.shared.store.recovery_report()
    }

    /// Runs the accept loop until shutdown, then drains and joins every
    /// thread the server started. No thread outlives this call.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true)?;

        let mut workers = Vec::with_capacity(shared.cfg.workers.max(1));
        for _ in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shared.shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    cxu_obs::counter!("serve.connections").inc();
                    let shared = Arc::clone(&shared);
                    conns.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared)
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    conns.retain(|h| !h.is_finished());
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    shared.begin_shutdown();
                    shared.queue.close();
                    for h in workers.drain(..).chain(conns.drain(..)) {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }

        // Drain: stop accepting (drop the listener), let workers finish
        // every admitted job, then let connection threads deliver the
        // responses and notice the flag.
        drop(listener);
        shared.queue.close();
        for h in workers {
            let _ = h.join();
        }
        for h in conns {
            let _ = h.join();
        }
        // Graceful drain leaves nothing for the next boot to replay:
        // flush buffered records, then snapshot and reset the log.
        if shared.store.is_durable() {
            let _ = shared.store.flush();
            let _ = shared.store.compact();
        }
        // The CLI disables (and thereby flushes) the trace sink after
        // this returns; the event marks the drain as complete.
        if cxu_obs::trace::enabled() {
            cxu_obs::trace::event(
                "serve.shutdown",
                &[(
                    "accepted",
                    (shared.accepted.load(Ordering::Relaxed) as usize).into(),
                )],
            );
        }

        Ok(ServeSummary {
            connections: shared.connections.load(Ordering::Relaxed),
            accepted: shared.accepted.load(Ordering::Relaxed),
            completed: shared.completed.load(Ordering::Relaxed),
            rejected_overload: shared.rejected.load(Ordering::Relaxed),
            failed: shared.failed.load(Ordering::Relaxed),
        })
    }
}

/// Counts one request outcome (the accounting identity's right side).
enum Outcome {
    Completed,
    RejectedOverload,
    Failed,
}

fn tally(shared: &Shared, o: Outcome) {
    match o {
        Outcome::Completed => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            cxu_obs::counter!("serve.completed").inc();
        }
        Outcome::RejectedOverload => {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            cxu_obs::counter!("serve.rejected_overload").inc();
        }
        Outcome::Failed => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            cxu_obs::counter!("serve.failed").inc();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let resp = process_job(shared, &job);
        job.slot.fill(resp);
    }
}

/// Decides one admitted job on a worker thread. Panics (real or
/// injected at the `serve::request` site) are caught here: the request
/// fails, the worker survives.
fn process_job(shared: &Shared, job: &Job) -> String {
    if job.req.delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(job.req.delay_ms));
    }
    let run = || -> Result<String, String> {
        if failpoints::fire("serve::request") {
            return Err("injected budget exhaustion".to_owned());
        }
        let deadline = match job.deadline {
            Some(at) => Deadline::at(at),
            None => Deadline::never(),
        };
        match &job.req.route {
            Route::Check { a, b } => {
                let mut sched = shared
                    .sched_for(job.req.semantics)
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                let d = sched.check_pair(a, b, &deadline);
                drop(sched);
                cxu_obs::histogram!("serve.check_ns").record_since(job.received);
                Ok(proto::render_check(job.req.id, &d))
            }
            Route::Schedule { ops } => {
                let mut sched = shared
                    .sched_for(job.req.semantics)
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                // Budget the batch with the request's remaining time as
                // the per-pair slice — a resource-envelope change, so
                // the memo cache survives (`Scheduler::set_config`).
                let mut cfg = *sched.config();
                cfg.pair_deadline = match job.deadline {
                    Some(at) => Some(at.saturating_duration_since(Instant::now())),
                    None => shared.cfg.sched.pair_deadline,
                };
                sched.set_config(cfg);
                let out = sched.run(ops);
                drop(sched);
                cxu_obs::histogram!("serve.schedule_ns").record_since(job.received);
                Ok(proto::render_schedule(
                    job.req.id,
                    &out.schedule.rounds,
                    &out.stats,
                ))
            }
            Route::DocPut {
                doc,
                base_rev,
                payload,
            } => {
                // The merge rung consults the routed detectors; each
                // pair takes the request-semantics scheduler lock for
                // exactly one `check_pair` (the store holds no lock of
                // its own while this closure runs).
                let mut check = |a: &Op, b: &Op| {
                    let mut sched = shared
                        .sched_for(job.req.semantics)
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    sched.check_pair(a, b, &deadline)
                };
                let out = shared
                    .store
                    .put(doc, *base_rev, (**payload).clone(), &mut check);
                cxu_obs::histogram!("serve.doc_put_ns").record_since(job.received);
                Ok(match out {
                    Ok(o) => proto::render_doc_put(job.req.id, "doc_put", doc, &o),
                    Err(e) => proto::render_doc_rejected(job.req.id, "doc_put", doc, &e),
                })
            }
            Route::DocDelete { doc, rev } => {
                let out = shared.store.delete(doc, *rev);
                cxu_obs::histogram!("serve.doc_put_ns").record_since(job.received);
                Ok(match out {
                    Ok(o) => proto::render_doc_put(job.req.id, "doc_delete", doc, &o),
                    Err(e) => proto::render_doc_rejected(job.req.id, "doc_delete", doc, &e),
                })
            }
            Route::DocGet {
                doc,
                rev,
                conflicts,
            } => {
                let out = shared.store.get(doc, *rev, *conflicts);
                cxu_obs::histogram!("serve.doc_get_ns").record_since(job.received);
                Ok(match out {
                    Ok(o) => proto::render_doc_get(job.req.id, doc, &o),
                    Err(e @ (StoreError::NotFound(_) | StoreError::UnknownRev(_))) => {
                        proto::render_doc_not_found(job.req.id, doc, &e)
                    }
                    Err(e) => proto::render_doc_rejected(job.req.id, "doc_get", doc, &e),
                })
            }
            Route::DocChanges { since, limit } => {
                let (entries, last_seq) = shared.store.changes(*since, *limit);
                cxu_obs::histogram!("serve.doc_get_ns").record_since(job.received);
                Ok(proto::render_doc_changes(job.req.id, &entries, last_seq))
            }
            // Admin routes are answered inline on the connection thread
            // and never enter the queue.
            Route::Metrics | Route::Health | Route::Shutdown => {
                Err("admin route reached the worker pool".to_owned())
            }
        }
    };
    let result = catch_unwind(AssertUnwindSafe(run)).unwrap_or_else(|_| {
        cxu_obs::counter!("serve.panics").inc();
        Err("request panicked (isolated)".to_owned())
    });
    match result {
        Ok(resp) => {
            tally(shared, Outcome::Completed);
            resp
        }
        Err(detail) => {
            // A document mutation that died (panic, injected fault)
            // before the store could answer still counts in the store
            // partition: `store.puts` moves together with
            // `store.put.failed`, preserving the identity
            // `puts == applied + merged + branched + rejected + noop +
            // failed` (the store itself tallies only at success or
            // rejection, never on an unwound put).
            if matches!(
                job.req.route,
                Route::DocPut { .. } | Route::DocDelete { .. }
            ) {
                cxu_obs::counter!("store.puts").inc();
                cxu_obs::counter!("store.put.failed").inc();
            }
            tally(shared, Outcome::Failed);
            proto::render_error(job.req.id, "internal", &detail)
        }
    }
}

/// Serves one connection: resumable line reads under a poll timeout
/// (partial bytes persist across timeouts), admission per request,
/// in-order responses.
/// Counts a request the socket layer itself rejects (oversized line,
/// stalled partial line): it enters the accounting identity as
/// accepted + failed, exactly like a request a worker failed.
fn reject_at_socket(stream: &mut TcpStream, shared: &Shared, code: &str, detail: &str) {
    shared.accepted.fetch_add(1, Ordering::Relaxed);
    cxu_obs::counter!("serve.accepted").inc();
    tally(shared, Outcome::Failed);
    let resp = proto::render_error(None, code, detail);
    let _ = write_line(stream, &resp);
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut stream = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 8 * 1024];
    // Set while `pending` holds an incomplete line; the slow-loris
    // guard measures from the line's *first* byte, so trickling one
    // byte per poll cannot keep a connection alive forever.
    let mut partial_since: Option<Instant> = None;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return, // client closed
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                // Serve every complete line; keep the remainder.
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    if !serve_line(&line[..pos], &mut stream, shared) {
                        return;
                    }
                }
                if pending.is_empty() {
                    partial_since = None;
                } else if partial_since.is_none() {
                    partial_since = Some(Instant::now());
                }
                if pending.len() > shared.cfg.max_line_bytes {
                    cxu_obs::counter!("serve.oversized_line").inc();
                    reject_at_socket(&mut stream, shared, "bad-request", {
                        "request line too long"
                    });
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
        if let (Some(since), Some(limit)) = (partial_since, shared.cfg.read_timeout) {
            if since.elapsed() >= limit {
                cxu_obs::counter!("serve.read_timeouts").inc();
                reject_at_socket(&mut stream, shared, "timeout", "request line stalled");
                return;
            }
        }
    }
}

fn write_line(stream: &mut TcpStream, resp: &str) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(resp.len() + 1);
    out.extend_from_slice(resp.as_bytes());
    out.push(b'\n');
    stream.write_all(&out)
}

/// Handles one complete request line. Returns false when the connection
/// should close (write failure).
fn serve_line(line: &[u8], stream: &mut TcpStream, shared: &Shared) -> bool {
    let received = Instant::now();
    shared.accepted.fetch_add(1, Ordering::Relaxed);
    cxu_obs::counter!("serve.accepted").inc();
    cxu_obs::gauge!("serve.in_flight").inc();
    let resp = respond(line, received, shared);
    cxu_obs::gauge!("serve.in_flight").dec();
    cxu_obs::histogram!("serve.request_ns").record_since(received);
    write_line(stream, &resp).is_ok()
}

fn respond(line: &[u8], received: Instant, shared: &Shared) -> String {
    let text = match std::str::from_utf8(line) {
        Ok(t) => t,
        Err(_) => {
            tally(shared, Outcome::Failed);
            return proto::render_error(None, "bad-request", "request line is not UTF-8");
        }
    };
    let req = match proto::parse_request(text) {
        Ok(r) => r,
        Err(e) => {
            tally(shared, Outcome::Failed);
            return proto::render_error(None, "bad-request", &e);
        }
    };
    match &req.route {
        // Admin routes bypass the queue: they must answer precisely
        // when the pool is saturated.
        Route::Health => {
            tally(shared, Outcome::Completed);
            proto::render_health(
                req.id,
                shared.start.elapsed().as_millis().min(u64::MAX as u128) as u64,
                cxu_obs::gauge!("serve.in_flight").get(),
                shared.queue.len(),
                shared.shutting_down(),
            )
        }
        Route::Metrics => {
            tally(shared, Outcome::Completed);
            // Counters and histograms report this server's activity
            // (delta against the bind-time baseline); gauges report
            // current levels, refreshed for the store just now.
            shared.store.set_gauges();
            let snap = cxu_obs::registry().snapshot().delta(&shared.baseline);
            proto::render_metrics(req.id, &snap.to_json())
        }
        Route::Shutdown => {
            tally(shared, Outcome::Completed);
            let resp = proto::render_shutdown(req.id);
            shared.begin_shutdown();
            resp
        }
        Route::Check { .. }
        | Route::Schedule { .. }
        | Route::DocPut { .. }
        | Route::DocGet { .. }
        | Route::DocDelete { .. }
        | Route::DocChanges { .. } => {
            let deadline_ms = req.deadline_ms.map(Duration::from_millis);
            let deadline = deadline_ms
                .or(shared.cfg.default_deadline)
                .map(|d| received + d);
            let slot = Slot::new();
            let id = req.id;
            let job = Job {
                req,
                received,
                deadline,
                slot: Arc::clone(&slot),
            };
            match shared.queue.try_push(job) {
                Ok(()) => slot.wait(), // the worker tallies the outcome
                Err(PushError::Full) => {
                    tally(shared, Outcome::RejectedOverload);
                    proto::render_error(id, "overloaded", "queue full")
                }
                Err(PushError::Closed) => {
                    tally(shared, Outcome::Failed);
                    proto::render_error(id, "shutting-down", "server is draining")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_gen::json::Json;
    use std::io::BufRead;

    fn roundtrip(stream: &mut TcpStream, req: &str) -> Json {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim_end()).unwrap()
    }

    #[test]
    fn smoke_check_and_shutdown() {
        let server = Server::bind(ServeConfig::default(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run().unwrap());
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        let req = r#"{"route": "check", "id": 1,
                "a": {"kind": "read", "pattern": "*//C"},
                "b": {"kind": "insert", "pattern": "*/B", "subtree": "C"}}"#
            .replace('\n', " ");
        let v = roundtrip(&mut c, &req);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("conflict").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));

        let v = roundtrip(&mut c, r#"{"route": "health"}"#);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));

        let v = roundtrip(&mut c, r#"{"route": "shutdown"}"#);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("draining"));
        drop(c);
        let summary = t.join().unwrap();
        assert_eq!(summary.connections, 1);
        assert_eq!(
            summary.accepted,
            summary.completed + summary.rejected_overload + summary.failed
        );
        assert_eq!(summary.failed, 0);
    }

    #[test]
    fn bad_requests_fail_without_closing_the_connection() {
        let server = Server::bind(ServeConfig::default(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let t = std::thread::spawn(move || server.run().unwrap());
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        let v = roundtrip(&mut c, "this is not json");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("bad-request"));

        // The same connection still serves good requests afterwards.
        let v = roundtrip(&mut c, r#"{"route": "health"}"#);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));

        handle.shutdown();
        drop(c);
        let summary = t.join().unwrap();
        assert_eq!(summary.failed, 1);
        assert_eq!(
            summary.accepted,
            summary.completed + summary.rejected_overload + summary.failed
        );
    }
}
