//! Kill-9 crash-injection harness for the durable document store.
//!
//! The headline durability claim (DESIGN.md §8) is *prefix
//! consistency*: after a crash, the recovered store is exactly the
//! state at some prefix of the WAL that includes **every write the
//! server acknowledged** — acked revisions survive, nothing the log
//! never recorded materializes, and the winner rule is unchanged.
//! This module checks that claim the only way it can honestly be
//! checked: by killing a real server process with SIGKILL at seeded
//! random points under live editor load and restarting it from its
//! data directory, many times over, against a ledger of acknowledged
//! commits kept on the client side of the socket.
//!
//! Per cycle:
//!
//! 1. spawn `<bin> serve --data-dir D --fsync always` as a child
//!    process and read the announced address (and, from the second
//!    cycle on, the recovery report) off its stdout;
//! 2. **validate** the recovered state against the ledger — every
//!    acked revision readable via `doc_get rev=`, no phantom
//!    revisions beyond the in-flight bound, changes feed strictly
//!    monotonic with the recovered `seq` covering every acked seq,
//!    winner agreeing with the client-side revision ordering;
//! 3. run seeded editor threads pushing `doc_put`/`doc_delete`
//!    against shared documents, appending each acknowledged response
//!    to the ledger;
//! 4. after a seeded random uptime, SIGKILL the child mid-load.
//!
//! The phantom bound is exact, not heuristic: editors send one
//! request at a time, so a crash can strand at most one
//! durable-but-unacked commit per editor — after `k` kills the
//! recovered revision count may exceed the acked mint count by at
//! most `editors × k`.

use crate::loadgen::LineClient;
use cxu_gen::json::Json;
use cxu_gen::patterns::PatternParams;
use cxu_gen::program::{random_program, ProgramParams};
use cxu_gen::rng::{Rng, SplitMix64};
use cxu_gen::wire;
use cxu_store::RevId;
use std::collections::HashSet;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for [`run`].
#[derive(Clone, Debug)]
pub struct CrashConfig {
    /// The server binary (a `cxu` CLI build; the harness invokes
    /// `<bin> serve …`).
    pub server_bin: PathBuf,
    /// Data directory shared by every server incarnation.
    pub data_dir: PathBuf,
    /// Number of kill/restart cycles.
    pub cycles: u32,
    /// Concurrent editor threads per cycle.
    pub editors: usize,
    /// Concurrent transaction-editor threads per cycle: each races
    /// atomic multi-op `txn` requests (1–[`TXN_EDITOR_MAX_OPS`] writes
    /// over 1–2 documents) against the same shared documents the plain
    /// editors mutate. Acked transactions are ledgered as *sets* so
    /// recovery can be checked for all-or-nothing survival.
    pub txn_editors: usize,
    /// Shared documents the editors race over.
    pub docs: usize,
    /// Seed for uptimes, editor streams, and the op pool.
    pub seed: u64,
    /// Uptime before the SIGKILL is drawn from this range (ms).
    pub min_uptime_ms: u64,
    /// Upper end of the uptime range (ms).
    pub max_uptime_ms: u64,
}

impl CrashConfig {
    /// Defaults for everything but the binary and data dir.
    pub fn new(server_bin: PathBuf, data_dir: PathBuf) -> CrashConfig {
        CrashConfig {
            server_bin,
            data_dir,
            cycles: 100,
            editors: 4,
            txn_editors: 2,
            docs: 3,
            seed: 0,
            min_uptime_ms: 40,
            max_uptime_ms: 250,
        }
    }
}

/// What the harness observed; [`CrashReport::ok`] is the verdict.
#[derive(Debug, Default)]
pub struct CrashReport {
    /// Kill/restart cycles completed.
    pub cycles: u32,
    /// Acknowledged commits in the ledger (including noop resolutions).
    pub acked: u64,
    /// Distinct revisions the acks minted (the survival set).
    pub minted: u64,
    /// Validation probes issued across all recoveries.
    pub checked: u64,
    /// Acked revisions missing after a recovery. Must be 0.
    pub lost: u64,
    /// Recovered revisions beyond the in-flight bound. Must be 0.
    pub phantoms: u64,
    /// Changes-feed / winner-rule / seq violations. Must be empty.
    pub violations: Vec<String>,
    /// Revisions in the final recovered store.
    pub recovered_revisions: u64,
    /// Sequence number of the final recovered store.
    pub recovered_seq: u64,
    /// WAL records replayed, summed over all recoveries.
    pub replayed_records: u64,
    /// Recoveries that truncated a torn tail (crash hit mid-append).
    pub torn_recoveries: u64,
    /// Acknowledged transactions in the ledger (each a set of minted
    /// revisions that must survive recovery together).
    pub txn_acked: u64,
    /// Acked transactions found *partially* surviving a recovery —
    /// some revisions readable, some gone. Must be 0: the WAL commits
    /// a transaction as one checksummed frame, so a torn tail drops
    /// the whole frame or none of it.
    pub txn_partial: u64,
}

impl CrashReport {
    /// The durability verdict: no acked write lost, no phantom
    /// revision, no torn transaction, no consistency violation.
    pub fn ok(&self) -> bool {
        self.lost == 0 && self.phantoms == 0 && self.txn_partial == 0 && self.violations.is_empty()
    }

    /// Machine-readable report (the CI artifact).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(self.ok())),
            ("cycles", Json::from(u64::from(self.cycles))),
            ("acked", Json::from(self.acked)),
            ("minted", Json::from(self.minted)),
            ("checked", Json::from(self.checked)),
            ("lost", Json::from(self.lost)),
            ("phantoms", Json::from(self.phantoms)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| Json::str(v.as_str()))
                        .collect(),
                ),
            ),
            ("recovered_revisions", Json::from(self.recovered_revisions)),
            ("recovered_seq", Json::from(self.recovered_seq)),
            ("replayed_records", Json::from(self.replayed_records)),
            ("torn_recoveries", Json::from(self.torn_recoveries)),
            ("txn_acked", Json::from(self.txn_acked)),
            ("txn_partial", Json::from(self.txn_partial)),
        ])
    }
}

/// One acknowledged commit, as the client saw it.
#[derive(Clone, Debug)]
struct Acked {
    doc: String,
    rev: String,
    /// Did this ack mint a new revision (`created`/`applied`/
    /// `merged`/`branched`/`deleted`) or resolve to an existing one
    /// (`noop`)?
    minted: bool,
    seq: u64,
}

/// Most writes one txn-editor transaction carries. Feeds the phantom
/// bound: a crash strands at most one durable-but-unacked transaction
/// per txn editor, and that transaction mints at most this many
/// revisions.
pub const TXN_EDITOR_MAX_OPS: u64 = 3;

/// One acked transaction: the `(doc, rev)` set the server committed
/// atomically. Recovery must preserve it all-or-nothing (and, since
/// every member is also in the per-revision ledger, in practice all).
type TxnSet = Vec<(String, String)>;

/// A server child whose stdout has been parsed up to the readiness
/// line. Dropping it SIGKILLs the process (the harness's whole point
/// is that this is safe).
struct Server {
    child: Child,
    addr: String,
    recovery: Option<Json>,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(cfg: &CrashConfig) -> Result<Server, String> {
    let mut child = Command::new(&cfg.server_bin)
        .arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("2")
        .arg("--queue-depth")
        .arg("128")
        .arg("--data-dir")
        .arg(&cfg.data_dir)
        .arg("--fsync")
        .arg("always")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", cfg.server_bin.display()))?;
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut reader = BufReader::new(stdout);
    let mut addr = None;
    let mut recovery = None;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut line = String::new();
    while Instant::now() < deadline {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // child died before announcing
            Ok(_) => {}
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("reading server stdout: {e}"));
            }
        }
        if let Some(json) = line.trim().strip_prefix("cxu-serve recovered ") {
            recovery = Json::parse(json).ok();
        } else if let Some(a) = line.trim().strip_prefix("cxu-serve listening on ") {
            addr = Some(a.to_owned());
            break;
        }
    }
    // Keep draining stdout so the child never blocks on a full pipe
    // (it prints a drain summary on graceful exit).
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    match addr {
        Some(addr) => Ok(Server {
            child,
            addr,
            recovery,
        }),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err("server never announced its address".into())
        }
    }
}

/// Client-side copy of the store's winner rule: live beats deleted,
/// then higher generation, then higher hash. The harness re-derives
/// it from the wire revision strings on purpose — agreement between
/// two independent implementations is the check.
fn beats(a: &str, b: &str) -> bool {
    let parse = |s: &str| -> (u64, String) {
        match s.split_once('-') {
            Some((g, h)) => (g.parse().unwrap_or(0), h.to_owned()),
            None => (0, s.to_owned()),
        }
    };
    parse(a) > parse(b)
}

fn push_violation(report: &mut CrashReport, msg: String) {
    if report.violations.len() < 12 {
        report.violations.push(msg);
    }
}

/// Probes a freshly recovered server against the ledger.
fn validate_recovery(
    addr: &str,
    ledger: &[Acked],
    txn_ledger: &[TxnSet],
    kills_so_far: u64,
    cfg: &CrashConfig,
    recovery: Option<&Json>,
    report: &mut CrashReport,
) -> Result<(), String> {
    let mut client = LineClient::connect(addr)?;

    // 1. Survival: every acked revision is still readable by name.
    let distinct: HashSet<(&str, &str)> = ledger
        .iter()
        .map(|a| (a.doc.as_str(), a.rev.as_str()))
        .collect();
    let mut survived: HashSet<(&str, &str)> = HashSet::new();
    for (doc, rev) in &distinct {
        let v = client.roundtrip(&format!(
            "{{\"route\": \"doc_get\", \"doc\": \"{doc}\", \"rev\": \"{rev}\"}}"
        ))?;
        report.checked += 1;
        let found = v.get("ok").and_then(Json::as_bool) == Some(true)
            && v.get("found").and_then(Json::as_bool) != Some(false);
        if found {
            survived.insert((doc, rev));
        } else {
            report.lost += 1;
            push_violation(report, format!("acked {doc}@{rev} lost after recovery"));
        }
    }

    // 1b. Transaction atomicity: every acked transaction's revision set
    // survives together. Each member is also an acked revision, so a
    // missing member already counts as `lost`; a *mixed* set — some
    // members readable, some gone — is additionally a torn transaction,
    // which the single-WAL-frame commit makes impossible by design.
    for set in txn_ledger {
        report.checked += 1;
        let found = set
            .iter()
            .filter(|(doc, rev)| survived.contains(&(doc.as_str(), rev.as_str())))
            .count();
        if found != 0 && found != set.len() {
            report.txn_partial += 1;
            push_violation(
                report,
                format!(
                    "txn over {:?} recovered torn: {found} of {} revisions survive",
                    set.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>(),
                    set.len()
                ),
            );
        }
    }

    // 2. Phantoms: the recovery report's revision count may exceed
    // the acked mints only by the stranded in-flight bound.
    if let Some(r) = recovery {
        let revisions = r.get("revisions").and_then(Json::as_u64).unwrap_or(0);
        let seq = r.get("seq").and_then(Json::as_u64).unwrap_or(0);
        report.recovered_revisions = revisions;
        report.recovered_seq = seq;
        report.replayed_records += r
            .get("replayed_records")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if r.get("torn_bytes").and_then(Json::as_u64).unwrap_or(0) > 0 {
            report.torn_recoveries += 1;
        }
        let minted: u64 = ledger.iter().filter(|a| a.minted).count() as u64;
        // Each kill strands at most one in-flight commit per plain
        // editor (one revision) and one in-flight transaction per txn
        // editor (up to TXN_EDITOR_MAX_OPS revisions).
        let stranded_per_kill = cfg.editors as u64 + cfg.txn_editors as u64 * TXN_EDITOR_MAX_OPS;
        let bound = minted + stranded_per_kill * kills_so_far;
        report.checked += 1;
        if revisions > bound {
            report.phantoms += revisions - bound;
            push_violation(
                report,
                format!("{revisions} recovered revisions exceed the bound {bound}"),
            );
        }
        let max_acked_seq = ledger.iter().map(|a| a.seq).max().unwrap_or(0);
        report.checked += 1;
        if seq < max_acked_seq {
            push_violation(
                report,
                format!("recovered seq {seq} below acked seq {max_acked_seq}"),
            );
        }
    }

    // 3. Changes feed: strictly monotonic, one entry per document,
    // winner in agreement with doc_get and the client-side ordering.
    let changes = client.roundtrip("{\"route\": \"doc_changes\"}")?;
    let entries = changes
        .get("results")
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    let mut last_seq = 0u64;
    let mut seen_docs: HashSet<String> = HashSet::new();
    for e in &entries {
        report.checked += 1;
        let seq = e.get("seq").and_then(Json::as_u64).unwrap_or(0);
        let doc = e.get("doc").and_then(Json::as_str).unwrap_or("").to_owned();
        if seq <= last_seq {
            push_violation(report, format!("changes seq {seq} not increasing"));
        }
        last_seq = seq;
        if !seen_docs.insert(doc.clone()) {
            push_violation(report, format!("doc {doc} appears twice in changes"));
        }
        let feed_rev = e.get("rev").and_then(Json::as_str).unwrap_or("").to_owned();
        let g = client.roundtrip(&format!(
            "{{\"route\": \"doc_get\", \"doc\": \"{doc}\", \"conflicts\": true}}"
        ))?;
        let winner = g.get("rev").and_then(Json::as_str).unwrap_or("").to_owned();
        if winner != feed_rev {
            push_violation(
                report,
                format!("doc {doc}: changes rev {feed_rev} != winner {winner}"),
            );
        }
        if RevId::from_str(&winner).is_err() {
            push_violation(report, format!("doc {doc}: unparsable winner {winner:?}"));
        }
        for c in g.get("conflicts").and_then(Json::as_arr).unwrap_or(&[]) {
            report.checked += 1;
            let loser = c.as_str().unwrap_or("");
            if !beats(&winner, loser) {
                push_violation(
                    report,
                    format!("doc {doc}: winner {winner} does not beat live leaf {loser}"),
                );
            }
        }
    }
    Ok(())
}

/// One editor thread: races `doc_put`s (with occasional deletes and
/// resurrections) until the stop flag or the socket dies under it.
/// Returns the commits the *server acknowledged* — the set the next
/// recovery must preserve.
fn editor_loop(
    addr: &str,
    seed: u64,
    docs: usize,
    op_json: &[String],
    stop: &AtomicBool,
) -> Vec<Acked> {
    let mut acked = Vec::new();
    let Ok(mut client) = LineClient::connect(addr) else {
        return acked;
    };
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = op_json.len();
    // Each editor starts blind: fetch winners lazily, tolerate races.
    let mut revs: Vec<Option<String>> = vec![None; docs];
    while !stop.load(Ordering::Relaxed) {
        let d = rng.gen_range(0..docs);
        let req = match &revs[d] {
            None => format!("{{\"route\": \"doc_get\", \"doc\": \"doc-{d}\"}}"),
            Some(rev) if rng.gen_bool(0.04) => {
                format!("{{\"route\": \"doc_delete\", \"doc\": \"doc-{d}\", \"rev\": \"{rev}\"}}")
            }
            Some(rev) => format!(
                "{{\"route\": \"doc_put\", \"doc\": \"doc-{d}\", \"base_rev\": \"{rev}\", \
                 \"op\": {}, \"semantics\": \"value\"}}",
                op_json[rng.gen_range(0..n)]
            ),
        };
        let Ok(v) = client.roundtrip(&req) else {
            break; // the kill landed
        };
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            continue; // overloaded — just retry another draw
        }
        let route = v.get("route").and_then(Json::as_str).unwrap_or("");
        if route == "doc_get" {
            revs[d] = v.get("rev").and_then(Json::as_str).map(str::to_owned);
            continue;
        }
        let result = v.get("result").and_then(Json::as_str).unwrap_or("rejected");
        let deleted_winner = v.get("winner_deleted").and_then(Json::as_bool) == Some(true);
        if result == "rejected" || deleted_winner {
            // Stale view (or tombstoned doc): resurrect with fresh
            // content — itself a ledgered commit if acked.
            let Ok(r) = client.roundtrip(&format!(
                "{{\"route\": \"doc_put\", \"doc\": \"doc-{d}\", \"content\": \"r{seed}(a b)\"}}"
            )) else {
                break;
            };
            if r.get("ok").and_then(Json::as_bool) == Some(true) {
                if let (Some(rev), Some(res)) = (
                    r.get("rev").and_then(Json::as_str),
                    r.get("result").and_then(Json::as_str),
                ) {
                    if res != "rejected" {
                        acked.push(Acked {
                            doc: format!("doc-{d}"),
                            rev: rev.to_owned(),
                            minted: res != "noop",
                            seq: r.get("seq").and_then(Json::as_u64).unwrap_or(0),
                        });
                        revs[d] = r
                            .get("winner")
                            .or_else(|| r.get("rev"))
                            .and_then(Json::as_str)
                            .map(str::to_owned);
                    } else {
                        revs[d] = None;
                    }
                }
            }
            continue;
        }
        if let Some(rev) = v.get("rev").and_then(Json::as_str) {
            acked.push(Acked {
                doc: format!("doc-{d}"),
                rev: rev.to_owned(),
                minted: result != "noop",
                seq: v.get("seq").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        revs[d] = v.get("winner").and_then(Json::as_str).map(str::to_owned);
    }
    acked
}

/// One transaction-editor thread: races atomic multi-op `txn`
/// requests (1–[`TXN_EDITOR_MAX_OPS`] update writes over one or two
/// shared documents, guarded at the winners this editor last saw)
/// until the stop flag or the socket dies under it. Returns the
/// per-revision acks for the shared ledger plus the acked revision
/// *sets*, one per committed transaction, for the atomicity check.
fn txn_editor_loop(
    addr: &str,
    seed: u64,
    docs: usize,
    op_json: &[String],
    stop: &AtomicBool,
) -> (Vec<Acked>, Vec<TxnSet>) {
    let mut acked = Vec::new();
    let mut txns: Vec<TxnSet> = Vec::new();
    let Ok(mut client) = LineClient::connect(addr) else {
        return (acked, txns);
    };
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = op_json.len();
    // Like the plain editors: start blind, fetch winners lazily, and
    // tolerate races (a plain editor may tombstone a document under
    // us — the txn is rejected and the refresh below resurrects).
    let mut revs: Vec<Option<String>> = vec![None; docs];
    while !stop.load(Ordering::Relaxed) {
        let d1 = rng.gen_range(0..docs);
        if revs[d1].is_none() {
            let Ok(v) = client.roundtrip(&format!(
                "{{\"route\": \"doc_get\", \"doc\": \"doc-{d1}\"}}"
            )) else {
                break;
            };
            match v.get("rev").and_then(Json::as_str) {
                Some(rev) if v.get("deleted").and_then(Json::as_bool) != Some(true) => {
                    revs[d1] = Some(rev.to_owned());
                }
                _ => {
                    // Deleted or never created: resurrect, ledgered.
                    let Ok(r) = client.roundtrip(&format!(
                        "{{\"route\": \"doc_put\", \"doc\": \"doc-{d1}\", \"content\": \"r{seed}(a b)\"}}"
                    )) else {
                        break;
                    };
                    if r.get("ok").and_then(Json::as_bool) == Some(true) {
                        if let (Some(rev), Some(res)) = (
                            r.get("rev").and_then(Json::as_str),
                            r.get("result").and_then(Json::as_str),
                        ) {
                            if res != "rejected" {
                                acked.push(Acked {
                                    doc: format!("doc-{d1}"),
                                    rev: rev.to_owned(),
                                    minted: res != "noop",
                                    seq: r.get("seq").and_then(Json::as_u64).unwrap_or(0),
                                });
                                revs[d1] = Some(rev.to_owned());
                            }
                        }
                    }
                }
            }
            continue;
        }
        let d2 = if docs > 1 && rng.gen_bool(0.5) {
            let mut d = rng.gen_range(0..docs - 1);
            if d >= d1 {
                d += 1;
            }
            Some(d).filter(|&d| revs[d].is_some())
        } else {
            None
        };
        let n_ops = 1 + rng.gen_range(0..TXN_EDITOR_MAX_OPS as usize);
        let mut req = String::from("{\"route\": \"txn\", \"guards\": [");
        for (k, d) in std::iter::once(d1).chain(d2).enumerate() {
            if k > 0 {
                req.push_str(", ");
            }
            req.push_str(&format!(
                "{{\"doc\": \"doc-{d}\", \"rev\": \"{}\"}}",
                revs[d].as_deref().unwrap_or("")
            ));
        }
        req.push_str("], \"ops\": [");
        for k in 0..n_ops {
            if k > 0 {
                req.push_str(", ");
            }
            let d = match d2 {
                Some(d2) if k % 2 == 1 => d2,
                _ => d1,
            };
            req.push_str(&format!(
                "{{\"doc\": \"doc-{d}\", \"op\": {}}}",
                op_json[rng.gen_range(0..n)]
            ));
        }
        req.push_str("], \"semantics\": \"value\"}");
        let Ok(v) = client.roundtrip(&req) else {
            break; // the kill landed
        };
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            continue; // overloaded — just retry another draw
        }
        match v.get("result").and_then(Json::as_str) {
            Some("applied") => {
                let seq = v.get("seq").and_then(Json::as_u64).unwrap_or(0);
                let minted = v.get("replayed").and_then(Json::as_bool) != Some(true);
                let mut set: TxnSet = Vec::new();
                for row in v.get("revs").and_then(Json::as_arr).unwrap_or(&[]) {
                    let doc = row
                        .get("doc")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_owned();
                    let rev = row
                        .get("rev")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_owned();
                    acked.push(Acked {
                        doc: doc.clone(),
                        rev: rev.clone(),
                        minted,
                        seq,
                    });
                    if let Some(idx) = doc
                        .strip_prefix("doc-")
                        .and_then(|s| s.parse::<usize>().ok())
                    {
                        if idx < docs {
                            revs[idx] = Some(rev.clone());
                        }
                    }
                    set.push((doc, rev));
                }
                if !set.is_empty() {
                    txns.push(set);
                }
            }
            _ => {
                // Conflict or rejection: drop the stale views so the
                // next draw refreshes (and resurrects if need be).
                revs[d1] = None;
                if let Some(d2) = d2 {
                    revs[d2] = None;
                }
            }
        }
    }
    (acked, txns)
}

/// Runs the full harness. `Err` is an environmental failure (cannot
/// spawn or reach the server); durability verdicts live in the
/// returned report.
pub fn run(cfg: &CrashConfig) -> Result<CrashReport, String> {
    std::fs::create_dir_all(&cfg.data_dir)
        .map_err(|e| format!("cannot create {}: {e}", cfg.data_dir.display()))?;
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);

    // A small update pool shared by all editors, as in the loadgen
    // store profile.
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    let params = ProgramParams {
        len: 12,
        update_rate: 1.0,
        delete_rate: 0.3,
        pattern,
    };
    let program = random_program(&mut rng, &params);
    let op_json: Vec<String> = program
        .stmts
        .iter()
        .map(|s| wire::stmt_to_json(s).to_string())
        .collect();

    let mut report = CrashReport::default();
    let mut ledger: Vec<Acked> = Vec::new();
    let mut txn_ledger: Vec<TxnSet> = Vec::new();

    for cycle in 0..cfg.cycles {
        let server = spawn_server(cfg)?;

        if cycle == 0 {
            // Seed the shared documents; these creates are ledgered
            // acks like any other.
            let mut client = LineClient::connect(&server.addr)?;
            for d in 0..cfg.docs {
                let v = client.roundtrip(&format!(
                    "{{\"route\": \"doc_put\", \"doc\": \"doc-{d}\", \"content\": \"s{d}(a b c)\"}}"
                ))?;
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    return Err(format!("setup put for doc-{d} failed: {v}"));
                }
                if let Some(rev) = v.get("rev").and_then(Json::as_str) {
                    ledger.push(Acked {
                        doc: format!("doc-{d}"),
                        rev: rev.to_owned(),
                        minted: true,
                        seq: v.get("seq").and_then(Json::as_u64).unwrap_or(0),
                    });
                }
            }
        } else {
            validate_recovery(
                &server.addr,
                &ledger,
                &txn_ledger,
                u64::from(cycle),
                cfg,
                server.recovery.as_ref(),
                &mut report,
            )?;
        }

        // Editors race until the kill lands.
        let stop = Arc::new(AtomicBool::new(false));
        let uptime = Duration::from_millis(
            cfg.min_uptime_ms
                + rng.gen_range(0..(cfg.max_uptime_ms - cfg.min_uptime_ms).max(1) as usize) as u64,
        );
        #[allow(clippy::type_complexity)]
        let (cycle_acks, cycle_txns): (Vec<Vec<Acked>>, Vec<(Vec<Acked>, Vec<TxnSet>)>) =
            std::thread::scope(|scope| {
                let editor_seed = |e: u64| {
                    cfg.seed
                        ^ u64::from(cycle).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ e.wrapping_mul(0xD1B5_4A32_D192_ED03)
                };
                let handles: Vec<_> = (0..cfg.editors.max(1))
                    .map(|e| {
                        let addr = server.addr.clone();
                        let stop = Arc::clone(&stop);
                        let op_json = &op_json;
                        let seed = editor_seed(e as u64);
                        scope.spawn(move || editor_loop(&addr, seed, cfg.docs, op_json, &stop))
                    })
                    .collect();
                // Txn editors race the same documents; their seeds are
                // offset past the plain editors' range.
                let txn_handles: Vec<_> = (0..cfg.txn_editors)
                    .map(|e| {
                        let addr = server.addr.clone();
                        let stop = Arc::clone(&stop);
                        let op_json = &op_json;
                        let seed = editor_seed((cfg.editors + e) as u64);
                        scope.spawn(move || txn_editor_loop(&addr, seed, cfg.docs, op_json, &stop))
                    })
                    .collect();
                std::thread::sleep(uptime);
                drop(server); // SIGKILL, mid-load
                stop.store(true, Ordering::Relaxed);
                (
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or_default())
                        .collect(),
                    txn_handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or_default())
                        .collect(),
                )
            });
        for acks in cycle_acks {
            ledger.extend(acks);
        }
        for (acks, txns) in cycle_txns {
            ledger.extend(acks);
            txn_ledger.extend(txns);
        }
        report.cycles = cycle + 1;
    }

    // Final incarnation: validate once more, then shut down cleanly.
    let server = spawn_server(cfg)?;
    validate_recovery(
        &server.addr,
        &ledger,
        &txn_ledger,
        u64::from(cfg.cycles),
        cfg,
        server.recovery.as_ref(),
        &mut report,
    )?;
    let mut client = LineClient::connect(&server.addr)?;
    let _ = client.roundtrip("{\"route\": \"shutdown\"}");

    report.acked = ledger.len() as u64;
    report.txn_acked = txn_ledger.len() as u64;
    report.minted = ledger
        .iter()
        .filter(|a| a.minted)
        .map(|a| (a.doc.clone(), a.rev.clone()))
        .collect::<HashSet<_>>()
        .len() as u64;
    Ok(report)
}
