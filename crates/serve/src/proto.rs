//! Wire protocol: request parsing and response rendering.
//!
//! One JSON object per line in both directions. Requests:
//!
//! ```json
//! {"route": "check", "a": {"kind": "read", "pattern": "*//A"},
//!  "b": {"kind": "insert", "pattern": "*/B", "subtree": "C"},
//!  "id": 7, "semantics": "value", "deadline_ms": 50}
//! {"route": "schedule", "ops": [ ...op objects... ], "semantics": "value"}
//! {"route": "metrics"}
//! {"route": "health"}
//! {"route": "shutdown"}
//! ```
//!
//! Optional fields on every request: `id` (echoed verbatim in the
//! response so clients can pipeline), `semantics`
//! (`node | tree | value`, default `value` — the scheduler's
//! observational-equivalence semantics), `deadline_ms` (overrides the
//! server's default request deadline), and `delay_ms` (an artificial
//! worker-side sleep before processing, simulating downstream work —
//! kept in the protocol so overload and drain behaviour can be tested
//! deterministically).
//!
//! Responses always carry `"ok"`. Success: `{"ok": true, "route": ...,
//! ...payload}`. Failure: `{"ok": false, "error": "overloaded" |
//! "bad-request" | "internal" | "shutting-down", "detail": "..."}`.
//! Ops travel in the [`cxu_gen::wire`] schema (patterns in the paper
//! fragment's XPath surface syntax, payload trees in compact text
//! form).

use cxu_gen::json::Json;
use cxu_gen::wire;
use cxu_ops::Semantics;
use cxu_sched::{Op, PairDecision, SchedStats};

/// Maximum accepted request line, in bytes. Defends the parser against
/// a client streaming an unbounded line.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What a request asks for.
#[derive(Clone, Debug)]
pub enum Route {
    /// Decide one operation pair.
    Check {
        /// First operation.
        a: Box<Op>,
        /// Second operation.
        b: Box<Op>,
    },
    /// Schedule a batch into conflict-free rounds.
    Schedule {
        /// The batch, in program order.
        ops: Vec<Op>,
    },
    /// Metrics snapshot.
    Metrics,
    /// Liveness probe.
    Health,
    /// Begin graceful shutdown.
    Shutdown,
}

impl Route {
    /// The route name as it appears on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            Route::Check { .. } => "check",
            Route::Schedule { .. } => "schedule",
            Route::Metrics => "metrics",
            Route::Health => "health",
            Route::Shutdown => "shutdown",
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The requested route.
    pub route: Route,
    /// Conflict semantics for this request.
    pub semantics: Semantics,
    /// Per-request deadline override, milliseconds from receipt.
    pub deadline_ms: Option<u64>,
    /// Artificial worker-side delay (load-test aid; see module docs).
    pub delay_ms: u64,
}

fn parse_semantics(v: &Json) -> Result<Semantics, String> {
    match v.get("semantics").and_then(Json::as_str).unwrap_or("value") {
        "node" => Ok(Semantics::Node),
        "tree" => Ok(Semantics::Tree),
        "value" => Ok(Semantics::Value),
        other => Err(format!("unknown semantics {other:?} (node|tree|value)")),
    }
}

fn parse_op(v: &Json, field: &str) -> Result<Op, String> {
    let stmt = wire::stmt_from_json(v).map_err(|e| format!("field '{field}': {e}"))?;
    Ok(Op::from(stmt))
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let route_name = v
        .get("route")
        .and_then(Json::as_str)
        .ok_or("request is missing string field 'route'")?;
    let route = match route_name {
        "check" => {
            let a = v.get("a").ok_or("check request is missing field 'a'")?;
            let b = v.get("b").ok_or("check request is missing field 'b'")?;
            Route::Check {
                a: Box::new(parse_op(a, "a")?),
                b: Box::new(parse_op(b, "b")?),
            }
        }
        "schedule" => {
            let items = v
                .get("ops")
                .and_then(Json::as_arr)
                .ok_or("schedule request is missing array field 'ops'")?;
            let mut ops = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                ops.push(parse_op(item, &format!("ops[{i}]"))?);
            }
            Route::Schedule { ops }
        }
        "metrics" => Route::Metrics,
        "health" => Route::Health,
        "shutdown" => Route::Shutdown,
        other => {
            return Err(format!(
                "unknown route {other:?} (check|schedule|metrics|health|shutdown)"
            ))
        }
    };
    Ok(Request {
        id: v.get("id").and_then(Json::as_u64),
        route,
        semantics: parse_semantics(&v)?,
        deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
        delay_ms: v.get("delay_ms").and_then(Json::as_u64).unwrap_or(0),
    })
}

fn base(id: Option<u64>, ok: bool) -> Vec<(String, Json)> {
    let mut members = Vec::new();
    if let Some(id) = id {
        members.push(("id".to_owned(), Json::from(id)));
    }
    members.push(("ok".to_owned(), Json::Bool(ok)));
    members
}

/// Renders an error response (no trailing newline).
pub fn render_error(id: Option<u64>, code: &str, detail: &str) -> String {
    let mut members = base(id, false);
    members.push(("error".to_owned(), Json::str(code)));
    if !detail.is_empty() {
        members.push(("detail".to_owned(), Json::str(detail)));
    }
    Json::Obj(members).to_string()
}

/// Renders a `check` response.
pub fn render_check(id: Option<u64>, d: &PairDecision) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("check")));
    members.push(("conflict".to_owned(), Json::Bool(d.verdict.conflict)));
    members.push(("detector".to_owned(), Json::str(d.verdict.detector.name())));
    members.push(("cached".to_owned(), Json::Bool(d.cached)));
    members.push((
        "degraded".to_owned(),
        Json::Bool(d.verdict.detector.is_conservative()),
    ));
    Json::Obj(members).to_string()
}

/// Renders a `schedule` response.
pub fn render_schedule(id: Option<u64>, rounds: &[Vec<usize>], stats: &SchedStats) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("schedule")));
    members.push((
        "rounds".to_owned(),
        Json::Arr(
            rounds
                .iter()
                .map(|r| Json::Arr(r.iter().map(|&i| Json::from(i)).collect()))
                .collect(),
        ),
    ));
    members.push((
        "stats".to_owned(),
        Json::obj(vec![
            ("ops", Json::from(stats.ops)),
            ("pairs_total", Json::from(stats.pairs_total)),
            ("pairs_analyzed", Json::from(stats.pairs_analyzed)),
            ("cache_hits", Json::from(stats.cache_hits)),
            ("prefilter_skips", Json::from(stats.prefilter_skips)),
            ("conflict_edges", Json::from(stats.conflict_edges)),
            ("conservative", Json::from(stats.conservative)),
            ("degraded_deadline", Json::from(stats.degraded_deadline)),
            ("degraded_panic", Json::from(stats.degraded_panic)),
            ("rounds", Json::from(stats.rounds)),
        ]),
    ));
    Json::Obj(members).to_string()
}

/// Renders a `metrics` response. The registry snapshot's own JSON is
/// re-parsed and embedded as a value (it is machine-shaped by
/// construction; re-parsing keeps this module free of string splicing).
pub fn render_metrics(id: Option<u64>, snapshot_json: &str) -> String {
    let metrics = Json::parse(snapshot_json).unwrap_or(Json::Null);
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("metrics")));
    members.push(("metrics".to_owned(), metrics));
    Json::Obj(members).to_string()
}

/// Renders a `health` response.
pub fn render_health(
    id: Option<u64>,
    uptime_ms: u64,
    in_flight: i64,
    queued: usize,
    shutting_down: bool,
) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("health")));
    members.push((
        "status".to_owned(),
        Json::str(if shutting_down { "draining" } else { "ok" }),
    ));
    members.push(("uptime_ms".to_owned(), Json::from(uptime_ms)));
    members.push(("in_flight".to_owned(), Json::from(in_flight)));
    members.push(("queued".to_owned(), Json::from(queued)));
    Json::Obj(members).to_string()
}

/// Renders the `shutdown` acknowledgement.
pub fn render_shutdown(id: Option<u64>) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("shutdown")));
    members.push(("status".to_owned(), Json::str("draining")));
    Json::Obj(members).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_check_request() {
        let line = r#"{"route": "check", "id": 9, "semantics": "node", "deadline_ms": 25,
                       "a": {"kind": "read", "pattern": "*//A"},
                       "b": {"kind": "insert", "pattern": "*/B", "subtree": "C(D)"}}"#;
        let req = parse_request(&line.replace('\n', " ")).unwrap();
        assert_eq!(req.id, Some(9));
        assert_eq!(req.semantics, Semantics::Node);
        assert_eq!(req.deadline_ms, Some(25));
        assert!(matches!(req.route, Route::Check { .. }));
    }

    #[test]
    fn parses_schedule_and_admin_requests() {
        let req =
            parse_request(r#"{"route": "schedule", "ops": [{"kind": "read", "pattern": "a/b"}]}"#)
                .unwrap();
        match req.route {
            Route::Schedule { ops } => assert_eq!(ops.len(), 1),
            other => panic!("wrong route {other:?}"),
        }
        assert_eq!(req.semantics, Semantics::Value, "default semantics");
        for name in ["metrics", "health", "shutdown"] {
            let req = parse_request(&format!(r#"{{"route": "{name}"}}"#)).unwrap();
            assert_eq!(req.route.name(), name);
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            "{}",
            r#"{"route": "warp"}"#,
            r#"{"route": "check", "a": {"kind": "read", "pattern": "a"}}"#,
            r#"{"route": "check", "a": 1, "b": 2}"#,
            r#"{"route": "schedule"}"#,
            r#"{"route": "check", "semantics": "quantum",
                "a": {"kind": "read", "pattern": "a"},
                "b": {"kind": "read", "pattern": "b"}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn responses_are_single_line_json() {
        let err = render_error(Some(3), "overloaded", "queue full");
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert!(!err.contains('\n'));

        let health = render_health(None, 12, 1, 0, false);
        let v = Json::parse(&health).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        assert!(v.get("id").is_none());
    }
}
