//! Wire protocol: request parsing and response rendering.
//!
//! One JSON object per line in both directions. Requests:
//!
//! ```json
//! {"route": "check", "a": {"kind": "read", "pattern": "*//A"},
//!  "b": {"kind": "insert", "pattern": "*/B", "subtree": "C"},
//!  "id": 7, "semantics": "value", "deadline_ms": 50}
//! {"route": "schedule", "ops": [ ...op objects... ], "semantics": "value"}
//! {"route": "doc_put", "doc": "d1", "content": "a(b c)"}
//! {"route": "doc_put", "doc": "d1", "base_rev": "1-89ab...",
//!  "op": {"kind": "insert", "pattern": "a/b", "subtree": "x"}}
//! {"route": "doc_get", "doc": "d1", "conflicts": true}
//! {"route": "doc_delete", "doc": "d1", "rev": "2-cdef..."}
//! {"route": "doc_changes", "since": 0, "limit": 100}
//! {"route": "doc_check", "doc": "d1", "semantics": "node",
//!  "read": {"kind": "read", "pattern": "a//c"},
//!  "update": {"kind": "insert", "pattern": "a/b", "subtree": "c"}}
//! {"route": "txn", "guards": [{"doc": "d1", "rev": "1-89ab..."}],
//!  "ops": [{"doc": "d1", "op": {"kind": "insert", "pattern": "a/b", "subtree": "x"}},
//!          {"doc": "d2", "op": {"kind": "delete", "pattern": "a/c"}}]}
//! {"route": "txn_begin"}
//! {"route": "txn_submit", "guards": [...], "ops": [...]}
//! {"route": "txn_commit"}
//! {"route": "metrics"}
//! {"route": "health"}
//! {"route": "shutdown"}
//! ```
//!
//! Optional fields on every request: `id` (echoed verbatim in the
//! response so clients can pipeline), `semantics`
//! (`node | tree | value`, default `value` — the scheduler's
//! observational-equivalence semantics), `deadline_ms` (overrides the
//! server's default request deadline), and `delay_ms` (an artificial
//! worker-side sleep before processing, simulating downstream work —
//! kept in the protocol so overload and drain behaviour can be tested
//! deterministically).
//!
//! Responses always carry `"ok"`. Success: `{"ok": true, "route": ...,
//! ...payload}`. Failure: `{"ok": false, "error": "overloaded" |
//! "bad-request" | "internal" | "shutting-down", "detail": "..."}`.
//! Ops travel in the [`cxu_gen::wire`] schema (patterns in the paper
//! fragment's XPath surface syntax, payload trees in compact text
//! form).

use cxu_gen::json::Json;
use cxu_gen::program::Stmt;
use cxu_gen::wire;
use cxu_ops::{Read, Semantics, Update};
use cxu_sched::{Op, PairDecision, SchedStats};
use cxu_store::{ChangeEntry, GetResult, PutOutcome, PutPayload, RevId, StoreError};
use cxu_store::{TxnError, TxnOutcome};
use cxu_tree::text;
use cxu_txn::Txn;

/// Maximum accepted request line, in bytes. Defends the parser against
/// a client streaming an unbounded line.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What a request asks for.
#[derive(Clone, Debug)]
pub enum Route {
    /// Decide one operation pair.
    Check {
        /// First operation.
        a: Box<Op>,
        /// Second operation.
        b: Box<Op>,
    },
    /// Schedule a batch into conflict-free rounds.
    Schedule {
        /// The batch, in program order.
        ops: Vec<Op>,
    },
    /// Put a revision into the document store.
    DocPut {
        /// Document id.
        doc: String,
        /// Base revision; absent for creations.
        base_rev: Option<RevId>,
        /// Content or operation payload.
        payload: Box<PutPayload>,
    },
    /// Read a document (winner or named revision).
    DocGet {
        /// Document id.
        doc: String,
        /// Specific revision, or the winner when absent.
        rev: Option<RevId>,
        /// Include the open-conflict leaves in the response.
        conflicts: bool,
    },
    /// Tombstone a document at a revision.
    DocDelete {
        /// Document id.
        doc: String,
        /// The revision being deleted (always required: a delete of
        /// "whatever is current" is exactly the lost-update race the
        /// store exists to prevent).
        rev: RevId,
    },
    /// The store-wide changes feed from a cursor.
    DocChanges {
        /// Exclusive lower bound: entries with `seq > since`.
        since: u64,
        /// Page-size cap.
        limit: Option<usize>,
    },
    /// Document-grounded conflict check: does the *stored document*
    /// witness a conflict between `read` and `update` (Lemma 1),
    /// answered from the store's cached structural index?
    DocCheck {
        /// Document id.
        doc: String,
        /// Specific revision, or the winner when absent.
        rev: Option<RevId>,
        /// The read side.
        read: Box<Read>,
        /// The update side.
        update: Box<Update>,
    },
    /// Atomically commit a multi-op transaction program (one-shot form;
    /// also what a `txn_commit` turns into once its fragments are
    /// assembled).
    Txn {
        /// The parsed program: guards plus ordered writes.
        txn: Box<Txn>,
    },
    /// Open a per-connection transaction accumulator.
    TxnBegin,
    /// Append guards/ops to the open accumulator.
    TxnSubmit {
        /// The fragment: both fields optional, at least one present.
        frag: Box<wire::TxnWire>,
    },
    /// Commit the open accumulator as one atomic transaction.
    TxnCommit,
    /// Metrics snapshot.
    Metrics,
    /// Liveness probe.
    Health,
    /// Begin graceful shutdown.
    Shutdown,
}

impl Route {
    /// The route name as it appears on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            Route::Check { .. } => "check",
            Route::Schedule { .. } => "schedule",
            Route::DocPut { .. } => "doc_put",
            Route::DocGet { .. } => "doc_get",
            Route::DocDelete { .. } => "doc_delete",
            Route::DocChanges { .. } => "doc_changes",
            Route::DocCheck { .. } => "doc_check",
            Route::Txn { .. } => "txn",
            Route::TxnBegin => "txn_begin",
            Route::TxnSubmit { .. } => "txn_submit",
            Route::TxnCommit => "txn_commit",
            Route::Metrics => "metrics",
            Route::Health => "health",
            Route::Shutdown => "shutdown",
        }
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The requested route.
    pub route: Route,
    /// Conflict semantics for this request.
    pub semantics: Semantics,
    /// Per-request deadline override, milliseconds from receipt.
    pub deadline_ms: Option<u64>,
    /// Artificial worker-side delay (load-test aid; see module docs).
    pub delay_ms: u64,
}

fn parse_semantics(v: &Json) -> Result<Semantics, String> {
    match v.get("semantics").and_then(Json::as_str).unwrap_or("value") {
        "node" => Ok(Semantics::Node),
        "tree" => Ok(Semantics::Tree),
        "value" => Ok(Semantics::Value),
        other => Err(format!("unknown semantics {other:?} (node|tree|value)")),
    }
}

fn parse_op(v: &Json, field: &str) -> Result<Op, String> {
    let stmt = wire::stmt_from_json(v).map_err(|e| format!("field '{field}': {e}"))?;
    Ok(Op::from(stmt))
}

fn parse_doc(v: &Json) -> Result<String, String> {
    v.get("doc")
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| "doc_* request is missing string field 'doc'".to_owned())
}

fn parse_rev(v: &Json, field: &str) -> Result<Option<RevId>, String> {
    match v.get(field) {
        None => Ok(None),
        Some(r) => {
            let s = r
                .as_str()
                .ok_or_else(|| format!("field '{field}' must be a revision string"))?;
            s.parse()
                .map(Some)
                .map_err(|e| format!("field '{field}': {e}"))
        }
    }
}

/// Parses a `doc_put` body: exactly one of `content` (compact tree
/// text) or `op` (wire-schema update object; needs `base_rev`).
fn parse_put_payload(v: &Json) -> Result<PutPayload, String> {
    match (v.get("content"), v.get("op")) {
        (Some(_), Some(_)) => Err("doc_put takes 'content' or 'op', not both".to_owned()),
        (None, None) => Err("doc_put is missing field 'content' or 'op'".to_owned()),
        (Some(c), None) => {
            let src = c
                .as_str()
                .ok_or("field 'content' must be a tree in compact text form")?;
            let tree = text::parse(src).map_err(|e| format!("bad content {src:?}: {e}"))?;
            Ok(PutPayload::Content(tree))
        }
        (None, Some(o)) => {
            let u = wire::update_from_json(o).map_err(|e| format!("field 'op': {e}"))?;
            Ok(PutPayload::Op(u))
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let route_name = v
        .get("route")
        .and_then(Json::as_str)
        .ok_or("request is missing string field 'route'")?;
    let route = match route_name {
        "check" => {
            let a = v.get("a").ok_or("check request is missing field 'a'")?;
            let b = v.get("b").ok_or("check request is missing field 'b'")?;
            Route::Check {
                a: Box::new(parse_op(a, "a")?),
                b: Box::new(parse_op(b, "b")?),
            }
        }
        "schedule" => {
            let items = v
                .get("ops")
                .and_then(Json::as_arr)
                .ok_or("schedule request is missing array field 'ops'")?;
            let mut ops = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                ops.push(parse_op(item, &format!("ops[{i}]"))?);
            }
            Route::Schedule { ops }
        }
        "doc_put" => {
            let doc = parse_doc(&v)?;
            let base_rev = parse_rev(&v, "base_rev")?;
            let payload = parse_put_payload(&v)?;
            if base_rev.is_none() && matches!(payload, PutPayload::Op(_)) {
                return Err("doc_put with 'op' requires 'base_rev'".to_owned());
            }
            Route::DocPut {
                doc,
                base_rev,
                payload: Box::new(payload),
            }
        }
        "doc_get" => Route::DocGet {
            doc: parse_doc(&v)?,
            rev: parse_rev(&v, "rev")?,
            conflicts: v
                .get("conflicts")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        },
        "doc_delete" => {
            let doc = parse_doc(&v)?;
            let rev = parse_rev(&v, "rev")?
                .ok_or("doc_delete requires string field 'rev'")?;
            Route::DocDelete { doc, rev }
        }
        "doc_changes" => Route::DocChanges {
            since: v.get("since").and_then(Json::as_u64).unwrap_or(0),
            limit: v
                .get("limit")
                .and_then(Json::as_u64)
                .map(|l| l.min(usize::MAX as u64) as usize),
        },
        "doc_check" => {
            let doc = parse_doc(&v)?;
            let rev = parse_rev(&v, "rev")?;
            let r = v
                .get("read")
                .ok_or("doc_check request is missing field 'read'")?;
            let read = match wire::stmt_from_json(r).map_err(|e| format!("field 'read': {e}"))? {
                Stmt::Read(r) => r,
                Stmt::Update(_) => return Err("field 'read' must be a read op".to_owned()),
            };
            let u = v
                .get("update")
                .ok_or("doc_check request is missing field 'update'")?;
            let update =
                match wire::stmt_from_json(u).map_err(|e| format!("field 'update': {e}"))? {
                    Stmt::Update(u) => u,
                    Stmt::Read(_) => {
                        return Err("field 'update' must be an insert or delete".to_owned())
                    }
                };
            Route::DocCheck {
                doc,
                rev,
                read: Box::new(read),
                update: Box::new(update),
            }
        }
        "txn" => {
            let w = wire::txn_from_json(&v).map_err(|e| e.to_string())?;
            if w.ops.is_empty() {
                return Err("txn requires at least one op".to_owned());
            }
            let txn =
                Txn::from_wire(&w).map_err(|e| e.to_string())?;
            Route::Txn { txn: Box::new(txn) }
        }
        "txn_begin" => Route::TxnBegin,
        "txn_submit" => {
            if v.get("guards").is_none() && v.get("ops").is_none() {
                return Err("txn_submit requires 'guards' or 'ops'".to_owned());
            }
            // Reuse the wire codec with absent fields defaulted: a
            // fragment may carry guards alone, ops alone, or both.
            let padded = Json::obj(vec![
                (
                    "guards",
                    v.get("guards").cloned().unwrap_or(Json::Arr(Vec::new())),
                ),
                ("ops", v.get("ops").cloned().unwrap_or(Json::Arr(Vec::new()))),
            ]);
            let frag = wire::txn_from_json(&padded).map_err(|e| e.to_string())?;
            Route::TxnSubmit {
                frag: Box::new(frag),
            }
        }
        "txn_commit" => Route::TxnCommit,
        "metrics" => Route::Metrics,
        "health" => Route::Health,
        "shutdown" => Route::Shutdown,
        other => {
            return Err(format!(
                "unknown route {other:?} (check|schedule|doc_put|doc_get|doc_delete|doc_changes|doc_check|txn|txn_begin|txn_submit|txn_commit|metrics|health|shutdown)"
            ))
        }
    };
    Ok(Request {
        id: v.get("id").and_then(Json::as_u64),
        route,
        semantics: parse_semantics(&v)?,
        deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
        delay_ms: v.get("delay_ms").and_then(Json::as_u64).unwrap_or(0),
    })
}

fn base(id: Option<u64>, ok: bool) -> Vec<(String, Json)> {
    let mut members = Vec::new();
    if let Some(id) = id {
        members.push(("id".to_owned(), Json::from(id)));
    }
    members.push(("ok".to_owned(), Json::Bool(ok)));
    members
}

/// Renders an error response (no trailing newline).
pub fn render_error(id: Option<u64>, code: &str, detail: &str) -> String {
    let mut members = base(id, false);
    members.push(("error".to_owned(), Json::str(code)));
    if !detail.is_empty() {
        members.push(("detail".to_owned(), Json::str(detail)));
    }
    Json::Obj(members).to_string()
}

/// Renders a `check` response.
pub fn render_check(id: Option<u64>, d: &PairDecision) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("check")));
    members.push(("conflict".to_owned(), Json::Bool(d.verdict.conflict)));
    members.push(("detector".to_owned(), Json::str(d.verdict.detector.name())));
    members.push(("cached".to_owned(), Json::Bool(d.cached)));
    members.push((
        "degraded".to_owned(),
        Json::Bool(d.verdict.detector.is_conservative()),
    ));
    Json::Obj(members).to_string()
}

/// Renders a `schedule` response.
pub fn render_schedule(id: Option<u64>, rounds: &[Vec<usize>], stats: &SchedStats) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("schedule")));
    members.push((
        "rounds".to_owned(),
        Json::Arr(
            rounds
                .iter()
                .map(|r| Json::Arr(r.iter().map(|&i| Json::from(i)).collect()))
                .collect(),
        ),
    ));
    members.push((
        "stats".to_owned(),
        Json::obj(vec![
            ("ops", Json::from(stats.ops)),
            ("pairs_total", Json::from(stats.pairs_total)),
            ("pairs_analyzed", Json::from(stats.pairs_analyzed)),
            ("cache_hits", Json::from(stats.cache_hits)),
            ("prefilter_skips", Json::from(stats.prefilter_skips)),
            ("conflict_edges", Json::from(stats.conflict_edges)),
            ("conservative", Json::from(stats.conservative)),
            ("degraded_deadline", Json::from(stats.degraded_deadline)),
            ("degraded_panic", Json::from(stats.degraded_panic)),
            ("rounds", Json::from(stats.rounds)),
        ]),
    ));
    Json::Obj(members).to_string()
}

/// Renders a successful `doc_put` / `doc_delete` response.
pub fn render_doc_put(id: Option<u64>, route: &str, doc: &str, out: &PutOutcome) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str(route)));
    members.push(("doc".to_owned(), Json::str(doc)));
    members.push(("result".to_owned(), Json::str(out.result.name())));
    members.push(("rev".to_owned(), Json::str(out.rev.to_string())));
    members.push(("winner".to_owned(), Json::str(out.winner.to_string())));
    members.push(("winner_deleted".to_owned(), Json::Bool(out.winner_deleted)));
    members.push(("seq".to_owned(), Json::from(out.seq)));
    members.push(("checked_pairs".to_owned(), Json::from(out.checked_pairs)));
    Json::Obj(members).to_string()
}

/// Renders a store rejection. Rejections are *answers* about document
/// state — `ok` stays true and `result` is `"rejected"`, keeping
/// `ok: false` for transport and internal failures only.
pub fn render_doc_rejected(id: Option<u64>, route: &str, doc: &str, err: &StoreError) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str(route)));
    members.push(("doc".to_owned(), Json::str(doc)));
    members.push(("result".to_owned(), Json::str("rejected")));
    members.push(("reason".to_owned(), Json::str(err.code())));
    members.push(("detail".to_owned(), Json::str(err.to_string())));
    Json::Obj(members).to_string()
}

/// Renders a successful `doc_get` response.
pub fn render_doc_get(id: Option<u64>, doc: &str, out: &GetResult) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("doc_get")));
    members.push(("doc".to_owned(), Json::str(doc)));
    members.push(("found".to_owned(), Json::Bool(true)));
    members.push(("rev".to_owned(), Json::str(out.rev.to_string())));
    members.push(("deleted".to_owned(), Json::Bool(out.deleted)));
    if let Some(t) = &out.content {
        members.push(("content".to_owned(), Json::str(text::to_text(t))));
    }
    if !out.conflicts.is_empty() {
        members.push((
            "conflicts".to_owned(),
            Json::Arr(
                out.conflicts
                    .iter()
                    .map(|r| Json::str(r.to_string()))
                    .collect(),
            ),
        ));
    }
    members.push(("seq".to_owned(), Json::from(out.seq)));
    Json::Obj(members).to_string()
}

/// Renders a `doc_get` miss (`found: false`, with the reason).
pub fn render_doc_not_found(id: Option<u64>, doc: &str, err: &StoreError) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("doc_get")));
    members.push(("doc".to_owned(), Json::str(doc)));
    members.push(("found".to_owned(), Json::Bool(false)));
    members.push(("reason".to_owned(), Json::str(err.code())));
    Json::Obj(members).to_string()
}

/// Renders a `doc_check` response: a document-grounded conflict
/// verdict for one read/update pair against the indexed revision.
pub fn render_doc_check(
    id: Option<u64>,
    doc: &str,
    rev: &RevId,
    semantics: Semantics,
    conflict: bool,
    nodes: usize,
) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("doc_check")));
    members.push(("doc".to_owned(), Json::str(doc)));
    members.push(("rev".to_owned(), Json::str(rev.to_string())));
    members.push(("semantics".to_owned(), Json::str(semantics.name())));
    members.push(("conflict".to_owned(), Json::Bool(conflict)));
    members.push(("nodes".to_owned(), Json::from(nodes)));
    Json::Obj(members).to_string()
}

/// Renders a `doc_changes` page.
pub fn render_doc_changes(id: Option<u64>, entries: &[ChangeEntry], last_seq: u64) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("doc_changes")));
    members.push((
        "results".to_owned(),
        Json::Arr(
            entries
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("seq", Json::from(e.seq)),
                        ("doc", Json::str(e.doc.clone())),
                        ("rev", Json::str(e.rev.to_string())),
                        ("deleted", Json::Bool(e.deleted)),
                    ])
                })
                .collect(),
        ),
    ));
    members.push(("last_seq".to_owned(), Json::from(last_seq)));
    Json::Obj(members).to_string()
}

/// Renders a committed transaction: every minted revision in program
/// order, the post-commit sequence number, and whether the commit was
/// an idempotent replay of an earlier ack.
pub fn render_txn_applied(id: Option<u64>, out: &TxnOutcome) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("txn")));
    members.push(("result".to_owned(), Json::str("applied")));
    members.push((
        "revs".to_owned(),
        Json::Arr(
            out.revs
                .iter()
                .map(|(doc, rev)| {
                    Json::obj(vec![
                        ("doc", Json::str(doc.clone())),
                        ("rev", Json::str(rev.to_string())),
                    ])
                })
                .collect(),
        ),
    ));
    members.push(("seq".to_owned(), Json::from(out.seq)));
    members.push(("checked_pairs".to_owned(), Json::from(out.checked_pairs)));
    members.push(("replayed".to_owned(), Json::Bool(out.replayed)));
    Json::Obj(members).to_string()
}

/// Renders a transaction that did not commit. Like store rejections,
/// these are *answers*: `ok` stays true. Optimistic-concurrency losses
/// come back as `result: "conflict"` with `retryable: true` — the
/// client re-reads, re-guards, and resubmits; terminal rejections
/// (unknown document, bad guard revision, oversized program) come back
/// as `result: "rejected"` with `retryable: false`.
pub fn render_txn_denied(id: Option<u64>, err: &TxnError) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("txn")));
    members.push((
        "result".to_owned(),
        Json::str(if err.retryable() {
            "conflict"
        } else {
            "rejected"
        }),
    ));
    members.push(("reason".to_owned(), Json::str(err.code())));
    members.push(("retryable".to_owned(), Json::Bool(err.retryable())));
    if let TxnError::Conflict { doc, .. } = err {
        members.push(("doc".to_owned(), Json::str(doc.clone())));
    }
    members.push(("detail".to_owned(), Json::str(err.to_string())));
    Json::Obj(members).to_string()
}

/// Renders the `txn_begin` / `txn_submit` accumulator acknowledgements
/// (`status: "open"` with the current fragment totals).
pub fn render_txn_pending(id: Option<u64>, route: &str, guards: usize, ops: usize) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str(route)));
    members.push(("status".to_owned(), Json::str("open")));
    members.push(("guards".to_owned(), Json::from(guards)));
    members.push(("ops".to_owned(), Json::from(ops)));
    Json::Obj(members).to_string()
}

/// Renders a `metrics` response. The registry snapshot's own JSON is
/// re-parsed and embedded as a value (it is machine-shaped by
/// construction; re-parsing keeps this module free of string splicing).
pub fn render_metrics(id: Option<u64>, snapshot_json: &str) -> String {
    let metrics = Json::parse(snapshot_json).unwrap_or(Json::Null);
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("metrics")));
    members.push(("metrics".to_owned(), metrics));
    Json::Obj(members).to_string()
}

/// Renders a `health` response.
pub fn render_health(
    id: Option<u64>,
    uptime_ms: u64,
    in_flight: i64,
    queued: usize,
    shutting_down: bool,
) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("health")));
    members.push((
        "status".to_owned(),
        Json::str(if shutting_down { "draining" } else { "ok" }),
    ));
    members.push(("uptime_ms".to_owned(), Json::from(uptime_ms)));
    members.push(("in_flight".to_owned(), Json::from(in_flight)));
    members.push(("queued".to_owned(), Json::from(queued)));
    Json::Obj(members).to_string()
}

/// Renders the `shutdown` acknowledgement.
pub fn render_shutdown(id: Option<u64>) -> String {
    let mut members = base(id, true);
    members.push(("route".to_owned(), Json::str("shutdown")));
    members.push(("status".to_owned(), Json::str("draining")));
    Json::Obj(members).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_check_request() {
        let line = r#"{"route": "check", "id": 9, "semantics": "node", "deadline_ms": 25,
                       "a": {"kind": "read", "pattern": "*//A"},
                       "b": {"kind": "insert", "pattern": "*/B", "subtree": "C(D)"}}"#;
        let req = parse_request(&line.replace('\n', " ")).unwrap();
        assert_eq!(req.id, Some(9));
        assert_eq!(req.semantics, Semantics::Node);
        assert_eq!(req.deadline_ms, Some(25));
        assert!(matches!(req.route, Route::Check { .. }));
    }

    #[test]
    fn parses_schedule_and_admin_requests() {
        let req =
            parse_request(r#"{"route": "schedule", "ops": [{"kind": "read", "pattern": "a/b"}]}"#)
                .unwrap();
        match req.route {
            Route::Schedule { ops } => assert_eq!(ops.len(), 1),
            other => panic!("wrong route {other:?}"),
        }
        assert_eq!(req.semantics, Semantics::Value, "default semantics");
        for name in ["metrics", "health", "shutdown"] {
            let req = parse_request(&format!(r#"{{"route": "{name}"}}"#)).unwrap();
            assert_eq!(req.route.name(), name);
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            "{}",
            r#"{"route": "warp"}"#,
            r#"{"route": "check", "a": {"kind": "read", "pattern": "a"}}"#,
            r#"{"route": "check", "a": 1, "b": 2}"#,
            r#"{"route": "schedule"}"#,
            r#"{"route": "check", "semantics": "quantum",
                "a": {"kind": "read", "pattern": "a"},
                "b": {"kind": "read", "pattern": "b"}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn parses_doc_check_request() {
        let line = r#"{"route": "doc_check", "doc": "d1", "semantics": "node",
                       "read": {"kind": "read", "pattern": "a//c"},
                       "update": {"kind": "insert", "pattern": "a/b", "subtree": "c"}}"#;
        let req = parse_request(&line.replace('\n', " ")).unwrap();
        assert_eq!(req.semantics, Semantics::Node);
        match req.route {
            Route::DocCheck {
                doc, rev, update, ..
            } => {
                assert_eq!(doc, "d1");
                assert!(rev.is_none());
                assert!(matches!(*update, Update::Insert(_)));
            }
            other => panic!("wrong route {other:?}"),
        }

        // Sides are role-checked: an update in 'read' (or a read in
        // 'update') is a bad request, not a silently reinterpreted one.
        for bad in [
            r#"{"route": "doc_check", "doc": "d1",
                "read": {"kind": "delete", "pattern": "a/b"},
                "update": {"kind": "insert", "pattern": "a/b", "subtree": "c"}}"#,
            r#"{"route": "doc_check", "doc": "d1",
                "read": {"kind": "read", "pattern": "a//c"},
                "update": {"kind": "read", "pattern": "a/b"}}"#,
            r#"{"route": "doc_check", "doc": "d1",
                "read": {"kind": "read", "pattern": "a//c"}}"#,
            r#"{"route": "doc_check",
                "read": {"kind": "read", "pattern": "a//c"},
                "update": {"kind": "delete", "pattern": "a/b"}}"#,
        ] {
            let line = bad.replace('\n', " ");
            assert!(parse_request(&line).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn renders_doc_check_response() {
        let rev: RevId = "1-00000000000000000000000000000000".parse().unwrap();
        let resp = render_doc_check(Some(4), "d1", &rev, Semantics::Tree, true, 17);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("route").and_then(Json::as_str), Some("doc_check"));
        assert_eq!(v.get("doc").and_then(Json::as_str), Some("d1"));
        assert_eq!(v.get("semantics").and_then(Json::as_str), Some("tree"));
        assert_eq!(v.get("conflict").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("nodes").and_then(Json::as_u64), Some(17));
        assert!(!resp.contains('\n'));
    }

    #[test]
    fn responses_are_single_line_json() {
        let err = render_error(Some(3), "overloaded", "queue full");
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert!(!err.contains('\n'));

        let health = render_health(None, 12, 1, 0, false);
        let v = Json::parse(&health).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        assert!(v.get("id").is_none());
    }
}
