//! Seeded load generator: closed-loop (optionally pipelined) and
//! open-loop (fixed arrival rate) modes.
//!
//! Replays a generated operation pool against a running server. The
//! default mode is **closed-loop**: `connections` client threads, each
//! with its own socket, each keeping at most `pipeline` requests in
//! flight (one batched write per window, responses drained in order) —
//! offered load adapts to service rate, so the measured throughput is
//! the sustained one. The pool and the request sequence derive from one
//! seed: same seed, same workload.
//!
//! **Open-loop** mode (`rate`) sends at a fixed arrival schedule
//! instead: request *k* is due at `t₀ + k/rate` regardless of how the
//! server is doing, which is how real independent clients behave. Open
//! loop measures latency two ways and reports both:
//!
//! * **corrected** — from the *intended* arrival time. When the server
//!   (or a backpressured socket) stalls the sender, every request that
//!   should have been sent during the stall still charges the stall to
//!   its latency. This is the honest number under load.
//! * **raw** — from the actual send, the classic closed-loop
//!   measurement. Comparing the two makes **coordinated omission**
//!   visible instead of silently flattering the server: a saturated
//!   server can show a calm raw p99 while the corrected p99 explodes.
//!
//! After the run, when `validate` is set, every distinct pair that got
//! a non-degraded server verdict is re-checked against an in-process
//! [`Scheduler`] with the same semantics; a disagreement between two
//! *exact* verdicts is a correctness failure (degraded verdicts are
//! resource-envelope answers and legitimately differ). The CI
//! `serve-smoke` job asserts `disagreements == 0`.

use cxu_gen::json::Json;
use cxu_gen::patterns::PatternParams;
use cxu_gen::program::{random_program, ProgramParams};
use cxu_gen::rng::{Rng, SplitMix64};
use cxu_gen::trees::{random_tree, TreeParams};
use cxu_gen::wire;
use cxu_ops::Semantics;
use cxu_sched::{ops_of_program, Deadline, Op, SchedConfig, Scheduler};
use cxu_tree::text;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Workload shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadProfile {
    /// Linear patterns only (`branch_rate = 0`): every pair stays on
    /// the PTIME detectors — the throughput profile.
    Linear,
    /// A quarter of pattern nodes branch: a mix of PTIME and NP-side
    /// pairs — the degradation profile.
    Mixed,
    /// Concurrent editors racing `doc_put` against shared documents
    /// with (deliberately) stale base revisions — the document-store
    /// profile. Measures auto-merge vs. branch vs. reject rates.
    Store,
    /// Closed-loop `doc_check` traffic against static shared documents:
    /// read/update pairs judged by the document-grounded detector over
    /// the store's cached structural index — the index-serving profile.
    Grounded,
    /// Concurrent editors racing atomic multi-op transactions (the
    /// one-shot `txn` route) against shared documents, guarding at
    /// their last-seen winners — the transaction profile. Measures
    /// commit / conflict / retry rates and latency; with `validate`,
    /// replays every acked transaction's revisions against the store
    /// for all-or-nothing visibility.
    Txn,
}

impl LoadProfile {
    /// The profile name as spelled on the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            LoadProfile::Linear => "linear",
            LoadProfile::Mixed => "mixed",
            LoadProfile::Store => "store",
            LoadProfile::Grounded => "grounded",
            LoadProfile::Txn => "txn",
        }
    }

    /// Parses a CLI spelling.
    pub fn from_name(s: &str) -> Result<LoadProfile, String> {
        match s {
            "linear" => Ok(LoadProfile::Linear),
            "mixed" => Ok(LoadProfile::Mixed),
            "store" => Ok(LoadProfile::Store),
            "grounded" => Ok(LoadProfile::Grounded),
            "txn" => Ok(LoadProfile::Txn),
            other => Err(format!(
                "unknown profile {other:?} (linear|mixed|store|grounded|txn)"
            )),
        }
    }

    fn branch_rate(self) -> f64 {
        match self {
            LoadProfile::Linear => 0.0,
            LoadProfile::Mixed => 0.25,
            // Mostly-linear update patterns keep most merge checks on
            // the exact PTIME detectors while still exercising the
            // conservative-verdict-must-branch rung now and then.
            LoadProfile::Store => 0.15,
            // Enough branching reads to exercise the index's table
            // (postings-join) path alongside the linear chain path.
            LoadProfile::Grounded => 0.2,
            // Same rationale as the store profile: mostly-exact merge
            // and cross-pair checks, with occasional conservative ones.
            LoadProfile::Txn => 0.15,
        }
    }
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Wall-clock run budget.
    pub duration: Duration,
    /// Optional per-connection request cap (whichever stop criterion
    /// hits first ends that connection's loop).
    pub requests_per_conn: Option<u64>,
    /// Workload seed.
    pub seed: u64,
    /// Workload shape.
    pub profile: LoadProfile,
    /// Semantics sent with every request.
    pub semantics: Semantics,
    /// Per-request deadline override (`deadline_ms` field), if any.
    pub deadline_ms: Option<u64>,
    /// Artificial worker-side delay per request (overload testing).
    pub delay_ms: u64,
    /// Re-check verdicts against an in-process scheduler after the run.
    pub validate: bool,
    /// Operations in the generated pool.
    pub pool_len: usize,
    /// Shared documents in the `store` profile (ignored elsewhere).
    /// Fewer documents ⇒ more editors per document ⇒ staler bases.
    pub docs: usize,
    /// Retry budget per request: `overloaded` answers and transport
    /// errors back off and resend up to this many times (0 = today's
    /// fail-fast behavior). Safe end to end because a resent `doc_put`
    /// replays idempotently server-side.
    pub retries: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `base × 2ⁿ` plus a seeded jitter of up to one base.
    pub backoff_ms: u64,
    /// Closed-loop pipelining window: requests kept in flight per
    /// connection (1 = classic request/response lockstep). Each window
    /// is one buffered write; responses are drained in order. Retries
    /// apply only at window 1.
    pub pipeline: usize,
    /// Open-loop mode: total intended arrival rate in requests/second,
    /// spread evenly across connections. `None` (default) runs closed
    /// loop. Open-loop latencies are reported both raw and
    /// coordinated-omission-corrected.
    pub rate: Option<f64>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            connections: 8,
            duration: Duration::from_millis(1500),
            requests_per_conn: None,
            seed: 42,
            profile: LoadProfile::Linear,
            semantics: Semantics::Value,
            deadline_ms: None,
            delay_ms: 0,
            validate: false,
            pool_len: 60,
            docs: 4,
            retries: 0,
            backoff_ms: 25,
            pipeline: 1,
            rate: None,
        }
    }
}

/// What one run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// `ok: true` responses.
    pub completed: u64,
    /// `overloaded` rejections (final, after any retries).
    pub overloaded: u64,
    /// Any other failure (errors, short reads, disconnects), final.
    pub failed: u64,
    /// Attempts that were retried after backoff. Each retried attempt
    /// also counts in `sent`, so
    /// `sent == completed + overloaded + failed + retries`.
    pub retries: u64,
    /// Wall-clock time from first send to last response.
    pub elapsed: Duration,
    /// Completed-response latency percentiles, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
    /// Distinct pairs re-checked during validation (for the `store`
    /// profile: documents and feed pages cross-checked).
    pub checked_pairs: usize,
    /// Exact-vs-exact verdict mismatches found by validation (for the
    /// `store` profile: changes-feed / winner consistency failures).
    pub disagreements: usize,
    /// Store profile: `doc_put` outcomes by result, as reported by the
    /// server (`created` counts resurrections too).
    pub store: StoreTallies,
    /// Txn profile: one-shot transaction outcomes by result.
    pub txn: TxnTallies,
    /// Echo of the run parameters.
    pub seed: u64,
    /// Echo: connections used.
    pub connections: usize,
    /// Echo: profile name.
    pub profile: &'static str,
    /// Echo: closed-loop pipelining window (1 = lockstep).
    pub pipeline: usize,
    /// Open-loop target arrival rate, if the run was open loop.
    pub open_loop_rate: Option<f64>,
    /// Open loop only: percentiles measured from the *intended* arrival
    /// time (coordinated-omission corrected). Zero in closed loop.
    pub corrected_p50_us: u64,
    /// Corrected 99th percentile (open loop only).
    pub corrected_p99_us: u64,
    /// Corrected worst case (open loop only).
    pub corrected_max_us: u64,
    /// Corrected mean (open loop only).
    pub corrected_mean_us: u64,
}

/// `doc_put` / `doc_delete` outcome tallies (store profile).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreTallies {
    /// `result: "created"` responses (creations and resurrections).
    pub created: u64,
    /// `result: "applied"` — uncontended fast-path puts.
    pub applied: u64,
    /// `result: "noop"` — idempotent replays.
    pub noop: u64,
    /// `result: "merged"` — stale base, provably commuting.
    pub merged: u64,
    /// `result: "branched"` — stale base, conflicting or unproven.
    pub branched: u64,
    /// `result: "rejected"` — answered rejections (tombstoned winner,
    /// unknown revision, and similar).
    pub rejected: u64,
}

impl StoreTallies {
    fn total(&self) -> u64 {
        self.created + self.applied + self.noop + self.merged + self.branched + self.rejected
    }

    fn add(&mut self, other: &StoreTallies) {
        self.created += other.created;
        self.applied += other.applied;
        self.noop += other.noop;
        self.merged += other.merged;
        self.branched += other.branched;
        self.rejected += other.rejected;
    }

    fn record(&mut self, result: &str) {
        match result {
            "created" => self.created += 1,
            "applied" => self.applied += 1,
            "noop" => self.noop += 1,
            "merged" => self.merged += 1,
            "branched" => self.branched += 1,
            _ => self.rejected += 1,
        }
    }
}

/// One-shot `txn` outcome tallies (txn profile).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxnTallies {
    /// `result: "applied"` with `replayed: false` — first-attempt commits.
    pub applied: u64,
    /// `result: "applied"` with `replayed: true` — idempotent replays of
    /// transactions whose first attempt actually committed.
    pub replayed: u64,
    /// `result: "conflict"` — retryable optimistic-concurrency losses
    /// (stale guards that do not commute with the winning edits, or an
    /// admission-time clash with an in-flight transaction).
    pub conflicted: u64,
    /// `result: "rejected"` — non-retryable refusals.
    pub rejected: u64,
    /// Conflict-driven resubmissions: each one refreshed its guards
    /// from the server's winners and sent the same program again.
    pub conflict_retries: u64,
}

impl TxnTallies {
    fn total(&self) -> u64 {
        self.applied + self.replayed + self.conflicted + self.rejected
    }

    fn add(&mut self, other: &TxnTallies) {
        self.applied += other.applied;
        self.replayed += other.replayed;
        self.conflicted += other.conflicted;
        self.rejected += other.rejected;
        self.conflict_retries += other.conflict_retries;
    }
}

impl LoadReport {
    /// Completed requests per second of elapsed time.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of sent requests rejected by admission control.
    pub fn rejection_rate(&self) -> f64 {
        if self.sent > 0 {
            self.overloaded as f64 / self.sent as f64
        } else {
            0.0
        }
    }

    /// Renders the `BENCH_SERVE.json` document — or `BENCH_STORE.json`
    /// when the run used the `store` profile, in which case the extra
    /// `store` object breaks completed puts down by outcome and gives
    /// the headline merge / branch / reject rates.
    pub fn to_json(&self) -> String {
        let mut members = vec![
            (
                "bench",
                Json::str(match self.profile {
                    "store" => "store",
                    "grounded" => "grounded",
                    "txn" => "txn",
                    _ => "serve",
                }),
            ),
            ("profile", Json::str(self.profile)),
            ("seed", Json::from(self.seed)),
            ("connections", Json::from(self.connections)),
            (
                "duration_ms",
                Json::from(self.elapsed.as_millis().min(u64::MAX as u128) as u64),
            ),
            ("pipeline", Json::from(self.pipeline.max(1))),
            (
                "mode",
                Json::str(if self.open_loop_rate.is_some() {
                    "open-loop"
                } else {
                    "closed-loop"
                }),
            ),
            ("sent", Json::from(self.sent)),
            ("completed", Json::from(self.completed)),
            ("overloaded", Json::from(self.overloaded)),
            ("failed", Json::from(self.failed)),
            ("retries", Json::from(self.retries)),
            ("throughput_rps", Json::from(self.throughput_rps())),
            ("rejection_rate", Json::from(self.rejection_rate())),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::from(self.p50_us)),
                    ("p99", Json::from(self.p99_us)),
                    ("max", Json::from(self.max_us)),
                    ("mean", Json::from(self.mean_us)),
                ]),
            ),
            ("checked_pairs", Json::from(self.checked_pairs)),
            ("disagreements", Json::from(self.disagreements)),
        ];
        if let Some(rate) = self.open_loop_rate {
            members.push(("target_rate_rps", Json::from(rate)));
            // The raw `latency_us` above times from the actual send; the
            // corrected block times from the intended arrival — the gap
            // between the two is the coordinated omission the raw number
            // hides.
            members.push((
                "latency_corrected_us",
                Json::obj(vec![
                    ("p50", Json::from(self.corrected_p50_us)),
                    ("p99", Json::from(self.corrected_p99_us)),
                    ("max", Json::from(self.corrected_max_us)),
                    ("mean", Json::from(self.corrected_mean_us)),
                ]),
            ));
        }
        if self.profile == "store" {
            let s = &self.store;
            let total = s.total();
            let stale = s.merged + s.branched;
            let rate = |n: u64, d: u64| if d > 0 { n as f64 / d as f64 } else { 0.0 };
            members.push((
                "store",
                Json::obj(vec![
                    ("puts", Json::from(total)),
                    ("created", Json::from(s.created)),
                    ("applied", Json::from(s.applied)),
                    ("noop", Json::from(s.noop)),
                    ("merged", Json::from(s.merged)),
                    ("branched", Json::from(s.branched)),
                    ("rejected", Json::from(s.rejected)),
                    // Of the puts that arrived with a stale base, how
                    // many the detectors proved safe to merge.
                    ("merge_rate", Json::from(rate(s.merged, stale))),
                    ("branch_rate", Json::from(rate(s.branched, stale))),
                    ("reject_rate", Json::from(rate(s.rejected, total))),
                ]),
            ));
        }
        if self.profile == "txn" {
            let t = &self.txn;
            let total = t.total();
            let decided = t.applied + t.conflicted;
            let rate = |n: u64, d: u64| if d > 0 { n as f64 / d as f64 } else { 0.0 };
            members.push((
                "txn",
                Json::obj(vec![
                    ("txns", Json::from(total)),
                    ("applied", Json::from(t.applied)),
                    ("replayed", Json::from(t.replayed)),
                    ("conflicted", Json::from(t.conflicted)),
                    ("rejected", Json::from(t.rejected)),
                    ("conflict_retries", Json::from(t.conflict_retries)),
                    // Of the first-attempt commit/conflict decisions, how
                    // many the optimistic path admitted outright.
                    ("commit_rate", Json::from(rate(t.applied, decided))),
                    ("conflict_rate", Json::from(rate(t.conflicted, decided))),
                    ("retry_rate", Json::from(rate(t.conflict_retries, total))),
                ]),
            ));
        }
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
        .to_string()
    }
}

/// Renders a `BENCH_SERVE.json` with a saturation sweep attached: the
/// headline (closed-loop) run's fields plus a `sweep` array, one entry
/// per open-loop rate point, each reporting throughput, rejections, and
/// both raw and corrected latency percentiles. Graceful degradation
/// reads directly off the array: corrected p99 stays flat and
/// `overloaded` stays at zero up to the knee, and past it the rejection
/// rate — not the latency of accepted requests — absorbs the overload.
pub fn sweep_to_json(headline: &LoadReport, points: &[LoadReport]) -> String {
    let mut members = match Json::parse(&headline.to_json()) {
        Ok(Json::Obj(m)) => m,
        _ => Vec::new(),
    };
    let pts: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::obj(vec![
                (
                    "target_rate_rps",
                    Json::from(p.open_loop_rate.unwrap_or(0.0)),
                ),
                ("throughput_rps", Json::from(p.throughput_rps())),
                ("sent", Json::from(p.sent)),
                ("completed", Json::from(p.completed)),
                ("overloaded", Json::from(p.overloaded)),
                ("failed", Json::from(p.failed)),
                ("rejection_rate", Json::from(p.rejection_rate())),
                (
                    "latency_us",
                    Json::obj(vec![
                        ("p50", Json::from(p.p50_us)),
                        ("p99", Json::from(p.p99_us)),
                        ("max", Json::from(p.max_us)),
                    ]),
                ),
                (
                    "latency_corrected_us",
                    Json::obj(vec![
                        ("p50", Json::from(p.corrected_p50_us)),
                        ("p99", Json::from(p.corrected_p99_us)),
                        ("max", Json::from(p.corrected_max_us)),
                    ]),
                ),
            ])
        })
        .collect();
    members.push(("sweep".to_owned(), Json::Arr(pts)));
    Json::Obj(members).to_string()
}

fn sem_name(s: Semantics) -> &'static str {
    match s {
        Semantics::Node => "node",
        Semantics::Tree => "tree",
        Semantics::Value => "value",
    }
}

/// One connection's tallies, merged after the join.
#[derive(Default)]
struct ConnResult {
    sent: u64,
    completed: u64,
    overloaded: u64,
    failed: u64,
    retries: u64,
    latencies_us: Vec<u64>,
    /// Open loop only: latencies from the *intended* arrival time.
    corrected_us: Vec<u64>,
    /// `(i, j, conflict)` for non-degraded `ok` verdicts, by pool index.
    observations: Vec<(usize, usize, bool)>,
    /// Store-profile outcome tallies.
    store: StoreTallies,
    /// Txn-profile outcome tallies.
    txn: TxnTallies,
    /// Txn profile with `validate`: the `(doc, rev)` sets the server
    /// acked as applied, one entry per committed transaction.
    acked_txns: Vec<Vec<(String, String)>>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the workload and gathers the report.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, String> {
    if cfg.profile == LoadProfile::Store {
        return run_store(cfg);
    }
    if cfg.profile == LoadProfile::Grounded {
        return run_grounded(cfg);
    }
    if cfg.profile == LoadProfile::Txn {
        return run_txn(cfg);
    }
    // The pool is generated once from the seed; each connection derives
    // its own request stream from seed ⊕ connection index.
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = cfg.profile.branch_rate();
    let params = ProgramParams {
        len: cfg.pool_len.max(2),
        update_rate: 0.5,
        delete_rate: 0.4,
        pattern,
    };
    let program = random_program(&mut rng, &params);
    let ops: Vec<Op> = ops_of_program(&program);
    let op_json: Vec<String> = program
        .stmts
        .iter()
        .map(|s| wire::stmt_to_json(s).to_string())
        .collect();

    // Probe the address once before spawning the fleet, for a clean
    // error instead of `connections` copies of it.
    TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;

    let rate_per_conn = cfg.rate.map(|r| r.max(1.0) / cfg.connections.max(1) as f64);
    let t0 = Instant::now();
    let end = t0 + cfg.duration;
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|c| {
                let op_json = &op_json;
                scope.spawn(move || match rate_per_conn {
                    Some(rate) => open_loop_conn(cfg, c as u64, op_json, end, rate),
                    None if cfg.pipeline > 1 => pipelined_loop(cfg, c as u64, op_json, end),
                    None => connection_loop(cfg, c as u64, op_json, end),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut report = LoadReport {
        elapsed,
        seed: cfg.seed,
        connections: cfg.connections.max(1),
        profile: cfg.profile.name(),
        pipeline: cfg.pipeline.max(1),
        open_loop_rate: cfg.rate,
        ..LoadReport::default()
    };
    let mut observations: Vec<(usize, usize, bool)> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut corrected: Vec<u64> = Vec::new();
    for r in results {
        report.sent += r.sent;
        report.completed += r.completed;
        report.overloaded += r.overloaded;
        report.failed += r.failed;
        report.retries += r.retries;
        latencies.extend(r.latencies_us);
        corrected.extend(r.corrected_us);
        observations.extend(r.observations);
    }
    fill_latencies(&mut report, latencies, corrected);

    if cfg.validate {
        let (checked, disagreements) = validate(&ops, &observations, cfg.semantics);
        report.checked_pairs = checked;
        report.disagreements = disagreements;
    }
    Ok(report)
}

fn fill_latencies(report: &mut LoadReport, mut raw: Vec<u64>, mut corrected: Vec<u64>) {
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0
        } else {
            v.iter().sum::<u64>() / v.len() as u64
        }
    };
    raw.sort_unstable();
    report.p50_us = percentile(&raw, 0.50);
    report.p99_us = percentile(&raw, 0.99);
    report.max_us = raw.last().copied().unwrap_or(0);
    report.mean_us = mean(&raw);
    corrected.sort_unstable();
    report.corrected_p50_us = percentile(&corrected, 0.50);
    report.corrected_p99_us = percentile(&corrected, 0.99);
    report.corrected_max_us = corrected.last().copied().unwrap_or(0);
    report.corrected_mean_us = mean(&corrected);
}

/// A line-oriented NDJSON client (setup and validation passes of the
/// store profile, and the crash harness's probes).
pub(crate) struct LineClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl LineClient {
    pub(crate) fn connect(addr: &str) -> Result<LineClient, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let writer = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        Ok(LineClient {
            writer,
            reader: BufReader::new(stream),
        })
    }

    pub(crate) fn roundtrip(&mut self, req: &str) -> Result<Json, String> {
        self.writer
            .write_all(req.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            other => return Err(format!("read: {other:?}")),
        }
        Json::parse(line.trim_end()).map_err(|e| format!("bad response line: {e}"))
    }
}

/// A [`LineClient`] with bounded retry: an `overloaded` answer or a
/// transport error sleeps a jittered exponential backoff and resends
/// (reconnecting first for transport errors), up to `retries` times.
/// The end-to-end safety argument is the store's replay idempotence: a
/// resent `doc_put` whose original actually committed resolves to a
/// noop at the originally minted revision, never a second apply.
struct RetryClient {
    addr: String,
    client: Option<LineClient>,
    retries: u32,
    backoff: Duration,
    /// Attempts that were retried (each also counted as sent).
    retried: u64,
}

impl RetryClient {
    fn connect(cfg: &LoadConfig) -> Result<RetryClient, String> {
        Ok(RetryClient {
            addr: cfg.addr.clone(),
            client: Some(LineClient::connect(&cfg.addr)?),
            retries: cfg.retries,
            backoff: Duration::from_millis(cfg.backoff_ms.max(1)),
            retried: 0,
        })
    }

    fn sleep_before(&self, attempt: u32, rng: &mut SplitMix64) {
        let exp = self.backoff * (1u32 << (attempt - 1).min(6));
        let base_ms = self.backoff.as_millis().max(1) as usize;
        let jitter = Duration::from_millis(rng.gen_range(0..base_ms) as u64);
        std::thread::sleep(exp + jitter);
    }

    /// Sends one request, retrying per policy. `sent` is bumped for
    /// every attempt (the caller already counted the first one).
    /// `Err` means the transport died with the budget exhausted.
    fn roundtrip(
        &mut self,
        req: &str,
        rng: &mut SplitMix64,
        sent: &mut u64,
    ) -> Result<Json, String> {
        let mut attempt = 0u32;
        loop {
            let resp = match self.client.as_mut() {
                Some(c) => c.roundtrip(req),
                None => Err("not connected".to_owned()),
            };
            match resp {
                Ok(v) => {
                    let overloaded = v.get("ok").and_then(Json::as_bool) != Some(true)
                        && v.get("error").and_then(Json::as_str) == Some("overloaded");
                    if overloaded && attempt < self.retries {
                        attempt += 1;
                        self.retried += 1;
                        *sent += 1;
                        self.sleep_before(attempt, rng);
                        continue;
                    }
                    return Ok(v);
                }
                Err(e) => {
                    self.client = None;
                    if attempt < self.retries {
                        attempt += 1;
                        self.retried += 1;
                        *sent += 1;
                        self.sleep_before(attempt, rng);
                        self.client = LineClient::connect(&self.addr).ok();
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// The store-profile run: seeded concurrent editors racing `doc_put`
/// against `cfg.docs` shared documents. Each editor tracks the winner
/// revision it last saw per document and uses it as `base_rev` — under
/// concurrency that view is naturally stale, which is precisely the
/// workload the auto-merge rung exists for.
fn run_store(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = cfg.profile.branch_rate();
    let params = ProgramParams {
        len: cfg.pool_len.max(2),
        // Update-only: the put path rejects reads at the parser.
        update_rate: 1.0,
        delete_rate: 0.3,
        pattern,
    };
    let program = random_program(&mut rng, &params);
    let op_json: Vec<String> = program
        .stmts
        .iter()
        .map(|s| wire::stmt_to_json(s).to_string())
        .collect();

    let extras = request_extras(cfg);
    let docs = cfg.docs.max(1);

    // Setup pass: create the shared documents, collecting their initial
    // revisions. The document trees share the update pool's label
    // alphabet, so patterns actually touch them.
    let tparams = TreeParams {
        nodes: 12,
        alphabet: 6,
        ..TreeParams::default()
    };
    let mut setup = LineClient::connect(&cfg.addr)?;
    let mut init_revs: Vec<String> = Vec::with_capacity(docs);
    for d in 0..docs {
        let content = text::to_text(&random_tree(&mut rng, &tparams));
        let v = setup.roundtrip(&format!(
            "{{\"route\": \"doc_put\", \"doc\": \"doc-{d}\", \"content\": \"{content}\"{extras}}}"
        ))?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("setup put for doc-{d} failed: {v}"));
        }
        let rev = v
            .get("rev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("setup put for doc-{d} returned no rev"))?;
        init_revs.push(rev.to_owned());
    }

    let t0 = Instant::now();
    let end = t0 + cfg.duration;
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|c| {
                let op_json = &op_json;
                let init_revs = &init_revs;
                scope.spawn(move || store_editor_loop(cfg, c as u64, op_json, init_revs, end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut report = LoadReport {
        elapsed,
        seed: cfg.seed,
        connections: cfg.connections.max(1),
        profile: cfg.profile.name(),
        pipeline: 1,
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for r in results {
        report.sent += r.sent;
        report.completed += r.completed;
        report.overloaded += r.overloaded;
        report.failed += r.failed;
        report.retries += r.retries;
        report.store.add(&r.store);
        latencies.extend(r.latencies_us);
    }
    fill_latencies(&mut report, latencies, Vec::new());

    if cfg.validate {
        let (checked, disagreements) = validate_store(cfg, &extras)?;
        report.checked_pairs = checked;
        report.disagreements = disagreements;
    }
    Ok(report)
}

fn request_extras(cfg: &LoadConfig) -> String {
    let mut extras = String::new();
    extras.push_str(&format!(", \"semantics\": \"{}\"", sem_name(cfg.semantics)));
    if let Some(ms) = cfg.deadline_ms {
        extras.push_str(&format!(", \"deadline_ms\": {ms}"));
    }
    if cfg.delay_ms > 0 {
        extras.push_str(&format!(", \"delay_ms\": {}", cfg.delay_ms));
    }
    extras
}

/// One editor thread: race `doc_put`s (and occasional `doc_delete`s)
/// against the shared documents, updating the local view of each
/// document's winner from the server's own responses.
fn store_editor_loop(
    cfg: &LoadConfig,
    conn: u64,
    op_json: &[String],
    init_revs: &[String],
    end: Instant,
) -> ConnResult {
    let mut out = ConnResult::default();
    let Ok(mut client) = RetryClient::connect(cfg) else {
        out.failed += 1;
        return out;
    };
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let extras = request_extras(cfg);
    let docs = init_revs.len();
    let mut revs: Vec<String> = init_revs.to_vec();
    // Content used to resurrect a document this editor finds deleted.
    let tparams = TreeParams {
        nodes: 8,
        alphabet: 6,
        ..TreeParams::default()
    };
    let resurrect = text::to_text(&random_tree(&mut rng, &tparams));
    let n = op_json.len();
    let mut req = String::new();
    while Instant::now() < end {
        if let Some(cap) = cfg.requests_per_conn {
            if out.sent >= cap {
                break;
            }
        }
        let d = rng.gen_range(0..docs);
        req.clear();
        req.push_str("{\"route\": ");
        if rng.gen_bool(0.05) {
            // Occasional whole-document delete: exercises tombstones,
            // the reject rung (edits against the tombstone), and
            // resurrection below.
            req.push_str("\"doc_delete\", \"doc\": \"doc-");
            req.push_str(&d.to_string());
            req.push_str("\", \"rev\": \"");
            req.push_str(&revs[d]);
            req.push('"');
        } else {
            req.push_str("\"doc_put\", \"doc\": \"doc-");
            req.push_str(&d.to_string());
            req.push_str("\", \"base_rev\": \"");
            req.push_str(&revs[d]);
            req.push_str("\", \"op\": ");
            req.push_str(&op_json[rng.gen_range(0..n)]);
        }
        req.push_str(&extras);
        req.push('}');
        let t_req = Instant::now();
        out.sent += 1;
        let v = match client.roundtrip(&req, &mut rng, &mut out.sent) {
            Ok(v) => v,
            Err(_) => {
                out.failed += 1;
                break;
            }
        };
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                out.completed += 1;
                out.latencies_us
                    .push(t_req.elapsed().as_micros().min(u64::MAX as u128) as u64);
                let result = v.get("result").and_then(Json::as_str).unwrap_or("rejected");
                out.store.record(result);
                if let Some(w) = v.get("winner").and_then(Json::as_str) {
                    revs[d] = w.to_owned();
                }
                let deleted_winner = v.get("winner_deleted").and_then(Json::as_bool) == Some(true);
                if result == "rejected" || deleted_winner {
                    // Refresh the local view; resurrect if the document
                    // is gone (every editor may try — creation is
                    // idempotent for identical content, and a racing
                    // different-content create is just a rejection).
                    out.sent += 1;
                    let refresh = if deleted_winner {
                        format!(
                            "{{\"route\": \"doc_put\", \"doc\": \"doc-{d}\", \"content\": \"{resurrect}\"{extras}}}"
                        )
                    } else {
                        format!("{{\"route\": \"doc_get\", \"doc\": \"doc-{d}\"{extras}}}")
                    };
                    match client.roundtrip(&refresh, &mut rng, &mut out.sent) {
                        Ok(r) => {
                            out.completed += 1;
                            if let Some(result) = r.get("result").and_then(Json::as_str) {
                                out.store.record(result);
                            }
                            if let Some(w) = r
                                .get("winner")
                                .or_else(|| r.get("rev"))
                                .and_then(Json::as_str)
                            {
                                revs[d] = w.to_owned();
                            }
                        }
                        Err(_) => {
                            out.failed += 1;
                            break;
                        }
                    }
                }
            }
            _ => {
                if v.get("error").and_then(Json::as_str) == Some("overloaded") {
                    out.overloaded += 1;
                } else {
                    out.failed += 1;
                }
            }
        }
    }
    out.retries = client.retried;
    out
}

/// The grounded profile: a setup pass creates `cfg.docs` shared
/// documents, then `connections` closed-loop clients fire `doc_check`
/// requests — seeded read/update pairs judged against the stored
/// document's structural index. The documents are never mutated, so
/// after the first check per document every request is served from the
/// store's warm index cache; this profile measures exactly the
/// index-grounded serving path.
///
/// With `validate`, every distinct `(doc, read, update)` verdict is
/// re-checked against the in-process Lemma 1 witness walk on the same
/// tree. Grounded answers are exact (never degraded), so *any*
/// disagreement is a correctness failure.
fn run_grounded(cfg: &LoadConfig) -> Result<LoadReport, String> {
    use cxu_gen::program::Stmt;

    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = cfg.profile.branch_rate();
    let params = ProgramParams {
        len: cfg.pool_len.max(8),
        update_rate: 0.5,
        delete_rate: 0.4,
        pattern,
    };
    let program = random_program(&mut rng, &params);
    let mut reads: Vec<(cxu_ops::Read, String)> = Vec::new();
    let mut updates: Vec<(cxu_ops::Update, String)> = Vec::new();
    for s in &program.stmts {
        let json = wire::stmt_to_json(s).to_string();
        match s {
            Stmt::Read(r) => reads.push((r.clone(), json)),
            Stmt::Update(u) => updates.push((u.clone(), json)),
        }
    }
    if reads.is_empty() || updates.is_empty() {
        return Err("grounded pool generated no reads or no updates; raise the pool size".into());
    }

    let extras = request_extras(cfg);
    let docs = cfg.docs.max(1);

    // Setup pass: create the shared documents. Trees share the pattern
    // pool's alphabet so reads and updates actually select something.
    let tparams = TreeParams {
        nodes: 40,
        alphabet: 6,
        ..TreeParams::default()
    };
    let mut setup = LineClient::connect(&cfg.addr)?;
    let mut trees: Vec<cxu_tree::Tree> = Vec::with_capacity(docs);
    for d in 0..docs {
        let tree = random_tree(&mut rng, &tparams);
        let content = text::to_text(&tree);
        let v = setup.roundtrip(&format!(
            "{{\"route\": \"doc_put\", \"doc\": \"doc-{d}\", \"content\": \"{content}\"{extras}}}"
        ))?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("setup put for doc-{d} failed: {v}"));
        }
        trees.push(tree);
    }

    let t0 = Instant::now();
    let end = t0 + cfg.duration;
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|c| {
                let reads = &reads;
                let updates = &updates;
                scope.spawn(move || grounded_check_loop(cfg, c as u64, reads, updates, docs, end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut report = LoadReport {
        elapsed,
        seed: cfg.seed,
        connections: cfg.connections.max(1),
        profile: cfg.profile.name(),
        pipeline: 1,
        ..LoadReport::default()
    };
    let mut observations: Vec<(usize, usize, bool)> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    for r in results {
        report.sent += r.sent;
        report.completed += r.completed;
        report.overloaded += r.overloaded;
        report.failed += r.failed;
        report.retries += r.retries;
        latencies.extend(r.latencies_us);
        observations.extend(r.observations);
    }
    fill_latencies(&mut report, latencies, Vec::new());

    if cfg.validate {
        // Observations encode (doc, read) in the first index; decode
        // and re-derive every distinct verdict with the witness walk.
        let mut by_key: HashMap<(usize, usize), bool> = HashMap::new();
        let mut disagreements = 0usize;
        for &(dr, ui, conflict) in &observations {
            if let Some(&earlier) = by_key.get(&(dr, ui)) {
                if earlier != conflict {
                    disagreements += 1; // self-contradiction across repeats
                }
                continue;
            }
            by_key.insert((dr, ui), conflict);
        }
        for (&(dr, ui), &server_conflict) in &by_key {
            let (d, ri) = (dr / reads.len(), dr % reads.len());
            let expect = cxu_ops::witness::witnesses_update_conflict(
                &reads[ri].0,
                &updates[ui].0,
                &trees[d],
                cfg.semantics,
            );
            if expect != server_conflict {
                disagreements += 1;
            }
        }
        report.checked_pairs = by_key.len();
        report.disagreements = disagreements;
    }
    Ok(report)
}

/// One grounded-profile client: fire `doc_check` requests for random
/// (document, read, update) triples, tallying verdicts. Observations
/// pack `(doc * reads.len() + read, update)` into the shared
/// `(i, j, conflict)` shape.
fn grounded_check_loop(
    cfg: &LoadConfig,
    conn: u64,
    reads: &[(cxu_ops::Read, String)],
    updates: &[(cxu_ops::Update, String)],
    docs: usize,
    end: Instant,
) -> ConnResult {
    let mut out = ConnResult::default();
    let Ok(mut client) = RetryClient::connect(cfg) else {
        out.failed += 1;
        return out;
    };
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let extras = request_extras(cfg);
    let mut req = String::new();
    while Instant::now() < end {
        if let Some(cap) = cfg.requests_per_conn {
            if out.sent >= cap {
                break;
            }
        }
        let d = rng.gen_range(0..docs);
        let ri = rng.gen_range(0..reads.len());
        let ui = rng.gen_range(0..updates.len());
        req.clear();
        req.push_str("{\"route\": \"doc_check\", \"id\": ");
        req.push_str(&out.sent.to_string());
        req.push_str(", \"doc\": \"doc-");
        req.push_str(&d.to_string());
        req.push_str("\", \"read\": ");
        req.push_str(&reads[ri].1);
        req.push_str(", \"update\": ");
        req.push_str(&updates[ui].1);
        req.push_str(&extras);
        req.push('}');
        let t_req = Instant::now();
        out.sent += 1;
        let v = match client.roundtrip(&req, &mut rng, &mut out.sent) {
            Ok(v) => v,
            Err(_) => {
                out.failed += 1;
                break;
            }
        };
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                out.completed += 1;
                out.latencies_us
                    .push(t_req.elapsed().as_micros().min(u64::MAX as u128) as u64);
                if cfg.validate {
                    if let Some(conflict) = v.get("conflict").and_then(Json::as_bool) {
                        out.observations.push((d * reads.len() + ri, ui, conflict));
                    }
                }
            }
            _ => {
                if v.get("error").and_then(Json::as_str) == Some("overloaded") {
                    out.overloaded += 1;
                } else {
                    out.failed += 1;
                }
            }
        }
    }
    out.retries = client.retried;
    out
}

/// The store profile's `--validate` pass, over the live server:
/// changes-feed monotonicity, one entry per document, winner agreement
/// with `doc_get`, and cursor replay (mid-stream resume and
/// limit-paging both reconstruct the same suffix). Returns
/// `(checks, disagreements)`.
fn validate_store(cfg: &LoadConfig, extras: &str) -> Result<(usize, usize), String> {
    let mut client = LineClient::connect(&cfg.addr)?;
    let mut checked = 0usize;
    let mut bad = 0usize;

    let full = client.roundtrip(&format!("{{\"route\": \"doc_changes\"{extras}}}"))?;
    let entries = full
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("doc_changes returned no results array")?
        .to_vec();
    let seq_of = |e: &Json| e.get("seq").and_then(Json::as_u64).unwrap_or(0);

    // Monotonicity and per-document uniqueness.
    checked += 1;
    if !entries.windows(2).all(|w| seq_of(&w[0]) < seq_of(&w[1])) {
        bad += 1;
    }
    checked += 1;
    let mut seen = std::collections::HashSet::new();
    if !entries
        .iter()
        .all(|e| seen.insert(e.get("doc").and_then(Json::as_str).unwrap_or("").to_owned()))
    {
        bad += 1;
    }

    // Every feed row names the document's current winner.
    for e in &entries {
        let doc = e.get("doc").and_then(Json::as_str).unwrap_or("");
        let g = client.roundtrip(&format!(
            "{{\"route\": \"doc_get\", \"doc\": \"{doc}\"{extras}}}"
        ))?;
        checked += 1;
        let feed_rev = e.get("rev").and_then(Json::as_str);
        let feed_del = e.get("deleted").and_then(Json::as_bool);
        if g.get("found").and_then(Json::as_bool) != Some(true)
            || g.get("rev").and_then(Json::as_str) != feed_rev
            || g.get("deleted").and_then(Json::as_bool) != feed_del
        {
            bad += 1;
        }
    }

    // Cursor replay from the middle of the feed.
    if let Some(mid) = entries.get(entries.len() / 2).map(&seq_of) {
        let tail = client.roundtrip(&format!(
            "{{\"route\": \"doc_changes\", \"since\": {mid}{extras}}}"
        ))?;
        let tail = tail
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("doc_changes returned no results array")?
            .to_vec();
        let expect: Vec<&Json> = entries.iter().filter(|e| seq_of(e) > mid).collect();
        checked += 1;
        if tail.len() != expect.len()
            || tail
                .iter()
                .zip(&expect)
                .any(|(a, b)| a.to_string() != b.to_string())
        {
            bad += 1;
        }
    }

    // Limit-paging reconstructs the full feed.
    let mut cursor = 0u64;
    let mut paged: Vec<Json> = Vec::new();
    loop {
        let page = client.roundtrip(&format!(
            "{{\"route\": \"doc_changes\", \"since\": {cursor}, \"limit\": 1{extras}}}"
        ))?;
        let rows = page
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("doc_changes returned no results array")?
            .to_vec();
        if rows.is_empty() {
            break;
        }
        paged.extend(rows);
        let next = page
            .get("last_seq")
            .and_then(Json::as_u64)
            .unwrap_or(cursor);
        if next <= cursor {
            bad += 1;
            break;
        }
        cursor = next;
        if paged.len() > entries.len() + 1 {
            // The feed moved under us (it should not: editors stopped)
            // or paging is broken; either way stop and flag it.
            bad += 1;
            break;
        }
    }
    checked += 1;
    if paged.len() != entries.len()
        || paged
            .iter()
            .zip(&entries)
            .any(|(a, b)| a.to_string() != b.to_string())
    {
        bad += 1;
    }

    Ok((checked, bad))
}

/// The txn-profile run: seeded concurrent editors racing atomic
/// multi-op transactions (the one-shot `txn` route) against `cfg.docs`
/// shared documents, guarding every touched document at the winner the
/// editor last saw. Under concurrency those guards are naturally stale,
/// which is exactly the workload the commutativity-aware optimistic
/// admission exists for: commuting transactions interleave and commit,
/// conflicting ones lose retryably and resubmit with refreshed guards.
fn run_txn(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = cfg.profile.branch_rate();
    let params = ProgramParams {
        len: cfg.pool_len.max(2),
        // Update-only: transaction writes reject reads at the parser.
        update_rate: 1.0,
        delete_rate: 0.3,
        pattern,
    };
    let program = random_program(&mut rng, &params);
    let op_json: Vec<String> = program
        .stmts
        .iter()
        .map(|s| wire::stmt_to_json(s).to_string())
        .collect();

    let extras = request_extras(cfg);
    let docs = cfg.docs.max(1);

    // Setup pass: create the shared documents, collecting their initial
    // revisions (the editors' first guards).
    let tparams = TreeParams {
        nodes: 12,
        alphabet: 6,
        ..TreeParams::default()
    };
    let mut setup = LineClient::connect(&cfg.addr)?;
    let mut init_revs: Vec<String> = Vec::with_capacity(docs);
    for d in 0..docs {
        let content = text::to_text(&random_tree(&mut rng, &tparams));
        let v = setup.roundtrip(&format!(
            "{{\"route\": \"doc_put\", \"doc\": \"doc-{d}\", \"content\": \"{content}\"{extras}}}"
        ))?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("setup put for doc-{d} failed: {v}"));
        }
        let rev = v
            .get("rev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("setup put for doc-{d} returned no rev"))?;
        init_revs.push(rev.to_owned());
    }

    let t0 = Instant::now();
    let end = t0 + cfg.duration;
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|c| {
                let op_json = &op_json;
                let init_revs = &init_revs;
                scope.spawn(move || txn_editor_loop(cfg, c as u64, op_json, init_revs, end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut report = LoadReport {
        elapsed,
        seed: cfg.seed,
        connections: cfg.connections.max(1),
        profile: cfg.profile.name(),
        pipeline: 1,
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    let mut acked: Vec<Vec<(String, String)>> = Vec::new();
    for r in results {
        report.sent += r.sent;
        report.completed += r.completed;
        report.overloaded += r.overloaded;
        report.failed += r.failed;
        report.retries += r.retries;
        report.txn.add(&r.txn);
        latencies.extend(r.latencies_us);
        acked.extend(r.acked_txns);
    }
    fill_latencies(&mut report, latencies, Vec::new());

    if cfg.validate {
        let (checked, disagreements) = validate_txn(cfg, &extras, &acked)?;
        report.checked_pairs = checked;
        report.disagreements = disagreements;
    }
    Ok(report)
}

/// One txn-profile editor: build a transaction of 1–3 update writes
/// over 1–2 shared documents, guard every touched document at the
/// winner this editor last saw, and send it as a one-shot `txn`
/// request. Applied answers advance the local winner view from the
/// acked revisions; retryable conflicts refresh the view from the
/// server and resubmit the same program (bounded attempts, tallied as
/// `conflict_retries`).
fn txn_editor_loop(
    cfg: &LoadConfig,
    conn: u64,
    op_json: &[String],
    init_revs: &[String],
    end: Instant,
) -> ConnResult {
    let mut out = ConnResult::default();
    let Ok(mut client) = RetryClient::connect(cfg) else {
        out.failed += 1;
        return out;
    };
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let extras = request_extras(cfg);
    let docs = init_revs.len();
    let mut revs: Vec<String> = init_revs.to_vec();
    let n = op_json.len();
    let mut req = String::new();
    'run: while Instant::now() < end {
        if let Some(cap) = cfg.requests_per_conn {
            if out.sent >= cap {
                break;
            }
        }
        // Pick the program once; conflict retries resend it verbatim
        // (with fresh guards), which is the documented retry story.
        let d1 = rng.gen_range(0..docs);
        let span = if docs > 1 && rng.gen_bool(0.5) { 2 } else { 1 };
        let d2 = if span == 2 {
            let mut d = rng.gen_range(0..docs - 1);
            if d >= d1 {
                d += 1;
            }
            d
        } else {
            d1
        };
        let n_ops = 1 + rng.gen_range(0..3);
        let writes: Vec<(usize, usize)> = (0..n_ops)
            .map(|k| {
                let doc = if span == 2 && k % 2 == 1 { d2 } else { d1 };
                (doc, rng.gen_range(0..n))
            })
            .collect();
        let mut touched: Vec<usize> = vec![d1];
        if span == 2 {
            touched.push(d2);
        }

        // Bounded optimistic retry: first attempt plus up to two
        // guard-refreshing resubmissions after retryable conflicts.
        for attempt in 0..3u32 {
            req.clear();
            req.push_str("{\"route\": \"txn\", \"guards\": [");
            for (k, &d) in touched.iter().enumerate() {
                if k > 0 {
                    req.push_str(", ");
                }
                req.push_str("{\"doc\": \"doc-");
                req.push_str(&d.to_string());
                req.push_str("\", \"rev\": \"");
                req.push_str(&revs[d]);
                req.push_str("\"}");
            }
            req.push_str("], \"ops\": [");
            for (k, &(d, op)) in writes.iter().enumerate() {
                if k > 0 {
                    req.push_str(", ");
                }
                req.push_str("{\"doc\": \"doc-");
                req.push_str(&d.to_string());
                req.push_str("\", \"op\": ");
                req.push_str(&op_json[op]);
                req.push('}');
            }
            req.push(']');
            req.push_str(&extras);
            req.push('}');
            let t_req = Instant::now();
            out.sent += 1;
            if attempt > 0 {
                out.txn.conflict_retries += 1;
            }
            let v = match client.roundtrip(&req, &mut rng, &mut out.sent) {
                Ok(v) => v,
                Err(_) => {
                    out.failed += 1;
                    break 'run;
                }
            };
            if v.get("ok").and_then(Json::as_bool) != Some(true) {
                if v.get("error").and_then(Json::as_str) == Some("overloaded") {
                    out.overloaded += 1;
                } else {
                    out.failed += 1;
                }
                break;
            }
            out.completed += 1;
            out.latencies_us
                .push(t_req.elapsed().as_micros().min(u64::MAX as u128) as u64);
            match v.get("result").and_then(Json::as_str) {
                Some("applied") => {
                    if v.get("replayed").and_then(Json::as_bool) == Some(true) {
                        out.txn.replayed += 1;
                    } else {
                        out.txn.applied += 1;
                    }
                    let mut minted: Vec<(String, String)> = Vec::new();
                    if let Some(rows) = v.get("revs").and_then(Json::as_arr) {
                        for row in rows {
                            let doc = row.get("doc").and_then(Json::as_str).unwrap_or("");
                            let rev = row.get("rev").and_then(Json::as_str).unwrap_or("");
                            // The last acked revision per document is
                            // the new winner this editor observed.
                            if let Some(idx) = doc
                                .strip_prefix("doc-")
                                .and_then(|s| s.parse::<usize>().ok())
                            {
                                if idx < docs {
                                    revs[idx] = rev.to_owned();
                                }
                            }
                            minted.push((doc.to_owned(), rev.to_owned()));
                        }
                    }
                    if cfg.validate && !minted.is_empty() {
                        out.acked_txns.push(minted);
                    }
                    break;
                }
                Some("conflict") => {
                    out.txn.conflicted += 1;
                    // Refresh every touched document's winner before the
                    // resubmission (or before the next fresh program when
                    // the retry budget is spent).
                    for &d in &touched {
                        out.sent += 1;
                        let refresh =
                            format!("{{\"route\": \"doc_get\", \"doc\": \"doc-{d}\"{extras}}}");
                        match client.roundtrip(&refresh, &mut rng, &mut out.sent) {
                            Ok(r) => {
                                out.completed += 1;
                                if let Some(w) = r.get("rev").and_then(Json::as_str) {
                                    revs[d] = w.to_owned();
                                }
                            }
                            Err(_) => {
                                out.failed += 1;
                                break 'run;
                            }
                        }
                    }
                }
                _ => {
                    out.txn.rejected += 1;
                    break;
                }
            }
        }
    }
    out.retries = client.retried;
    out
}

/// The txn profile's `--validate` pass: replay the changes feed for the
/// usual consistency checks (monotone seqs, one row per document, every
/// row naming the live winner), then probe every revision of every
/// acked transaction with an explicit-rev `doc_get` — all-or-nothing
/// visibility means every acked set is fully present; a transaction
/// with some revisions durable and some missing is a torn commit.
/// Returns `(checks, disagreements)`.
fn validate_txn(
    cfg: &LoadConfig,
    extras: &str,
    acked: &[Vec<(String, String)>],
) -> Result<(usize, usize), String> {
    let mut client = LineClient::connect(&cfg.addr)?;
    let mut checked = 0usize;
    let mut bad = 0usize;

    let full = client.roundtrip(&format!("{{\"route\": \"doc_changes\"{extras}}}"))?;
    let entries = full
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("doc_changes returned no results array")?
        .to_vec();
    let seq_of = |e: &Json| e.get("seq").and_then(Json::as_u64).unwrap_or(0);

    checked += 1;
    if !entries.windows(2).all(|w| seq_of(&w[0]) < seq_of(&w[1])) {
        bad += 1;
    }
    checked += 1;
    let mut seen = std::collections::HashSet::new();
    if !entries
        .iter()
        .all(|e| seen.insert(e.get("doc").and_then(Json::as_str).unwrap_or("").to_owned()))
    {
        bad += 1;
    }
    for e in &entries {
        let doc = e.get("doc").and_then(Json::as_str).unwrap_or("");
        let g = client.roundtrip(&format!(
            "{{\"route\": \"doc_get\", \"doc\": \"{doc}\"{extras}}}"
        ))?;
        checked += 1;
        if g.get("found").and_then(Json::as_bool) != Some(true)
            || g.get("rev").and_then(Json::as_str) != e.get("rev").and_then(Json::as_str)
        {
            bad += 1;
        }
    }

    // All-or-nothing: every revision the server acked inside one
    // transaction must be individually readable. Probe each (doc, rev)
    // once — transactions often re-ack a shared revision on replay.
    let mut present: HashMap<(String, String), bool> = HashMap::new();
    for txn in acked {
        checked += 1;
        let mut found = 0usize;
        for (doc, rev) in txn {
            let key = (doc.clone(), rev.clone());
            let ok = match present.get(&key) {
                Some(&ok) => ok,
                None => {
                    let g = client.roundtrip(&format!(
                        "{{\"route\": \"doc_get\", \"doc\": \"{doc}\", \"rev\": \"{rev}\"{extras}}}"
                    ))?;
                    let ok = g.get("found").and_then(Json::as_bool) == Some(true);
                    present.insert(key, ok);
                    ok
                }
            };
            if ok {
                found += 1;
            }
        }
        // A fully-missing set is a lost commit; a mixed set is a torn
        // one. Both violate atomic visibility.
        if found != txn.len() {
            bad += 1;
        }
    }

    Ok((checked, bad))
}

/// One client thread: connect, fire `check` requests for random
/// distinct pool pairs, tally responses.
fn connection_loop(cfg: &LoadConfig, conn: u64, op_json: &[String], end: Instant) -> ConnResult {
    let mut out = ConnResult::default();
    let Ok(mut client) = RetryClient::connect(cfg) else {
        out.failed += 1;
        return out;
    };
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = op_json.len();
    let extras = request_extras(cfg);
    let mut req = String::new();
    while Instant::now() < end {
        if let Some(cap) = cfg.requests_per_conn {
            if out.sent >= cap {
                break;
            }
        }
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        req.clear();
        req.push_str("{\"route\": \"check\", \"id\": ");
        req.push_str(&out.sent.to_string());
        req.push_str(", \"a\": ");
        req.push_str(&op_json[i]);
        req.push_str(", \"b\": ");
        req.push_str(&op_json[j]);
        req.push_str(&extras);
        req.push('}');
        let t_req = Instant::now();
        out.sent += 1;
        let v = match client.roundtrip(&req, &mut rng, &mut out.sent) {
            Ok(v) => v,
            Err(_) => {
                out.failed += 1;
                break;
            }
        };
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                out.completed += 1;
                out.latencies_us
                    .push(t_req.elapsed().as_micros().min(u64::MAX as u128) as u64);
                if cfg.validate && v.get("degraded").and_then(Json::as_bool) == Some(false) {
                    if let Some(conflict) = v.get("conflict").and_then(Json::as_bool) {
                        out.observations.push((i, j, conflict));
                    }
                }
            }
            _ => {
                if v.get("error").and_then(Json::as_str) == Some("overloaded") {
                    out.overloaded += 1;
                } else {
                    out.failed += 1;
                }
            }
        }
    }
    out.retries = client.retried;
    out
}

/// Renders one seeded `check` request (no trailing newline) into `req`
/// and returns the chosen distinct pool pair.
fn render_check_req(
    req: &mut String,
    rng: &mut SplitMix64,
    op_json: &[String],
    extras: &str,
    id: u64,
) -> (usize, usize) {
    let n = op_json.len();
    let i = rng.gen_range(0..n);
    let mut j = rng.gen_range(0..n - 1);
    if j >= i {
        j += 1;
    }
    req.push_str("{\"route\": \"check\", \"id\": ");
    req.push_str(&id.to_string());
    req.push_str(", \"a\": ");
    req.push_str(&op_json[i]);
    req.push_str(", \"b\": ");
    req.push_str(&op_json[j]);
    req.push_str(extras);
    req.push('}');
    (i, j)
}

/// Tallies one `check` response; returns whether it completed (and so
/// should contribute a latency sample).
fn tally_response(out: &mut ConnResult, v: &Json, i: usize, j: usize, validate: bool) -> bool {
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => {
            out.completed += 1;
            if validate && v.get("degraded").and_then(Json::as_bool) == Some(false) {
                if let Some(conflict) = v.get("conflict").and_then(Json::as_bool) {
                    out.observations.push((i, j, conflict));
                }
            }
            true
        }
        _ => {
            if v.get("error").and_then(Json::as_str) == Some("overloaded") {
                out.overloaded += 1;
            } else {
                out.failed += 1;
            }
            false
        }
    }
}

/// Closed-loop pipelined client: one buffered write per window of
/// `pipeline` requests, then the window's responses drained in order.
/// One write syscall carries the whole window and the server's event
/// loop answers warm-cache checks inline, so the per-request syscall
/// and wakeup overhead — the closed-loop lockstep bottleneck — is
/// amortized `pipeline`-fold.
fn pipelined_loop(cfg: &LoadConfig, conn: u64, op_json: &[String], end: Instant) -> ConnResult {
    let mut out = ConnResult::default();
    let Ok(writer) = TcpStream::connect(&cfg.addr) else {
        out.failed += 1;
        return out;
    };
    let _ = writer.set_nodelay(true);
    let _ = writer.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(rstream) = writer.try_clone() else {
        out.failed += 1;
        return out;
    };
    let mut writer = writer;
    let mut reader = BufReader::new(rstream);
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let window = cfg.pipeline.max(1) as u64;
    let extras = request_extras(cfg);
    let mut batch = String::new();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut line = String::new();
    'run: while Instant::now() < end {
        let room = match cfg.requests_per_conn {
            Some(cap) => cap.saturating_sub(out.sent).min(window),
            None => window,
        };
        if room == 0 {
            break;
        }
        batch.clear();
        pairs.clear();
        for _ in 0..room {
            let pair = render_check_req(&mut batch, &mut rng, op_json, &extras, out.sent);
            batch.push('\n');
            pairs.push(pair);
            out.sent += 1;
        }
        let t_send = Instant::now();
        if writer.write_all(batch.as_bytes()).is_err() {
            out.failed += room;
            break;
        }
        for (k, &(i, j)) in pairs.iter().enumerate() {
            line.clear();
            let v = match reader.read_line(&mut line) {
                Ok(n) if n > 0 => Json::parse(line.trim_end()).ok(),
                _ => None,
            };
            let Some(v) = v else {
                out.failed += room - k as u64;
                break 'run;
            };
            if tally_response(&mut out, &v, i, j, cfg.validate) {
                out.latencies_us
                    .push(t_send.elapsed().as_micros().min(u64::MAX as u128) as u64);
            }
        }
    }
    out
}

/// Open-loop client: a paced writer sends request *k* at `t₀ + k/rate`
/// — batching everything already due into one write when it falls
/// behind — while the connection thread drains responses in order.
///
/// This is where the coordinated-omission fix lives: each response's
/// latency is recorded from its **intended** arrival time (corrected)
/// *and* from the actual send (raw). Under backpressure the old
/// closed-loop measurement simply stops sending — the requests that
/// would have observed the stall are never timed, so the percentiles
/// only sample the server's good moods. The corrected clock charges the
/// stall to every request that was due during it.
fn open_loop_conn(
    cfg: &LoadConfig,
    conn: u64,
    op_json: &[String],
    end: Instant,
    rate: f64,
) -> ConnResult {
    let mut out = ConnResult::default();
    let Ok(wstream) = TcpStream::connect(&cfg.addr) else {
        out.failed += 1;
        return out;
    };
    let _ = wstream.set_nodelay(true);
    let _ = wstream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = wstream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(rstream) = wstream.try_clone() else {
        out.failed += 1;
        return out;
    };
    let mut reader = BufReader::new(rstream);
    // (intended, sent_at, i, j) per in-flight request, FIFO — responses
    // come back in request order on one connection.
    let pending: Mutex<VecDeque<(Instant, Instant, usize, usize)>> = Mutex::new(VecDeque::new());
    let done_sending = AtomicBool::new(false);
    let mut line = String::new();
    std::thread::scope(|scope| {
        let pending = &pending;
        let done_sending = &done_sending;
        let writer_handle = scope.spawn(move || {
            let mut writer = wstream;
            let mut rng =
                SplitMix64::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let extras = request_extras(cfg);
            let interval = 1.0 / rate.max(1e-9);
            let t0 = Instant::now();
            let mut k: u64 = 0;
            let mut sent: u64 = 0;
            let mut batch = String::new();
            loop {
                if cfg.requests_per_conn.is_some_and(|cap| sent >= cap) {
                    break;
                }
                let intended = t0 + Duration::from_secs_f64(k as f64 * interval);
                if intended >= end {
                    break;
                }
                let now = Instant::now();
                if intended > now {
                    std::thread::sleep(intended - now);
                }
                // Send everything due by now as one write (catch-up
                // batching keeps the *schedule* fixed even when the
                // sender was stalled — the backlog goes out immediately,
                // it is not rescheduled).
                batch.clear();
                let now = Instant::now();
                let mut metas: Vec<(Instant, usize, usize)> = Vec::new();
                loop {
                    let due = t0 + Duration::from_secs_f64(k as f64 * interval);
                    if due > now || due >= end || metas.len() >= 1024 {
                        break;
                    }
                    if cfg
                        .requests_per_conn
                        .is_some_and(|cap| sent + metas.len() as u64 >= cap)
                    {
                        break;
                    }
                    let (i, j) = render_check_req(&mut batch, &mut rng, op_json, &extras, k);
                    batch.push('\n');
                    metas.push((due, i, j));
                    k += 1;
                }
                if metas.is_empty() {
                    continue;
                }
                let send_at = Instant::now();
                {
                    let mut q = pending.lock().unwrap_or_else(|e| e.into_inner());
                    for &(due, i, j) in &metas {
                        q.push_back((due, send_at, i, j));
                    }
                }
                sent += metas.len() as u64;
                if writer.write_all(batch.as_bytes()).is_err() {
                    break;
                }
            }
            done_sending.store(true, Ordering::Release);
            sent
        });

        loop {
            let meta = pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            let Some((intended, sent_at, i, j)) = meta else {
                if done_sending.load(Ordering::Acquire)
                    && pending.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
                {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
                continue;
            };
            line.clear();
            let v = match reader.read_line(&mut line) {
                Ok(n) if n > 0 => Json::parse(line.trim_end()).ok(),
                _ => None,
            };
            let Some(v) = v else {
                let stranded = pending.lock().unwrap_or_else(|e| e.into_inner()).len();
                out.failed += 1 + stranded as u64;
                break;
            };
            let t_resp = Instant::now();
            if tally_response(&mut out, &v, i, j, cfg.validate) {
                out.latencies_us.push(
                    t_resp
                        .saturating_duration_since(sent_at)
                        .as_micros()
                        .min(u64::MAX as u128) as u64,
                );
                out.corrected_us.push(
                    t_resp
                        .saturating_duration_since(intended)
                        .as_micros()
                        .min(u64::MAX as u128) as u64,
                );
            }
        }
        out.sent = writer_handle.join().unwrap_or(0);
    });
    out
}

/// Re-checks every distinct observed pair against an in-process
/// scheduler. Returns `(checked, disagreements)`.
fn validate(
    ops: &[Op],
    observations: &[(usize, usize, bool)],
    semantics: Semantics,
) -> (usize, usize) {
    let mut by_pair: HashMap<(usize, usize), bool> = HashMap::new();
    let mut disagreements = 0;
    for &(i, j, conflict) in observations {
        let key = (i.min(j), i.max(j));
        if let Some(&earlier) = by_pair.get(&key) {
            if earlier != conflict {
                // The server contradicted itself across repeats of the
                // same pair — count it without needing the oracle.
                disagreements += 1;
            }
            continue;
        }
        by_pair.insert(key, conflict);
    }
    let mut local = Scheduler::new(SchedConfig {
        semantics,
        jobs: 1,
        ..SchedConfig::default()
    });
    let deadline = Deadline::never();
    for (&(i, j), &server_conflict) in &by_pair {
        let d = local.check_pair(&ops[i], &ops[j], &deadline);
        if !d.verdict.detector.is_conservative() && d.verdict.conflict != server_conflict {
            disagreements += 1;
        }
    }
    (by_pair.len(), disagreements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_names_roundtrip() {
        for p in [
            LoadProfile::Linear,
            LoadProfile::Mixed,
            LoadProfile::Store,
            LoadProfile::Grounded,
            LoadProfile::Txn,
        ] {
            assert_eq!(LoadProfile::from_name(p.name()).unwrap(), p);
        }
        assert!(LoadProfile::from_name("warp").is_err());
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn report_json_shape() {
        let report = LoadReport {
            sent: 10,
            completed: 8,
            overloaded: 2,
            elapsed: Duration::from_secs(2),
            p50_us: 100,
            p99_us: 900,
            max_us: 1000,
            mean_us: 200,
            seed: 42,
            connections: 4,
            profile: "linear",
            ..LoadReport::default()
        };
        let v = Json::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("serve"));
        assert_eq!(v.get("completed").and_then(Json::as_u64), Some(8));
        assert_eq!(v.get("throughput_rps").and_then(Json::as_f64), Some(4.0));
        assert_eq!(v.get("rejection_rate").and_then(Json::as_f64), Some(0.2));
        let lat = v.get("latency_us").unwrap();
        assert_eq!(lat.get("p99").and_then(Json::as_u64), Some(900));
    }

    #[test]
    fn txn_report_json_shape() {
        let report = LoadReport {
            sent: 12,
            completed: 10,
            elapsed: Duration::from_secs(1),
            seed: 7,
            connections: 2,
            profile: "txn",
            txn: TxnTallies {
                applied: 6,
                replayed: 1,
                conflicted: 2,
                rejected: 1,
                conflict_retries: 2,
            },
            ..LoadReport::default()
        };
        let v = Json::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("txn"));
        let t = v.get("txn").unwrap();
        assert_eq!(t.get("txns").and_then(Json::as_u64), Some(10));
        assert_eq!(t.get("replayed").and_then(Json::as_u64), Some(1));
        assert_eq!(t.get("conflict_retries").and_then(Json::as_u64), Some(2));
        // 6 applied of 8 first-attempt commit/conflict decisions.
        assert_eq!(t.get("commit_rate").and_then(Json::as_f64), Some(0.75));
        assert_eq!(t.get("conflict_rate").and_then(Json::as_f64), Some(0.25));
    }

    #[test]
    fn validation_counts_disagreements() {
        let program =
            cxu_gen::parse::parse_program("y = read $x//C; insert $x/B, C; z = read $x//Q")
                .unwrap();
        let ops = ops_of_program(&program);
        // Pair (0, 1) conflicts, pair (1, 2) does not.
        let obs = vec![(0, 1, true), (1, 2, false)];
        assert_eq!(validate(&ops, &obs, Semantics::Value), (2, 0));
        let wrong = vec![(0, 1, false), (2, 1, true), (1, 0, true)];
        // (0,1) lied once and then contradicted itself; (1,2) lied.
        assert_eq!(validate(&ops, &wrong, Semantics::Value), (2, 3));
    }
}
