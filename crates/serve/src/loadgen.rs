//! Seeded closed-loop load generator.
//!
//! Replays a generated operation pool against a running server at a
//! target concurrency: `connections` client threads, each with its own
//! socket, each sending one `check` request at a time and waiting for
//! the response (closed loop — offered load adapts to service rate, so
//! the measured throughput is the sustained one, not an open-loop
//! fantasy). The pool and the request sequence derive from one seed:
//! same seed, same workload.
//!
//! After the run, when `validate` is set, every distinct pair that got
//! a non-degraded server verdict is re-checked against an in-process
//! [`Scheduler`] with the same semantics; a disagreement between two
//! *exact* verdicts is a correctness failure (degraded verdicts are
//! resource-envelope answers and legitimately differ). The CI
//! `serve-smoke` job asserts `disagreements == 0`.

use cxu_gen::json::Json;
use cxu_gen::patterns::PatternParams;
use cxu_gen::program::{random_program, ProgramParams};
use cxu_gen::rng::{Rng, SplitMix64};
use cxu_gen::wire;
use cxu_ops::Semantics;
use cxu_sched::{ops_of_program, Deadline, Op, SchedConfig, Scheduler};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Workload shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadProfile {
    /// Linear patterns only (`branch_rate = 0`): every pair stays on
    /// the PTIME detectors — the throughput profile.
    Linear,
    /// A quarter of pattern nodes branch: a mix of PTIME and NP-side
    /// pairs — the degradation profile.
    Mixed,
}

impl LoadProfile {
    /// The profile name as spelled on the CLI and in reports.
    pub fn name(self) -> &'static str {
        match self {
            LoadProfile::Linear => "linear",
            LoadProfile::Mixed => "mixed",
        }
    }

    /// Parses a CLI spelling.
    pub fn from_name(s: &str) -> Result<LoadProfile, String> {
        match s {
            "linear" => Ok(LoadProfile::Linear),
            "mixed" => Ok(LoadProfile::Mixed),
            other => Err(format!("unknown profile {other:?} (linear|mixed)")),
        }
    }

    fn branch_rate(self) -> f64 {
        match self {
            LoadProfile::Linear => 0.0,
            LoadProfile::Mixed => 0.25,
        }
    }
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Wall-clock run budget.
    pub duration: Duration,
    /// Optional per-connection request cap (whichever stop criterion
    /// hits first ends that connection's loop).
    pub requests_per_conn: Option<u64>,
    /// Workload seed.
    pub seed: u64,
    /// Workload shape.
    pub profile: LoadProfile,
    /// Semantics sent with every request.
    pub semantics: Semantics,
    /// Per-request deadline override (`deadline_ms` field), if any.
    pub deadline_ms: Option<u64>,
    /// Artificial worker-side delay per request (overload testing).
    pub delay_ms: u64,
    /// Re-check verdicts against an in-process scheduler after the run.
    pub validate: bool,
    /// Operations in the generated pool.
    pub pool_len: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            connections: 8,
            duration: Duration::from_millis(1500),
            requests_per_conn: None,
            seed: 42,
            profile: LoadProfile::Linear,
            semantics: Semantics::Value,
            deadline_ms: None,
            delay_ms: 0,
            validate: false,
            pool_len: 60,
        }
    }
}

/// What one run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// `ok: true` responses.
    pub completed: u64,
    /// `overloaded` rejections.
    pub overloaded: u64,
    /// Any other failure (errors, short reads, disconnects).
    pub failed: u64,
    /// Wall-clock time from first send to last response.
    pub elapsed: Duration,
    /// Completed-response latency percentiles, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
    /// Distinct pairs re-checked during validation.
    pub checked_pairs: usize,
    /// Exact-vs-exact verdict mismatches found by validation.
    pub disagreements: usize,
    /// Echo of the run parameters.
    pub seed: u64,
    /// Echo: connections used.
    pub connections: usize,
    /// Echo: profile name.
    pub profile: &'static str,
}

impl LoadReport {
    /// Completed requests per second of elapsed time.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of sent requests rejected by admission control.
    pub fn rejection_rate(&self) -> f64 {
        if self.sent > 0 {
            self.overloaded as f64 / self.sent as f64
        } else {
            0.0
        }
    }

    /// Renders the `BENCH_SERVE.json` document.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("bench", Json::str("serve")),
            ("profile", Json::str(self.profile)),
            ("seed", Json::from(self.seed)),
            ("connections", Json::from(self.connections)),
            (
                "duration_ms",
                Json::from(self.elapsed.as_millis().min(u64::MAX as u128) as u64),
            ),
            ("sent", Json::from(self.sent)),
            ("completed", Json::from(self.completed)),
            ("overloaded", Json::from(self.overloaded)),
            ("failed", Json::from(self.failed)),
            ("throughput_rps", Json::from(self.throughput_rps())),
            ("rejection_rate", Json::from(self.rejection_rate())),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::from(self.p50_us)),
                    ("p99", Json::from(self.p99_us)),
                    ("max", Json::from(self.max_us)),
                    ("mean", Json::from(self.mean_us)),
                ]),
            ),
            ("checked_pairs", Json::from(self.checked_pairs)),
            ("disagreements", Json::from(self.disagreements)),
        ])
        .to_string()
    }
}

fn sem_name(s: Semantics) -> &'static str {
    match s {
        Semantics::Node => "node",
        Semantics::Tree => "tree",
        Semantics::Value => "value",
    }
}

/// One connection's tallies, merged after the join.
#[derive(Default)]
struct ConnResult {
    sent: u64,
    completed: u64,
    overloaded: u64,
    failed: u64,
    latencies_us: Vec<u64>,
    /// `(i, j, conflict)` for non-degraded `ok` verdicts, by pool index.
    observations: Vec<(usize, usize, bool)>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the workload and gathers the report.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, String> {
    // The pool is generated once from the seed; each connection derives
    // its own request stream from seed ⊕ connection index.
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let mut pattern = PatternParams::linear(4);
    pattern.alphabet = 6;
    pattern.branch_rate = cfg.profile.branch_rate();
    let params = ProgramParams {
        len: cfg.pool_len.max(2),
        update_rate: 0.5,
        delete_rate: 0.4,
        pattern,
    };
    let program = random_program(&mut rng, &params);
    let ops: Vec<Op> = ops_of_program(&program);
    let op_json: Vec<String> = program
        .stmts
        .iter()
        .map(|s| wire::stmt_to_json(s).to_string())
        .collect();

    // Probe the address once before spawning the fleet, for a clean
    // error instead of `connections` copies of it.
    TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;

    let t0 = Instant::now();
    let end = t0 + cfg.duration;
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|c| {
                let op_json = &op_json;
                scope.spawn(move || connection_loop(cfg, c as u64, op_json, end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut report = LoadReport {
        elapsed,
        seed: cfg.seed,
        connections: cfg.connections.max(1),
        profile: cfg.profile.name(),
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    let mut observations: Vec<(usize, usize, bool)> = Vec::new();
    for r in results {
        report.sent += r.sent;
        report.completed += r.completed;
        report.overloaded += r.overloaded;
        report.failed += r.failed;
        latencies.extend(r.latencies_us);
        observations.extend(r.observations);
    }
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 0.50);
    report.p99_us = percentile(&latencies, 0.99);
    report.max_us = latencies.last().copied().unwrap_or(0);
    report.mean_us = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };

    if cfg.validate {
        let (checked, disagreements) = validate(&ops, &observations, cfg.semantics);
        report.checked_pairs = checked;
        report.disagreements = disagreements;
    }
    Ok(report)
}

/// One client thread: connect, fire `check` requests for random
/// distinct pool pairs, tally responses.
fn connection_loop(cfg: &LoadConfig, conn: u64, op_json: &[String], end: Instant) -> ConnResult {
    let mut out = ConnResult::default();
    let Ok(stream) = TcpStream::connect(&cfg.addr) else {
        out.failed += 1;
        return out;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            out.failed += 1;
            return out;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = op_json.len();
    let mut extras = String::new();
    extras.push_str(&format!(", \"semantics\": \"{}\"", sem_name(cfg.semantics)));
    if let Some(ms) = cfg.deadline_ms {
        extras.push_str(&format!(", \"deadline_ms\": {ms}"));
    }
    if cfg.delay_ms > 0 {
        extras.push_str(&format!(", \"delay_ms\": {}", cfg.delay_ms));
    }
    let mut line = String::new();
    let mut req = String::new();
    while Instant::now() < end {
        if let Some(cap) = cfg.requests_per_conn {
            if out.sent >= cap {
                break;
            }
        }
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        req.clear();
        req.push_str("{\"route\": \"check\", \"id\": ");
        req.push_str(&out.sent.to_string());
        req.push_str(", \"a\": ");
        req.push_str(&op_json[i]);
        req.push_str(", \"b\": ");
        req.push_str(&op_json[j]);
        req.push_str(&extras);
        req.push_str("}\n");
        let t_req = Instant::now();
        out.sent += 1;
        if writer.write_all(req.as_bytes()).is_err() {
            out.failed += 1;
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(len) if len > 0 => {}
            _ => {
                out.failed += 1;
                break;
            }
        }
        let Ok(v) = Json::parse(line.trim_end()) else {
            out.failed += 1;
            continue;
        };
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                out.completed += 1;
                out.latencies_us
                    .push(t_req.elapsed().as_micros().min(u64::MAX as u128) as u64);
                if cfg.validate && v.get("degraded").and_then(Json::as_bool) == Some(false) {
                    if let Some(conflict) = v.get("conflict").and_then(Json::as_bool) {
                        out.observations.push((i, j, conflict));
                    }
                }
            }
            _ => {
                if v.get("error").and_then(Json::as_str) == Some("overloaded") {
                    out.overloaded += 1;
                } else {
                    out.failed += 1;
                }
            }
        }
    }
    out
}

/// Re-checks every distinct observed pair against an in-process
/// scheduler. Returns `(checked, disagreements)`.
fn validate(
    ops: &[Op],
    observations: &[(usize, usize, bool)],
    semantics: Semantics,
) -> (usize, usize) {
    let mut by_pair: HashMap<(usize, usize), bool> = HashMap::new();
    let mut disagreements = 0;
    for &(i, j, conflict) in observations {
        let key = (i.min(j), i.max(j));
        if let Some(&earlier) = by_pair.get(&key) {
            if earlier != conflict {
                // The server contradicted itself across repeats of the
                // same pair — count it without needing the oracle.
                disagreements += 1;
            }
            continue;
        }
        by_pair.insert(key, conflict);
    }
    let mut local = Scheduler::new(SchedConfig {
        semantics,
        jobs: 1,
        ..SchedConfig::default()
    });
    let deadline = Deadline::never();
    for (&(i, j), &server_conflict) in &by_pair {
        let d = local.check_pair(&ops[i], &ops[j], &deadline);
        if !d.verdict.detector.is_conservative() && d.verdict.conflict != server_conflict {
            disagreements += 1;
        }
    }
    (by_pair.len(), disagreements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_names_roundtrip() {
        for p in [LoadProfile::Linear, LoadProfile::Mixed] {
            assert_eq!(LoadProfile::from_name(p.name()).unwrap(), p);
        }
        assert!(LoadProfile::from_name("warp").is_err());
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn report_json_shape() {
        let report = LoadReport {
            sent: 10,
            completed: 8,
            overloaded: 2,
            elapsed: Duration::from_secs(2),
            p50_us: 100,
            p99_us: 900,
            max_us: 1000,
            mean_us: 200,
            seed: 42,
            connections: 4,
            profile: "linear",
            ..LoadReport::default()
        };
        let v = Json::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("serve"));
        assert_eq!(v.get("completed").and_then(Json::as_u64), Some(8));
        assert_eq!(v.get("throughput_rps").and_then(Json::as_f64), Some(4.0));
        assert_eq!(v.get("rejection_rate").and_then(Json::as_f64), Some(0.2));
        let lat = v.get("latency_us").unwrap();
        assert_eq!(lat.get("p99").and_then(Json::as_u64), Some(900));
    }

    #[test]
    fn validation_counts_disagreements() {
        let program =
            cxu_gen::parse::parse_program("y = read $x//C; insert $x/B, C; z = read $x//Q")
                .unwrap();
        let ops = ops_of_program(&program);
        // Pair (0, 1) conflicts, pair (1, 2) does not.
        let obs = vec![(0, 1, true), (1, 2, false)];
        assert_eq!(validate(&ops, &obs, Semantics::Value), (2, 0));
        let wrong = vec![(0, 1, false), (2, 1, true), (1, 0, true)];
        // (0,1) lied once and then contradicted itself; (1,2) lied.
        assert_eq!(validate(&ops, &wrong, Semantics::Value), (2, 3));
    }
}
