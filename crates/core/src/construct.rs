//! Constructive witnesses for linear-read conflicts — the (If)
//! directions of Lemmas 3 and 6 as runnable code.
//!
//! The §4 detectors answer *whether* a conflict exists; the proofs of
//! their correctness are constructive, and this module executes them:
//! from the matching word of the fired edge condition it assembles a
//! concrete tree `W` with `R(u(W)) ≠ R(W)`, re-verified with the Lemma 1
//! checker before being returned.
//!
//! Construction recipe (per proof):
//!
//! * build the **chain** spelled by the matching word — the path from
//!   `ROOT(W)` to the update point `u`;
//! * graft a *model* of every branch subpattern of the update under
//!   **every** chain node (the Lemma 4/8 trick), so the possibly
//!   branching update pattern actually selects `u`;
//! * for deletions, graft a model of the read suffix below `u` so the
//!   read has something to lose; for insertions, the inserted `X` itself
//!   provides the new result.
//!
//! Together with the detectors this yields a two-sided guarantee that
//! the test-suite checks by property: `detector says conflict` ⟺
//! `a concrete verified witness exists`.

use crate::matching::{match_word, read_prefix, spine_nodes, MatchKind};
use cxu_ops::witness::witnesses_update_conflict;
use cxu_ops::{Delete, Insert, Read, Semantics, Update};
use cxu_pattern::{Axis, PNodeId, Pattern};
use cxu_tree::{NodeId, Symbol, Tree};

/// Builds a chain tree from a label word; returns the tree and the node
/// ids of the chain, root first.
fn chain_tree(word: &[Symbol]) -> (Tree, Vec<NodeId>) {
    assert!(!word.is_empty());
    let mut t = Tree::new(word[0]);
    let mut nodes = vec![t.root()];
    for &s in &word[1..] {
        let n = t.build_child(*nodes.last().expect("nonempty"), s);
        nodes.push(n);
    }
    (t, nodes)
}

/// Grafts (journal-free) a copy of `sub` under `parent`.
fn graft_quiet(t: &mut Tree, parent: NodeId, sub: &Tree) {
    let root = t.build_child(parent, sub.label(sub.root()));
    let mut stack = vec![(sub.root(), root)];
    while let Some((src, dst)) = stack.pop() {
        for &c in sub.children(src) {
            let copy = t.build_child(dst, sub.label(c));
            stack.push((c, copy));
        }
    }
}

/// The Lemma 4/8 saturation: for every off-spine branch child `b` of a
/// spine node of `pattern`, graft `𝕄_{SUBPATTERN_b}` under every chain
/// node. Any embedding of the spine into the chain then extends to an
/// embedding of the full pattern.
fn saturate_with_branch_models(
    w: &mut Tree,
    chain: &[NodeId],
    pattern: &Pattern,
    avoid: &[Symbol],
) {
    let spine: Vec<PNodeId> = pattern
        .path(pattern.root(), pattern.output())
        .expect("output reachable");
    for &n in &spine {
        for &c in pattern.children(n) {
            if spine.contains(&c) {
                continue;
            }
            let model = pattern.subpattern(c).model_fresh(avoid);
            for &node in chain {
                graft_quiet(w, node, &model);
            }
        }
    }
}

fn avoid_set(r: &Read, u: &Update) -> Vec<Symbol> {
    let mut avoid = r.pattern().alphabet();
    avoid.extend(u.pattern().alphabet());
    if let Update::Insert(i) = u {
        avoid.extend(i.subtree().alphabet());
    }
    avoid
}

/// Why a linear-read conflict exists: the machine-checkable evidence
/// behind a detector verdict.
#[derive(Debug, Clone)]
pub struct Evidence {
    /// 1-based index of the read edge that fired — the edge between the
    /// `edge`-th and `edge+1`-th spine nodes. For the
    /// tree/value-only case (update strictly below every read result)
    /// this is `None`.
    pub edge: Option<usize>,
    /// The axis of the fired edge.
    pub axis: Option<Axis>,
    /// A concrete tree witnessing the conflict, verified with the
    /// Lemma 1 checker.
    pub witness: Tree,
}

/// Constructs a verified witness for a read-insert **node** conflict, or
/// `None` if the pair is independent. The read must be linear; the
/// insert pattern may branch.
pub fn construct_insert_witness(r: &Read, i: &Insert) -> Option<Tree> {
    explain_insert(r, i).map(|e| e.witness)
}

/// Like [`construct_insert_witness`], but also reports *which* cut edge
/// (Lemma 6) fired.
pub fn explain_insert(r: &Read, i: &Insert) -> Option<Evidence> {
    if !r.pattern().is_linear() {
        return None;
    }
    let read = r.pattern();
    let spine = i.pattern().spine();
    let x = i.subtree();
    let nodes = spine_nodes(read);
    let avoid = avoid_set(r, &Update::Insert(i.clone()));

    for j in 2..=nodes.len() {
        let n_prime = nodes[j - 1];
        let suffix = read.seq(n_prime, read.output()).expect("path");
        let prefix = read_prefix(read, j - 1);
        let attempt = match read.axis(n_prime).expect("non-root") {
            Axis::Child => {
                if !cxu_pattern::eval::can_embed_at(&suffix, x, x.root()) {
                    continue;
                }
                match_word(&spine, &prefix, MatchKind::Strong)
            }
            Axis::Descendant => {
                if cxu_pattern::eval::embed_anchors(&suffix, x).is_empty() {
                    continue;
                }
                match_word(&spine, &prefix, MatchKind::Weak)
            }
        };
        let Some((word, _anchor)) = attempt else {
            continue;
        };
        let (mut w, chain) = chain_tree(&word);
        saturate_with_branch_models(&mut w, &chain, i.pattern(), &avoid);
        w.clear_mods();
        if witnesses_update_conflict(r, &Update::Insert(i.clone()), &w, Semantics::Node) {
            return Some(Evidence {
                edge: Some(j - 1),
                axis: read.axis(n_prime),
                witness: w,
            });
        }
        // The proof guarantees this verifies; if it ever did not, fall
        // through and try the next edge rather than return a bad tree.
        debug_assert!(false, "constructed insert witness failed verification");
    }
    None
}

/// Constructs a verified witness for a read-delete **node** conflict, or
/// `None` if the pair is independent. The read must be linear; the
/// delete pattern may branch.
pub fn construct_delete_witness(r: &Read, d: &Delete) -> Option<Tree> {
    explain_delete(r, d).map(|e| e.witness)
}

/// Like [`construct_delete_witness`], but also reports which edge of
/// Lemma 3 fired.
pub fn explain_delete(r: &Read, d: &Delete) -> Option<Evidence> {
    if !r.pattern().is_linear() {
        return None;
    }
    let read = r.pattern();
    let spine = d.pattern().spine();
    let nodes = spine_nodes(read);
    let avoid = avoid_set(r, &Update::Delete(d.clone()));

    for j in 2..=nodes.len() {
        let n_prime = nodes[j - 1];
        let (attempt, graft_from) = match read.axis(n_prime).expect("non-root") {
            // Deletion point strictly on the gap (or at `n`'s image):
            // the whole suffix from n' hangs below it.
            Axis::Descendant => (
                match_word(&spine, &read_prefix(read, j - 1), MatchKind::Weak),
                Some(n_prime),
            ),
            // Deletion point = E(n'): the suffix below n' (if any) hangs
            // under it.
            Axis::Child => (
                match_word(&spine, &read_prefix(read, j), MatchKind::Strong),
                read.children(n_prime).first().copied(),
            ),
        };
        let Some((word, _anchor)) = attempt else {
            continue;
        };
        let (mut w, chain) = chain_tree(&word);
        let u_node = *chain.last().expect("nonempty chain");
        if let Some(from) = graft_from {
            let rest = read.seq(from, read.output()).expect("path");
            let model = rest.model_fresh(&avoid);
            graft_quiet(&mut w, u_node, &model);
        }
        saturate_with_branch_models(&mut w, &chain, d.pattern(), &avoid);
        w.clear_mods();
        if witnesses_update_conflict(r, &Update::Delete(d.clone()), &w, Semantics::Node) {
            return Some(Evidence {
                edge: Some(j - 1),
                axis: read.axis(n_prime),
                witness: w,
            });
        }
        debug_assert!(false, "constructed delete witness failed verification");
    }
    None
}

/// Constructs a verified witness under any semantics. For `Tree`/`Value`
/// a node-conflict witness is used when one exists; otherwise the
/// weak-match of the update against the **full** read yields a tree
/// whose selected subtree the update modifies (the §4 remarks).
pub fn construct_witness(r: &Read, u: &Update, sem: Semantics) -> Option<Tree> {
    explain(r, u, sem).map(|e| e.witness)
}

/// [`construct_witness`] with evidence: which read edge fired (`edge` is
/// `None` for the tree/value-only case where the update lands strictly
/// inside a selected subtree).
pub fn explain(r: &Read, u: &Update, sem: Semantics) -> Option<Evidence> {
    if !r.pattern().is_linear() {
        return None;
    }
    let node_evidence = match u {
        Update::Insert(i) => explain_insert(r, i),
        Update::Delete(d) => explain_delete(r, d),
    };
    if sem == Semantics::Node {
        return node_evidence;
    }
    if let Some(e) = node_evidence {
        // A node conflict is also a tree conflict; for value semantics
        // verify (Lemma 2 equates them for linear reads, but the checker
        // has the final word on the concrete tree).
        if witnesses_update_conflict(r, u, &e.witness, sem) {
            return Some(e);
        }
    }
    // Weak match of the update spine against the whole read: the update
    // point lands inside a selected subtree.
    let spine = u.pattern().spine();
    let (word, _anchor) = match_word(&spine, r.pattern(), MatchKind::Weak)?;
    let (mut w, chain) = chain_tree(&word);
    saturate_with_branch_models(&mut w, &chain, u.pattern(), &avoid_set(r, u));
    // For value semantics the modified subtree must not be replaceable by
    // an isomorphic sibling; the constructed chain has no siblings, so
    // the checker should agree. Verify rather than trust.
    w.clear_mods();
    if witnesses_update_conflict(r, u, &w, sem) {
        Some(Evidence {
            edge: None,
            axis: None,
            witness: w,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect;
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn read(p: &str) -> Read {
        Read::new(parse(p).unwrap())
    }

    fn ins(p: &str, x: &str) -> Insert {
        Insert::new(parse(p).unwrap(), text::parse(x).unwrap())
    }

    fn del(p: &str) -> Delete {
        Delete::new(parse(p).unwrap()).unwrap()
    }

    #[test]
    fn section1_witness_constructed() {
        let r = read("x//C");
        let i = ins("x/B", "C");
        let w = construct_insert_witness(&r, &i).expect("conflict");
        assert!(witnesses_update_conflict(
            &r,
            &Update::Insert(i),
            &w,
            Semantics::Node
        ));
        assert_eq!(w.live_count(), 2, "minimal §1 witness is x(B): {w:?}");
    }

    #[test]
    fn independent_pair_yields_none() {
        let r = read("x//D");
        let i = ins("x/B", "C");
        assert!(construct_insert_witness(&r, &i).is_none());
    }

    #[test]
    fn delete_witness_constructed() {
        let r = read("a/b//v");
        let d = del("a/b/u");
        let w = construct_delete_witness(&r, &d).expect("conflict");
        assert!(witnesses_update_conflict(
            &r,
            &Update::Delete(d),
            &w,
            Semantics::Node
        ));
    }

    #[test]
    fn branching_update_witness_constructed() {
        // Corollaries 1–2: update may branch; branch models make the
        // full pattern fire on the constructed chain.
        let r = read("a//c");
        let i = ins("a/b[q][.//w]", "c");
        let w = construct_insert_witness(&r, &i).expect("conflict");
        assert!(witnesses_update_conflict(
            &r,
            &Update::Insert(i),
            &w,
            Semantics::Node
        ));
        // The witness must contain the branch labels somewhere.
        let labels: Vec<&str> = w.alphabet().iter().map(|s| s.as_str()).collect();
        assert!(labels.contains(&"q"));
        assert!(labels.contains(&"w"));
    }

    #[test]
    fn wildcard_heavy_witness() {
        let r = read("*/*//c");
        let i = ins("*//b", "c(d)");
        if detect::read_insert_conflict(&r, &i, Semantics::Node).unwrap() {
            let w = construct_insert_witness(&r, &i).expect("detector fired");
            assert!(witnesses_update_conflict(
                &r,
                &Update::Insert(i),
                &w,
                Semantics::Node
            ));
        }
    }

    #[test]
    fn tree_semantics_witness_without_node_conflict() {
        // read a/b vs insert at a/b/c: node-independent, tree-conflicting.
        let r = read("a/b");
        let i = ins("a/b/c", "x");
        assert!(construct_witness(&r, &Update::Insert(i.clone()), Semantics::Node).is_none());
        let w = construct_witness(&r, &Update::Insert(i.clone()), Semantics::Tree)
            .expect("tree conflict");
        assert!(witnesses_update_conflict(
            &r,
            &Update::Insert(i),
            &w,
            Semantics::Tree
        ));
    }

    #[test]
    fn value_semantics_witness() {
        let r = read("a/b");
        let d = del("a/b/c");
        let w = construct_witness(&r, &Update::Delete(d.clone()), Semantics::Value)
            .expect("value conflict");
        assert!(witnesses_update_conflict(
            &r,
            &Update::Delete(d),
            &w,
            Semantics::Value
        ));
    }

    #[test]
    fn evidence_reports_fired_edge() {
        // read x//C: edge 1 (the x→C descendant edge) fires.
        let r = read("x//C");
        let i = ins("x/B", "C");
        let e = explain_insert(&r, &i).expect("conflict");
        assert_eq!(e.edge, Some(1));
        assert_eq!(e.axis, Some(Axis::Descendant));

        // read a/b/c with X = c: the child edge (b, c) — edge 2 — fires.
        let r2 = read("a/b/c");
        let i2 = ins("a/b", "c");
        let e2 = explain_insert(&r2, &i2).expect("conflict");
        assert_eq!(e2.edge, Some(2));
        assert_eq!(e2.axis, Some(Axis::Child));
    }

    #[test]
    fn evidence_tree_only_case_has_no_edge() {
        let r = read("a/b");
        let u = Update::Insert(ins("a/b/c", "x"));
        let e = explain(&r, &u, Semantics::Tree).expect("tree conflict");
        assert_eq!(e.edge, None);
        assert!(witnesses_update_conflict(
            &r,
            &u,
            &e.witness,
            Semantics::Tree
        ));
    }

    #[test]
    fn agreement_with_detector_battery() {
        // construct ⇔ detect over a battery, node semantics.
        let cases: Vec<(&str, Update)> = vec![
            ("x//C", Update::Insert(ins("x/B", "C"))),
            ("x//D", Update::Insert(ins("x/B", "C"))),
            ("a/b/c", Update::Insert(ins("a/b", "c"))),
            ("a/b/c", Update::Insert(ins("a/b", "q"))),
            ("a//f", Update::Insert(ins("a/b", "x(y(f))"))),
            ("a/f", Update::Insert(ins("a/b", "x(y(f))"))),
            ("a/b//v", Update::Delete(del("a/b/u"))),
            ("a/b/c", Update::Delete(del("a/b"))),
            ("a/b", Update::Delete(del("a/q"))),
            ("a/*/c", Update::Delete(del("a/q"))),
            ("q/b/c", Update::Insert(ins("x/b", "c"))),
        ];
        for (r_src, u) in cases {
            let r = read(r_src);
            let says = detect::read_update_conflict(&r, &u, Semantics::Node).unwrap();
            let witness = construct_witness(&r, &u, Semantics::Node);
            assert_eq!(
                says,
                witness.is_some(),
                "{r_src} vs {u:?}: detector {says}, witness {witness:?}"
            );
            if let Some(w) = witness {
                assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
            }
        }
    }
}
