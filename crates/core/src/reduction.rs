//! The NP-hardness reductions of §5: XPath non-containment → conflict.
//!
//! Theorem 4 (read-insert): given patterns `p, p'`, build
//!
//! ```text
//! q_I = α[β[p][γ]] / β[p']      X = γ        q_R = α[β[p'][γ]]
//! ```
//!
//! with `α, β, γ` fresh. Then `READ_{q_R}` and `INSERT_{q_I, X}` have a
//! node conflict **iff** `p ⊄ p'`.
//!
//! Theorem 6 (read-delete): build
//!
//! ```text
//! q_D = α[β[p]] / γ[p']         q_R = α[*[p']]
//! ```
//!
//! Then `READ_{q_R}` and `DELETE_{q_D}` have a node conflict iff
//! `p ⊄ p'`.
//!
//! These constructions power the E5 experiment: they are validated
//! empirically against the exact containment oracle
//! (`cxu_pattern::containment`), closing the loop on the paper's
//! complexity claims.

use cxu_ops::{Delete, Insert, Read};
use cxu_pattern::{Axis, Pattern};
use cxu_tree::{Symbol, Tree};

/// Fresh `α, β, γ` relative to both input patterns.
fn fresh_triple(p: &Pattern, p_prime: &Pattern) -> (Symbol, Symbol, Symbol) {
    let mut avoid = p.alphabet();
    avoid.extend(p_prime.alphabet());
    let a = Symbol::fresh("alpha", &avoid);
    avoid.push(a);
    let b = Symbol::fresh("beta", &avoid);
    avoid.push(b);
    let g = Symbol::fresh("gamma", &avoid);
    (a, b, g)
}

/// Theorem 4's construction: `(R, I)` such that they node-conflict iff
/// `p ⊄ p'`.
pub fn insert_instance(p: &Pattern, p_prime: &Pattern) -> (Read, Insert) {
    let (alpha, beta, gamma) = fresh_triple(p, p_prime);

    // q_I = α[β[p][γ]]/β[p'] — output at the second β.
    let mut qi = Pattern::new(Some(alpha));
    let b1 = qi.add_child(qi.root(), Axis::Child, Some(beta));
    qi.graft(b1, Axis::Child, p);
    qi.add_child(b1, Axis::Child, Some(gamma));
    let b2 = qi.add_child(qi.root(), Axis::Child, Some(beta));
    qi.graft(b2, Axis::Child, p_prime);
    qi.set_output(b2);

    // q_R = α[β[p'][γ]] — output at the root.
    let mut qr = Pattern::new(Some(alpha));
    let b = qr.add_child(qr.root(), Axis::Child, Some(beta));
    qr.graft(b, Axis::Child, p_prime);
    qr.add_child(b, Axis::Child, Some(gamma));
    qr.set_output(qr.root());

    let x = Tree::new(gamma);
    (Read::new(qr), Insert::new(qi, x))
}

/// Theorem 6's construction: `(R, D)` such that they node-conflict iff
/// `p ⊄ p'`.
pub fn delete_instance(p: &Pattern, p_prime: &Pattern) -> (Read, Delete) {
    let (alpha, beta, gamma) = fresh_triple(p, p_prime);

    // q_D = α[β[p]]/γ[p'] — output at γ (never the root, so valid).
    let mut qd = Pattern::new(Some(alpha));
    let b = qd.add_child(qd.root(), Axis::Child, Some(beta));
    qd.graft(b, Axis::Child, p);
    let g = qd.add_child(qd.root(), Axis::Child, Some(gamma));
    qd.graft(g, Axis::Child, p_prime);
    qd.set_output(g);

    // q_R = α[*[p']] — output at the root.
    let mut qr = Pattern::new(Some(alpha));
    let star = qr.add_child(qr.root(), Axis::Child, None);
    qr.graft(star, Axis::Child, p_prime);
    qr.set_output(qr.root());

    let d = Delete::new(qd).expect("output is not the root by construction");
    (Read::new(qr), d)
}

/// Builds the Figure 7d witness for the insert reduction from a
/// containment counterexample `t_p` (a tree matching `p` but not `p'`):
///
/// ```text
/// α( β(t_p γ)  β(𝕄_{p'}) )
/// ```
///
/// Useful for demonstrations: when `p ⊄ p'`, this tree witnesses the
/// conflict between [`insert_instance`]'s operations.
pub fn insert_witness_from_counterexample(p: &Pattern, p_prime: &Pattern, t_p: &Tree) -> Tree {
    let (alpha, beta, gamma) = fresh_triple(p, p_prime);
    let mut w = Tree::new(alpha);
    let b1 = w.build_child(w.root(), beta);
    graft_quiet(&mut w, b1, t_p);
    w.build_child(b1, gamma);
    let b2 = w.build_child(w.root(), beta);
    let model = p_prime.model_fresh(&[alpha, beta, gamma]);
    graft_quiet(&mut w, b2, &model);
    w
}

/// Builds the Figure 8c witness for the delete reduction: `α( β(t_p) γ(𝕄_{p'}) )`.
pub fn delete_witness_from_counterexample(p: &Pattern, p_prime: &Pattern, t_p: &Tree) -> Tree {
    let (alpha, beta, gamma) = fresh_triple(p, p_prime);
    let mut w = Tree::new(alpha);
    let b = w.build_child(w.root(), beta);
    graft_quiet(&mut w, b, t_p);
    let g = w.build_child(w.root(), gamma);
    let model = p_prime.model_fresh(&[alpha, beta, gamma]);
    graft_quiet(&mut w, g, &model);
    w
}

fn graft_quiet(t: &mut Tree, parent: cxu_tree::NodeId, sub: &Tree) {
    let root = t.build_child(parent, sub.label(sub.root()));
    let mut stack = vec![(sub.root(), root)];
    while let Some((src, dst)) = stack.pop() {
        for &c in sub.children(src) {
            let copy = t.build_child(dst, sub.label(c));
            stack.push((c, copy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{find_witness, Budget, SearchOutcome};
    use cxu_ops::witness::{witnesses_delete_conflict, witnesses_insert_conflict};
    use cxu_ops::{Semantics, Update};
    use cxu_pattern::containment;
    use cxu_pattern::xpath::parse;

    fn pat(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    /// Pattern pairs with known containment status.
    fn battery() -> Vec<(&'static str, &'static str, bool)> {
        vec![
            ("a/b", "a//b", true),
            ("a//b", "a/b", false),
            ("a/b", "a/*", true),
            ("a/*", "a/b", false),
            ("a[b][c]", "a[b]", true),
            ("a[b]", "a[b][c]", false),
            ("a/b", "a/b", true),
            ("a/b", "x/y", false),
            ("a/*/b", "a//b", true),
            ("a//b", "a/*/b", false),
        ]
    }

    #[test]
    fn insert_reduction_matches_containment() {
        for (p_src, q_src, contained) in battery() {
            let p = pat(p_src);
            let q = pat(q_src);
            assert_eq!(
                containment::contains(&p, &q),
                contained,
                "{p_src} ⊆ {q_src}"
            );
            let (r, i) = insert_instance(&p, &q);
            if !contained {
                // Build the Figure 7d witness from a counterexample and
                // check it witnesses the conflict.
                let t_p = containment::find_counterexample(&p, &q, 4)
                    .expect("small counterexample exists for the battery");
                let w = insert_witness_from_counterexample(&p, &q, &t_p);
                assert!(
                    witnesses_insert_conflict(&r, &i, &w, Semantics::Node),
                    "{p_src} ⊄ {q_src}: constructed witness fails"
                );
            } else {
                // Contained ⇒ no conflict: no small witness may exist.
                let out = find_witness(
                    &r,
                    &Update::Insert(i.clone()),
                    Semantics::Node,
                    Budget {
                        max_nodes: 4,
                        max_trees: 3_000_000,
                    },
                );
                assert!(
                    matches!(out, SearchOutcome::NoConflictWithin(_)),
                    "{p_src} ⊆ {q_src}: unexpected {out:?}"
                );
            }
        }
    }

    #[test]
    fn delete_reduction_matches_containment() {
        for (p_src, q_src, contained) in battery() {
            let p = pat(p_src);
            let q = pat(q_src);
            let (r, d) = delete_instance(&p, &q);
            if !contained {
                let t_p =
                    containment::find_counterexample(&p, &q, 4).expect("counterexample exists");
                let w = delete_witness_from_counterexample(&p, &q, &t_p);
                assert!(
                    witnesses_delete_conflict(&r, &d, &w, Semantics::Node),
                    "{p_src} ⊄ {q_src}: constructed witness fails"
                );
            } else {
                let out = find_witness(
                    &r,
                    &Update::Delete(d.clone()),
                    Semantics::Node,
                    Budget {
                        max_nodes: 4,
                        max_trees: 3_000_000,
                    },
                );
                assert!(
                    matches!(out, SearchOutcome::NoConflictWithin(_)),
                    "{p_src} ⊆ {q_src}: unexpected {out:?}"
                );
            }
        }
    }

    #[test]
    fn reduction_outputs_are_wellformed() {
        let p = pat("a[b]//c");
        let q = pat("a//c");
        let (r, i) = insert_instance(&p, &q);
        assert!(!r.pattern().is_linear());
        assert_eq!(r.pattern().output(), r.pattern().root());
        assert_eq!(i.subtree().live_count(), 1);
        let (r2, d) = delete_instance(&p, &q);
        assert_eq!(r2.pattern().output(), r2.pattern().root());
        assert_ne!(d.pattern().output(), d.pattern().root());
    }

    #[test]
    fn fresh_symbols_disjoint_from_inputs() {
        // Patterns that already use "alpha"/"beta"/"gamma" must not clash.
        let p = pat("alpha/beta");
        let q = pat("gamma");
        let (r, i) = insert_instance(&p, &q);
        // The reduction's root label differs from the input "alpha".
        let root_label = r.pattern().label(r.pattern().root()).unwrap();
        assert_ne!(root_label.as_str(), "alpha");
        let _ = i;
    }
}
