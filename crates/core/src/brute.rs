//! Exact conflict decision for branching reads — the NP side (§5).
//!
//! With branching on both sides, conflict detection is NP-complete
//! (Theorems 3–6). Membership in NP rests on Lemma 11: *if* a conflict
//! exists, a witness tree of size at most `|R|·|U|·(k+1)` over the
//! alphabet `Σ_R ∪ Σ_U ∪ {α}` exists (`k` = `STAR-LENGTH(R)`). This
//! module turns the NP guess into a deterministic bounded search: it
//! enumerates candidate trees up to a size bound (one representative per
//! isomorphism class) and checks each with the Lemma 1 witness verifier.
//!
//! The search is exponential — which is precisely the paper's point, and
//! what experiment E4 measures against the PTIME detectors. Budgets keep
//! it usable: within the full Lemma 11 bound the answer is exact; with a
//! smaller budget a `Conflict` answer is still definite while
//! `NoConflictWithin` is only "no witness up to this size".

use cxu_ops::witness::witnesses_update_conflict;
use cxu_ops::{Read, Semantics, Update};
use cxu_runtime::{failpoints, Deadline};
use cxu_tree::enumerate::{count_trees, enumerate_trees};
use cxu_tree::{Symbol, Tree};

/// Bounds for the exhaustive search.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum witness size (nodes) to try.
    pub max_nodes: usize,
    /// Abort if more than this many candidate trees would be enumerated.
    pub max_trees: u128,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_nodes: 6,
            max_trees: 2_000_000,
        }
    }
}

/// Outcome of a bounded witness search.
#[derive(Debug, Clone)]
pub enum SearchOutcome {
    /// A witness was found — a conflict definitely exists.
    Conflict(Tree),
    /// No tree of at most this many nodes (over the canonical alphabet)
    /// witnesses a conflict. Exact "no conflict" iff the bound ≥
    /// [`lemma11_bound`].
    NoConflictWithin(usize),
    /// The candidate count exceeded `max_trees`; nothing was decided.
    BudgetExceeded(u128),
    /// The deadline expired (or the cancel token fired) mid-search;
    /// nothing was decided.
    DeadlineExceeded,
}

impl SearchOutcome {
    /// `Some(true)` / `Some(false)` when decided *relative to the bound*.
    pub fn decided(&self) -> Option<bool> {
        match self {
            SearchOutcome::Conflict(_) => Some(true),
            SearchOutcome::NoConflictWithin(_) => Some(false),
            SearchOutcome::BudgetExceeded(_) | SearchOutcome::DeadlineExceeded => None,
        }
    }
}

/// Lemma 11's witness-size bound `|R|·|U|·(k+1)`, `k = STAR-LENGTH(R)`.
///
/// For deletions the same bound applies (Theorem 5's sketch marks at most
/// `|R| + |D|` nodes and reparents identically; `|R|·|D|·(k+1)` is the
/// uniform safe bound).
pub fn lemma11_bound(r: &Read, u: &Update) -> usize {
    let k = r.pattern().star_length();
    r.pattern().len() * u.pattern().len() * (k + 1)
}

/// The canonical witness alphabet `Σ_R ∪ Σ_U (∪ Σ_X) ∪ {α}`.
pub fn witness_alphabet(r: &Read, u: &Update) -> Vec<Symbol> {
    let mut alpha = r.pattern().alphabet();
    alpha.extend(u.pattern().alphabet());
    if let Update::Insert(i) = u {
        alpha.extend(i.subtree().alphabet());
    }
    alpha.sort_unstable();
    alpha.dedup();
    alpha.push(Symbol::fresh("alpha", &alpha));
    alpha
}

/// Searches for a conflict witness within the budget.
pub fn find_witness(r: &Read, u: &Update, sem: Semantics, budget: Budget) -> SearchOutcome {
    find_witness_deadline(r, u, sem, budget, &Deadline::never())
}

/// [`find_witness`] with a cooperative deadline, polled once per
/// candidate: overrun past the cutoff is bounded by one witness check.
pub fn find_witness_deadline(
    r: &Read,
    u: &Update,
    sem: Semantics,
    budget: Budget,
    deadline: &Deadline,
) -> SearchOutcome {
    let t0 = std::time::Instant::now();
    let out = find_witness_deadline_inner(r, u, sem, budget, deadline);
    cxu_obs::counter!("core.brute.searches").inc();
    cxu_obs::histogram!("core.brute.ns").record_since(t0);
    let outcome = match &out {
        SearchOutcome::Conflict(_) => {
            cxu_obs::counter!("core.brute.conflict").inc();
            "conflict"
        }
        SearchOutcome::NoConflictWithin(_) => {
            cxu_obs::counter!("core.brute.no_conflict").inc();
            "no-conflict"
        }
        SearchOutcome::BudgetExceeded(_) => {
            cxu_obs::counter!("core.brute.budget").inc();
            "budget"
        }
        SearchOutcome::DeadlineExceeded => {
            cxu_obs::counter!("core.brute.deadline").inc();
            "deadline"
        }
    };
    if cxu_obs::trace::enabled() {
        cxu_obs::trace::event(
            "core.brute.search",
            &[
                ("outcome", outcome.into()),
                ("max_nodes", budget.max_nodes.into()),
            ],
        );
    }
    out
}

fn find_witness_deadline_inner(
    r: &Read,
    u: &Update,
    sem: Semantics,
    budget: Budget,
    deadline: &Deadline,
) -> SearchOutcome {
    let alpha = witness_alphabet(r, u);
    let candidates = count_trees(alpha.len(), budget.max_nodes);
    if candidates > budget.max_trees || failpoints::fire("brute::search") {
        return SearchOutcome::BudgetExceeded(candidates);
    }
    for t in enumerate_trees(&alpha, budget.max_nodes) {
        if deadline.poll() {
            return SearchOutcome::DeadlineExceeded;
        }
        if witnesses_update_conflict(r, u, &t, sem) {
            return SearchOutcome::Conflict(t);
        }
    }
    SearchOutcome::NoConflictWithin(budget.max_nodes)
}

/// Exact decision: searches up to the full Lemma 11 bound. Returns `None`
/// if the candidate count exceeds `max_trees` (the instance is too large
/// to decide exhaustively — as §5 predicts for all but tiny inputs).
pub fn decide(r: &Read, u: &Update, sem: Semantics, max_trees: u128) -> Option<bool> {
    decide_outcome(r, u, sem, max_trees, &Deadline::never()).decided()
}

/// [`decide`] exposing the full outcome (so callers can distinguish a
/// blown budget from an expired deadline), under a deadline. At the
/// Lemma 11 bound, `NoConflictWithin` is an exact "no conflict".
pub fn decide_outcome(
    r: &Read,
    u: &Update,
    sem: Semantics,
    max_trees: u128,
    deadline: &Deadline,
) -> SearchOutcome {
    let budget = Budget {
        max_nodes: lemma11_bound(r, u),
        max_trees,
    };
    find_witness_deadline(r, u, sem, budget, deadline)
}

/// [`find_witness`] fanned out over `threads` OS threads with early exit.
///
/// Candidate checking is embarrassingly parallel (each witness check is
/// independent); enumeration itself stays sequential, which is fine —
/// checking dominates. Worth using from roughly a million candidates up;
/// below that the thread setup dwarfs the work.
pub fn find_witness_parallel(
    r: &Read,
    u: &Update,
    sem: Semantics,
    budget: Budget,
    threads: usize,
) -> SearchOutcome {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    let threads = threads.max(1);
    let alpha = witness_alphabet(r, u);
    let candidates = count_trees(alpha.len(), budget.max_nodes);
    if candidates > budget.max_trees {
        return SearchOutcome::BudgetExceeded(candidates);
    }
    let all = enumerate_trees(&alpha, budget.max_nodes);
    if all.is_empty() {
        return SearchOutcome::NoConflictWithin(budget.max_nodes);
    }
    let found: Mutex<Option<Tree>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let chunk = all.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for part in all.chunks(chunk) {
            let found = &found;
            let stop = &stop;
            scope.spawn(move || {
                for t in part {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if witnesses_update_conflict(r, u, t, sem) {
                        stop.store(true, Ordering::Relaxed);
                        let mut slot = found.lock().expect("witness slot");
                        if slot.is_none() {
                            *slot = Some(t.clone());
                        }
                        return;
                    }
                }
            });
        }
    });
    match found.into_inner().expect("witness slot") {
        Some(w) => SearchOutcome::Conflict(w),
        None => SearchOutcome::NoConflictWithin(budget.max_nodes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_ops::{Delete, Insert};
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn read(p: &str) -> Read {
        Read::new(parse(p).unwrap())
    }

    fn ins(p: &str, x: &str) -> Update {
        Update::Insert(Insert::new(parse(p).unwrap(), text::parse(x).unwrap()))
    }

    fn del(p: &str) -> Update {
        Update::Delete(Delete::new(parse(p).unwrap()).unwrap())
    }

    #[test]
    fn finds_section1_witness() {
        let r = read("x//C");
        let u = ins("x/B", "C");
        match find_witness(&r, &u, Semantics::Node, Budget::default()) {
            SearchOutcome::Conflict(w) => {
                assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
                assert!(w.live_count() <= 2, "minimal witness is x(B)");
            }
            other => panic!("expected a conflict, got {other:?}"),
        }
    }

    #[test]
    fn no_witness_for_independent_pair() {
        let r = read("x//D");
        let u = ins("x/B", "C");
        match find_witness(&r, &u, Semantics::Node, Budget::default()) {
            SearchOutcome::NoConflictWithin(n) => assert_eq!(n, 6),
            other => panic!("expected no conflict, got {other:?}"),
        }
    }

    #[test]
    fn branching_read_witness() {
        // NP-side instance: branching read a[b][c], insert adds the c.
        let r = read("a[b][c]");
        // A read with output at the root still reports new matches when
        // the root starts matching: R(t) = {} vs {root}.
        let u = ins("a[b]", "c");
        match find_witness(&r, &u, Semantics::Node, Budget::default()) {
            SearchOutcome::Conflict(w) => {
                assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn branching_no_conflict() {
        // Insert adds q under b children; read wants a[b][c] — the q
        // never creates nor destroys a[b][c] matches at the node level.
        let r = read("a[b][c]");
        let u = ins("a/b", "q");
        assert!(matches!(
            find_witness(&r, &u, Semantics::Node, Budget::default()),
            SearchOutcome::NoConflictWithin(_)
        ));
    }

    #[test]
    fn delete_witness_found() {
        let r = read("a//v");
        let u = del("a/b");
        match find_witness(&r, &u, Semantics::Node, Budget::default()) {
            SearchOutcome::Conflict(w) => {
                assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
                // Minimal witness: a(b(v)).
                assert!(w.live_count() <= 3);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn budget_exceeded_reported() {
        let r = read("a//b//c");
        let u = ins("a//x[y][z]", "w");
        let out = find_witness(
            &r,
            &u,
            Semantics::Node,
            Budget {
                max_nodes: 12,
                max_trees: 10,
            },
        );
        assert!(matches!(out, SearchOutcome::BudgetExceeded(_)));
        assert_eq!(out.decided(), None);
    }

    #[test]
    fn deadline_exceeded_reported() {
        // An already-expired deadline trips on the first candidate poll,
        // before any witness check runs.
        let r = read("a[b][c]");
        let u = ins("a[b]", "c");
        let dl = Deadline::after(std::time::Duration::ZERO);
        let out = find_witness_deadline(&r, &u, Semantics::Node, Budget::default(), &dl);
        assert!(matches!(out, SearchOutcome::DeadlineExceeded));
        assert_eq!(out.decided(), None);
        // An unbounded deadline changes nothing.
        let out2 = find_witness_deadline(
            &r,
            &u,
            Semantics::Node,
            Budget::default(),
            &Deadline::never(),
        );
        assert!(matches!(out2, SearchOutcome::Conflict(_)));
    }

    #[test]
    fn decide_outcome_distinguishes_budget_from_deadline() {
        let r = read("a[b]//c//d");
        let u = ins("a//x[y][z]", "w");
        // Starved tree budget: BudgetExceeded, not DeadlineExceeded.
        let out = decide_outcome(&r, &u, Semantics::Node, 10, &Deadline::never());
        assert!(matches!(out, SearchOutcome::BudgetExceeded(_)));
        // Room to search but no time: DeadlineExceeded.
        let small = read("a[b][c]");
        let ins_small = ins("a[b]", "c");
        let dl = Deadline::after(std::time::Duration::ZERO);
        let out2 = decide_outcome(&small, &ins_small, Semantics::Node, 2_000_000, &dl);
        assert!(matches!(out2, SearchOutcome::DeadlineExceeded));
    }

    #[test]
    fn lemma11_bound_shape() {
        let r = read("a/*/*/b"); // |R| = 4, star-length 2
        let u = ins("a/q", "w"); // |I| = 2
        assert_eq!(lemma11_bound(&r, &u), 4 * 2 * 3);
    }

    #[test]
    fn alphabet_includes_fresh() {
        let r = read("a/b");
        let u = ins("a/c", "d(e)");
        let alpha = witness_alphabet(&r, &u);
        let names: Vec<&str> = alpha.iter().map(|s| s.as_str()).collect();
        for want in ["a", "b", "c", "d", "e"] {
            assert!(names.contains(&want));
        }
        assert_eq!(alpha.len(), 6, "five named + one fresh");
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let cases: Vec<(&str, Update)> = vec![
            ("x//C", ins("x/B", "C")),
            ("x//D", ins("x/B", "C")),
            ("a[b][c]", ins("a[b]", "c")),
            ("a[b][c]", ins("a/b", "q")),
            ("a//v", del("a/b")),
        ];
        for (r_src, u) in cases {
            let r = read(r_src);
            for threads in [1usize, 4] {
                let seq = find_witness(&r, &u, Semantics::Node, Budget::default());
                let par =
                    find_witness_parallel(&r, &u, Semantics::Node, Budget::default(), threads);
                assert_eq!(
                    seq.decided(),
                    par.decided(),
                    "{r_src} vs {u:?} with {threads} threads"
                );
                if let SearchOutcome::Conflict(w) = par {
                    assert!(witnesses_update_conflict(&r, &u, &w, Semantics::Node));
                }
            }
        }
    }

    #[test]
    fn parallel_budget_exceeded() {
        let r = read("a//b//c");
        let u = ins("a//x[y][z]", "w");
        let out = find_witness_parallel(
            &r,
            &u,
            Semantics::Node,
            Budget {
                max_nodes: 12,
                max_trees: 10,
            },
            4,
        );
        assert!(matches!(out, SearchOutcome::BudgetExceeded(_)));
    }

    #[test]
    fn agrees_with_ptime_on_linear_instances() {
        // The exhaustive search and the PTIME detector must agree on
        // small linear instances, for every semantics.
        use crate::detect::read_update_conflict;
        let cases: Vec<(&str, Update)> = vec![
            ("x//C", ins("x/B", "C")),
            ("x//D", ins("x/B", "C")),
            ("a/b", ins("a/b", "x")),
            ("a/b/c", ins("a/b", "c")),
            ("a/b/c", ins("a/b", "q")),
            ("a/b", del("a/b/c")),
            ("a/b//v", del("a/b/u")),
            ("a/b", del("a/q")),
            ("a/*", ins("a/q", "w")),
        ];
        // Every conflicting case in the battery has a witness of ≤ 4
        // nodes; the non-conflicting ones are verified up to that size.
        let budget = Budget {
            max_nodes: 4,
            max_trees: 2_000_000,
        };
        for (r_src, u) in cases {
            let r = read(r_src);
            for sem in Semantics::ALL {
                let fast = read_update_conflict(&r, &u, sem).unwrap();
                let slow = find_witness(&r, &u, sem, budget);
                match slow {
                    SearchOutcome::Conflict(ref w) => assert!(
                        fast,
                        "{r_src} vs {u:?} under {sem:?}: brute found witness {w:?}, detector says none"
                    ),
                    SearchOutcome::NoConflictWithin(_) => {
                        // The detector may still say "conflict" if every
                        // witness needs > 6 nodes; none of these cases do.
                        assert!(
                            !fast,
                            "{r_src} vs {u:?} under {sem:?}: detector says conflict, none ≤ 4 nodes"
                        );
                    }
                    SearchOutcome::BudgetExceeded(_) => panic!("budget too small"),
                    SearchOutcome::DeadlineExceeded => panic!("no deadline was set"),
                }
            }
        }
    }
}
