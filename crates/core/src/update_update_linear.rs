//! Static commutativity analysis for pairs of **linear** updates —
//! completing §6's "Complex Updates" sketch for the tractable fragment.
//!
//! The paper defines update-update conflicts via commutation
//! (`o₁(o₂(t)) ≅ o₂(o₁(t))` under value semantics) and conjectures
//! NP-hardness for `P^{//,[],*}`. For **linear** selection patterns the
//! problem reduces to the §4 read-update machinery:
//!
//! Treat each update's selection pattern as a read. If neither update can
//! change the other's match set — no *cross conflict* `READ_{p₁} vs u₂`
//! nor `READ_{p₂} vs u₁` under node semantics — then on every tree both
//! orders select exactly the same points (node ids are stable across the
//! other update), perform the same grafts/removals there, and the results
//! are isomorphic: **the pair commutes on all trees**.
//!
//! Conversely, a cross conflict yields a candidate witness via
//! [`crate::construct`]; we *verify* non-commutation on it with
//! [`cxu_ops`]-level execution. Verification can fail in genuine
//! absorption cases (the diverging subtree is isomorphic to a sibling —
//! the same phenomenon that separates node from value semantics in
//! Figure 3), so a small decorated-witness search and finally bounded
//! enumeration back it up; if everything comes back empty the answer is
//! [`Commutativity::Unknown`]. The result is sound in both decided
//! directions.
//!
//! A notable special case falls out of the same argument:
//! **two linear deletions always commute** — a deletion can only shrink
//! the other's match set by deleting the match itself (monotonicity of
//! the fragment plus linearity: every lost point lies inside a deleted
//! region, so the final survivor set is identical either way). See
//! [`linear_deletes_always_commute`] and its property test.

use crate::construct;
use crate::update_update::{commute_on, find_noncommuting_witness_deadline, Budget, Outcome};
use cxu_automata::compiled::Chain;
use cxu_ops::{Read, Semantics, Update};
use cxu_runtime::Deadline;
use cxu_tree::{Symbol, Tree};

/// Verdict of the static linear commutativity analysis.
#[derive(Debug, Clone)]
pub enum Commutativity {
    /// The two updates commute (value semantics) on **every** tree.
    Commute,
    /// A concrete tree on which the two orders produce non-isomorphic
    /// results (verified by executing both orders).
    Conflict(Tree),
    /// A cross conflict exists but no non-commutation witness was
    /// verified within the search budget; commutation is *not*
    /// guaranteed.
    Unknown,
    /// The deadline expired (or the cancel token fired) before the
    /// analysis finished; commutation is *not* guaranteed.
    DeadlineExceeded,
}

impl Commutativity {
    /// `Some(true)` = commutes everywhere, `Some(false)` = verified
    /// conflict, `None` = undecided.
    pub fn decided(&self) -> Option<bool> {
        match self {
            Commutativity::Commute => Some(true),
            Commutativity::Conflict(_) => Some(false),
            Commutativity::Unknown | Commutativity::DeadlineExceeded => None,
        }
    }
}

/// Both updates' selection patterns must be linear; otherwise `None`
/// (the general problem is conjectured NP-hard — use
/// [`crate::update_update::find_noncommuting_witness`]).
pub fn commutativity(u1: &Update, u2: &Update) -> Option<Commutativity> {
    commutativity_with_budget(u1, u2, Budget::default())
}

/// [`commutativity`] with an explicit budget for the last-resort bounded
/// enumeration. The PTIME cross-conflict analysis and the constructed
/// witnesses are unaffected; only the fallback search is bounded, so a
/// small budget trades `Conflict` answers on exotic pairs for fast
/// `Unknown`s — callers needing throughput (batch scheduling) pick a
/// small budget and treat `Unknown` conservatively.
pub fn commutativity_with_budget(
    u1: &Update,
    u2: &Update,
    budget: Budget,
) -> Option<Commutativity> {
    commutativity_deadline(u1, u2, budget, &Deadline::never())
}

/// [`commutativity_with_budget`] with a cooperative deadline. The PTIME
/// cross-conflict checks and witness verification run to completion
/// (they are polynomial and small); only the last-resort bounded
/// enumeration polls, returning [`Commutativity::DeadlineExceeded`]
/// when the cutoff passes.
pub fn commutativity_deadline(
    u1: &Update,
    u2: &Update,
    budget: Budget,
    deadline: &Deadline,
) -> Option<Commutativity> {
    commutativity_instrumented(u1, u2, None, budget, deadline)
}

/// [`commutativity_deadline`] over pre-compiled chains: `c1`/`c2` are the
/// compiled `ℛ(p)` chains of the two (linear) selection patterns. For a
/// linear update the pattern *is* its own spine, so each chain serves
/// both as the read chain and as the update-spine chain of the two cross
/// checks — no per-call lowering. Instrumentation is identical to the
/// per-call entry point (`core.uu_linear.*`).
pub fn commutativity_deadline_compiled(
    u1: &Update,
    u2: &Update,
    c1: &Chain,
    c2: &Chain,
    budget: Budget,
    deadline: &Deadline,
) -> Option<Commutativity> {
    commutativity_instrumented(u1, u2, Some((c1, c2)), budget, deadline)
}

fn commutativity_instrumented(
    u1: &Update,
    u2: &Update,
    chains: Option<(&Chain, &Chain)>,
    budget: Budget,
    deadline: &Deadline,
) -> Option<Commutativity> {
    let t0 = std::time::Instant::now();
    let out = commutativity_deadline_inner(u1, u2, chains, budget, deadline);
    cxu_obs::counter!("core.uu_linear.calls").inc();
    cxu_obs::histogram!("core.uu_linear.ns").record_since(t0);
    let outcome = match &out {
        None => {
            cxu_obs::counter!("core.uu_linear.nonlinear").inc();
            "nonlinear"
        }
        Some(Commutativity::Commute) => {
            cxu_obs::counter!("core.uu_linear.commute").inc();
            "commute"
        }
        Some(Commutativity::Conflict(_)) => {
            cxu_obs::counter!("core.uu_linear.conflict").inc();
            "conflict"
        }
        Some(Commutativity::Unknown) => {
            cxu_obs::counter!("core.uu_linear.unknown").inc();
            "unknown"
        }
        Some(Commutativity::DeadlineExceeded) => {
            cxu_obs::counter!("core.uu_linear.deadline").inc();
            "deadline"
        }
    };
    if cxu_obs::trace::enabled() {
        cxu_obs::trace::event("core.uu_linear", &[("outcome", outcome.into())]);
    }
    out
}

fn commutativity_deadline_inner(
    u1: &Update,
    u2: &Update,
    chains: Option<(&Chain, &Chain)>,
    budget: Budget,
    deadline: &Deadline,
) -> Option<Commutativity> {
    if !u1.pattern().is_linear() || !u2.pattern().is_linear() {
        return None;
    }
    let r1 = Read::new(u1.pattern().clone());
    let r2 = Read::new(u2.pattern().clone());

    let (cross_12, cross_21) = match chains {
        Some((c1, c2)) => (
            crate::detect::read_update_conflict_compiled(&r1, c1, u2, c2, Semantics::Node)
                .expect("linearity checked"),
            crate::detect::read_update_conflict_compiled(&r2, c2, u1, c1, Semantics::Node)
                .expect("linearity checked"),
        ),
        None => (
            crate::detect::read_update_conflict(&r1, u2, Semantics::Node)
                .expect("linearity checked"),
            crate::detect::read_update_conflict(&r2, u1, Semantics::Node)
                .expect("linearity checked"),
        ),
    };

    if !cross_12 && !cross_21 {
        // Point-stability argument: both orders select identical points
        // and mutate disjoint fresh material — isomorphic outcomes.
        return Some(Commutativity::Commute);
    }

    // Try the constructive witnesses of the firing cross conflicts.
    let mut candidates: Vec<Tree> = Vec::new();
    if cross_12 {
        if let Some(w) = construct::construct_witness(&r1, u2, Semantics::Node) {
            candidates.push(w);
        }
    }
    if cross_21 {
        if let Some(w) = construct::construct_witness(&r2, u1, Semantics::Node) {
            candidates.push(w);
        }
    }
    // Absorption-breaking decoration: hang a fresh-labeled child off
    // every node, making sibling subtrees pairwise non-isomorphic
    // "enough" (the α-trick of Lemma 2's proof).
    let decorated: Vec<Tree> = candidates
        .iter()
        .map(|w| {
            let mut avoid = w.alphabet();
            avoid.extend(u1.pattern().alphabet());
            avoid.extend(u2.pattern().alphabet());
            let mut d = w.clone();
            let nodes: Vec<_> = d.nodes().collect();
            for (idx, n) in nodes.into_iter().enumerate() {
                let fresh = Symbol::fresh(&format!("dec{idx}"), &avoid);
                d.build_child(n, fresh);
            }
            d.clear_mods();
            d
        })
        .collect();
    for w in candidates.into_iter().chain(decorated) {
        if !commute_on(u1, u2, &w) {
            return Some(Commutativity::Conflict(w));
        }
    }

    // Last resort: bounded enumeration.
    match find_noncommuting_witness_deadline(u1, u2, budget, deadline) {
        Outcome::Conflict(w) => Some(Commutativity::Conflict(w)),
        Outcome::DeadlineExceeded => Some(Commutativity::DeadlineExceeded),
        _ => Some(Commutativity::Unknown),
    }
}

/// The linear delete-delete special case: always commutes. Exposed for
/// documentation and testing; `commutativity` reaches the same verdict
/// through the general path whenever the cross checks are silent, and
/// through witness verification otherwise.
pub fn linear_deletes_always_commute(d1: &Update, d2: &Update, probe: &Tree) -> bool {
    debug_assert!(matches!(d1, Update::Delete(_)) && matches!(d2, Update::Delete(_)));
    debug_assert!(d1.pattern().is_linear() && d2.pattern().is_linear());
    commute_on(d1, d2, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update_update::find_noncommuting_witness;
    use cxu_ops::{Delete, Insert};
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn ins(p: &str, x: &str) -> Update {
        Update::Insert(Insert::new(parse(p).unwrap(), text::parse(x).unwrap()))
    }

    fn del(p: &str) -> Update {
        Update::Delete(Delete::new(parse(p).unwrap()).unwrap())
    }

    #[test]
    fn disjoint_inserts_commute() {
        let u1 = ins("a/b", "x");
        let u2 = ins("a/c", "y");
        assert!(matches!(
            commutativity(&u1, &u2),
            Some(Commutativity::Commute)
        ));
    }

    #[test]
    fn identical_inserts_commute() {
        // p selects the same points either way; the inserted copies are
        // isomorphic. Cross conflict? READ_{a/b} vs INSERT_{a/b, x}: the
        // insert adds an x below b, never a new a/b match — unless x's
        // root is labeled b!
        let u = ins("a/b", "x");
        assert!(matches!(
            commutativity(&u, &u),
            Some(Commutativity::Commute)
        ));
    }

    #[test]
    fn self_feeding_insert_detected() {
        // INSERT_{a//b, b}: inserting b's creates new a//b matches — the
        // cross check (with itself) fires; identical ops still commute by
        // symmetry, so the verifier must NOT confirm a conflict, leaving
        // Unknown (the static analysis cannot prove self-commutation of
        // self-feeding inserts).
        let u = ins("a//b", "b");
        match commutativity(&u, &u).unwrap() {
            Commutativity::Commute => panic!("cross check should fire"),
            Commutativity::Conflict(w) => {
                panic!("identical updates cannot conflict, got witness {w:?}")
            }
            Commutativity::Unknown => {}
            Commutativity::DeadlineExceeded => panic!("no deadline was set"),
        }
    }

    #[test]
    fn deadline_reported_from_fallback_search() {
        // A pair whose cross checks fire but whose constructed witnesses
        // don't refute commutation reaches the bounded enumeration; an
        // expired deadline surfaces from there.
        let u1 = del("a/b");
        let u2 = ins("a/b/c", "x");
        let dl = Deadline::after(std::time::Duration::ZERO);
        // The pair commutes everywhere (see `delete_of_insert_point`),
        // so no constructed witness can refute it; with an expired
        // deadline the fallback search must report the timeout.
        assert!(matches!(
            commutativity_deadline(&u1, &u2, Budget::default(), &dl).unwrap(),
            Commutativity::DeadlineExceeded
        ));
        // A commuting pair decides exactly even with no time at all:
        // the PTIME path never degrades.
        let c1 = ins("a/b", "x");
        let c2 = ins("a/c", "y");
        assert!(matches!(
            commutativity_deadline(&c1, &c2, Budget::default(), &dl).unwrap(),
            Commutativity::Commute
        ));
    }

    #[test]
    fn enabling_insert_conflict() {
        let u1 = ins("a/b", "c");
        let u2 = ins("a/b/c", "q");
        match commutativity(&u1, &u2).unwrap() {
            Commutativity::Conflict(w) => {
                assert!(!commute_on(&u1, &u2, &w));
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn insert_then_delete_of_inserted() {
        let u1 = ins("a/b", "x");
        let u2 = del("a/b/x");
        match commutativity(&u1, &u2).unwrap() {
            Commutativity::Conflict(w) => assert!(!commute_on(&u1, &u2, &w)),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn delete_of_insert_point() {
        // D removes a/b; I inserts under a/b/c — D kills I's points, but
        // either order ends with the whole b subtree gone: genuinely
        // commutes, though the cross check fires. Must not report a
        // false Conflict.
        let u1 = del("a/b");
        let u2 = ins("a/b/c", "x");
        if let Commutativity::Conflict(w) = commutativity(&u1, &u2).unwrap() {
            // Commute would be wrong to *prove* here; Unknown is honest.
            assert!(
                !commute_on(&u1, &u2, &w),
                "reported witness must actually refute commutation"
            );
        }
    }

    #[test]
    fn linear_deletes_commute_battery() {
        let pairs = [
            ("a/b", "a/b/c"),
            ("a//x", "a/b"),
            ("a/b", "a/c"),
            ("a//m", "a//m"),
            ("*/q", "a//q"),
        ];
        for (p1, p2) in pairs {
            let u1 = del(p1);
            let u2 = del(p2);
            // Static analysis never reports a verified delete-delete
            // conflict…
            if let Commutativity::Conflict(w) = commutativity(&u1, &u2).unwrap() {
                panic!("linear deletes must commute; got witness {w:?} for {p1},{p2}")
            }
            // …and bounded search agrees.
            assert!(matches!(
                find_noncommuting_witness(&u1, &u2, Budget::default()),
                Outcome::NoConflictWithin(_)
            ));
        }
    }

    #[test]
    fn branching_patterns_refused() {
        let u1 = ins("a[q]/b", "x");
        let u2 = ins("a/c", "y");
        assert!(commutativity(&u1, &u2).is_none());
    }

    #[test]
    fn commute_verdict_spot_checked_by_execution() {
        // Every Commute verdict holds on concrete probes.
        let pairs = [
            (ins("a/b", "x"), ins("a/c", "y")),
            (ins("a/b", "x"), del("a/c")),
            (del("a/b/c"), ins("q//r", "s")),
        ];
        let probes = ["a(b c)", "a(b(c) c(b))", "a(b(c(d)) c(x) q(r))"];
        for (u1, u2) in pairs {
            if let Some(Commutativity::Commute) = commutativity(&u1, &u2) {
                for probe in probes {
                    let t = text::parse(probe).unwrap();
                    assert!(commute_on(&u1, &u2, &t), "{u1:?} vs {u2:?} on {probe}");
                }
            }
        }
    }
}
