//! Matching of linear patterns (Definition 7) — the engine of §4.
//!
//! Linear patterns `l` and `l'` **match weakly** if some tree embeds both
//! with `ℰ₁(𝒪(l))` equal to or a descendant of `ℰ₂(𝒪(l'))`; they
//! **match strongly** if the two output images can coincide. The paper
//! reduces this to regular-language intersection over the alphabet
//! `Σ_{l,l'}` (plus, implicitly, one fresh letter):
//!
//! * strong:  `L(ℛ(l)) ∩ L(ℛ(l'))       ≠ ∅`
//! * weak:    `L(ℛ(l)) ∩ L(ℛ(l')·(.)*)  ≠ ∅`
//!
//! Two implementations are provided and cross-validated:
//!
//! 1. [`match_strong`] / [`match_weak`] — the paper's NFA-product
//!    construction (via `cxu-automata`);
//! 2. [`PrefixMatcher`] — the "in practice" dynamic program the paper's
//!    remark suggests: **one** product-reachability pass that answers the
//!    strong/weak question for *every* prefix of the read simultaneously,
//!    which is exactly what the per-edge conditions of Lemmas 3 and 6
//!    consume.

use cxu_automata::compiled::Chain;
use cxu_automata::{Label, Nfa, Step};
use cxu_pattern::{Axis, PNodeId, Pattern};
use cxu_tree::Symbol;

/// Converts a linear pattern into the step sequence of `ℛ(l)`.
///
/// Panics if the pattern is not linear — callers reduce update patterns to
/// their spines first (Lemmas 4 and 8).
pub fn to_steps(l: &Pattern) -> Vec<Step<Symbol>> {
    assert!(l.is_linear(), "to_steps requires a linear pattern");
    let spine = l
        .path(l.root(), l.output())
        .expect("linear pattern output is on the root path");
    spine
        .iter()
        .map(|&n| Step {
            gap: l.axis(n) == Some(Axis::Descendant),
            label: match l.label(n) {
                Some(s) => Label::Sym(s),
                None => Label::Any,
            },
        })
        .collect()
}

/// The NFA of `ℛ(l)` for a linear pattern.
pub fn nfa(l: &Pattern) -> Nfa<Symbol> {
    Nfa::from_steps(&to_steps(l))
}

/// Compiles a linear pattern's `ℛ(l)` chain once, into the bitset form
/// (`cxu_automata::compiled`) the hot paths simulate with `u64` words.
/// Symbols are interned by their global [`Symbol::index`].
pub fn compile(l: &Pattern) -> Chain {
    Chain::from_steps(&to_steps(l), |s: Symbol| s.index())
}

/// Compiles the spine of an arbitrary (possibly branching) update
/// pattern — the linear reduction of Lemmas 4 and 8.
pub fn compile_spine(l: &Pattern) -> Chain {
    compile(&l.spine())
}

/// Do `l` and `l'` match **strongly**? (Output images can coincide.)
/// Both patterns must be linear.
pub fn match_strong(l: &Pattern, l_prime: &Pattern) -> bool {
    compile(l).intersects(&compile(l_prime))
}

/// Do `l` and `l'` match **weakly**? (`𝒪(l)`'s image can sit at or below
/// `𝒪(l')`'s.) Both patterns must be linear. Note the asymmetry: `l` is
/// the side allowed to reach deeper.
pub fn match_weak(l: &Pattern, l_prime: &Pattern) -> bool {
    compile(l).intersects_weak(&compile(l_prime))
}

/// Answers strong/weak matching of a fixed linear `update` spine against
/// **every prefix** of a linear `read` in one product-reachability pass.
///
/// `strong(j)` ⇔ the update and the length-`j` read prefix match
/// strongly; `weak(j)` ⇔ weakly (`1 ≤ j ≤ read length`). This is the
/// all-edges-at-once dynamic program of the paper's remark after
/// Theorem 1: Lemma 3 and Lemma 6 ask these questions for the prefix
/// ending at each edge of the read.
pub struct PrefixMatcher {
    strong: Vec<bool>,
    weak: Vec<bool>,
}

impl PrefixMatcher {
    /// Compiles both patterns and runs the product reachability. Both
    /// patterns must be linear. Hot paths that already hold compiled
    /// chains (the scheduler's interner cache) use
    /// [`PrefixMatcher::from_chains`] instead and skip the compilation.
    pub fn new(update: &Pattern, read: &Pattern) -> PrefixMatcher {
        PrefixMatcher::from_chains(&compile(update), &compile(read))
    }

    /// Runs the product reachability over pre-compiled chains — one
    /// bitset forward pass, no per-call lowering and no move-alphabet
    /// materialization (see `cxu_automata::compiled` for why `Σ_{l,l'}`
    /// plus the fresh letter collapses into a per-step compatibility
    /// test).
    ///
    /// Weak(j): the length-j read prefix is fully consumed at some
    /// moment of a word the update can still complete — any reachable
    /// product pair (i, j) suffices, since the update's remaining steps
    /// are always satisfiable by fresh letters falling *below* the
    /// prefix's endpoint (the `ℛ(l')·(.)*` extension).
    ///
    /// Strong(j): both sides consume their final symbol on the *same,
    /// last* letter — reaching (m, j) is not enough, because the read
    /// may have consumed its j-th symbol early and idled on the gap of
    /// step j+1, a gap the length-j prefix does not own. The compiled
    /// pass therefore checks (m−1, j−1) reachability plus final-step
    /// compatibility.
    pub fn from_chains(update: &Chain, read: &Chain) -> PrefixMatcher {
        let pm = update.prefix_match(read);
        PrefixMatcher {
            strong: pm.strong,
            weak: pm.weak,
        }
    }

    /// Strong match of the update against the read prefix of `j` nodes.
    pub fn strong(&self, j: usize) -> bool {
        self.strong[j]
    }

    /// Weak match of the update against the read prefix of `j` nodes.
    pub fn weak(&self, j: usize) -> bool {
        self.weak[j]
    }

    /// The read length `k` (prefixes run `1..=k`).
    pub fn read_len(&self) -> usize {
        self.strong.len() - 1
    }
}

/// Which flavor of Definition 7 matching a word should witness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchKind {
    /// Output images coincide: the word is accepted by both `ℛ(l)` and
    /// `ℛ(l')` exactly.
    Strong,
    /// `𝒪(l)`'s image sits at or below `𝒪(l')`'s: the word is accepted
    /// by `ℛ(l)` and by `ℛ(l')·(.)*`.
    Weak,
}

/// Produces a concrete label word witnessing that `l` and `l'` match
/// (Definition 7), or `None` if they do not. The word spells the labels
/// on the path from the root of a witness tree down to `𝒪(l)`'s image;
/// for [`MatchKind::Weak`], `𝒪(l')`'s image is the letter at the
/// returned `anchor` index (0-based), for strong matches it is the last
/// letter.
///
/// This is the constructive content of the §4 algorithms: the (If)
/// directions of Lemmas 3 and 6 build witness trees around exactly such
/// words. Wildcard positions materialize as a symbol fresh to both
/// patterns.
pub fn match_word(l: &Pattern, l_prime: &Pattern, kind: MatchKind) -> Option<(Vec<Symbol>, usize)> {
    let u_steps = to_steps(l);
    let r_steps = to_steps(l_prime);
    let m = u_steps.len();
    let k = r_steps.len();

    let mut avoid: Vec<Symbol> = l.alphabet();
    avoid.extend(l_prime.alphabet());
    let fresh = Symbol::fresh("w", &avoid);

    let mut moves: Vec<Symbol> = u_steps
        .iter()
        .chain(r_steps.iter())
        .filter_map(|s| match s.label {
            Label::Sym(x) => Some(x),
            Label::Any => None,
        })
        .collect();
    moves.sort_unstable();
    moves.dedup();
    moves.push(fresh);

    // BFS with parent pointers over product states (i, j).
    let enc = |i: usize, j: usize| i * (k + 1) + j;
    let mut parent: Vec<Option<(usize, Symbol)>> = vec![None; (m + 1) * (k + 1)];
    let mut seen = vec![false; (m + 1) * (k + 1)];
    seen[enc(0, 0)] = true;
    let mut queue = std::collections::VecDeque::from([(0usize, 0usize)]);

    let step_fires = |s: &Step<Symbol>, a: Symbol| match s.label {
        Label::Any => true,
        Label::Sym(x) => x == a,
    };

    let mut reach_goal: Option<(usize, usize)> = None;
    'bfs: while let Some((i, j)) = queue.pop_front() {
        // Goal tests.
        match kind {
            MatchKind::Strong => {
                if i + 1 == m + 1 && j + 1 == k + 1 {
                    // (m, k) — but only valid if entered by a double
                    // advance; we enforce that at enqueue time below.
                    reach_goal = Some((i, j));
                    break 'bfs;
                }
            }
            MatchKind::Weak => {
                if j == k {
                    // The l' prefix is fully consumed; l completes below.
                    reach_goal = Some((i, j));
                    break 'bfs;
                }
            }
        }
        for &a in &moves {
            let u_moves: &[usize] = {
                let adv = i < m && step_fires(&u_steps[i], a);
                let idle = i < m && u_steps[i].gap;
                match (adv, idle) {
                    (true, true) => &[1, 0],
                    (true, false) => &[1],
                    (false, true) => &[0],
                    (false, false) => &[],
                }
            };
            let r_moves: &[usize] = {
                let adv = j < k && step_fires(&r_steps[j], a);
                let idle = j < k && r_steps[j].gap;
                match (adv, idle) {
                    (true, true) => &[1, 0],
                    (true, false) => &[1],
                    (false, true) => &[0],
                    (false, false) => &[],
                }
            };
            for &du in u_moves {
                for &dr in r_moves {
                    let (ni, nj) = (i + du, j + dr);
                    // For strong matches, (m, k) may only be entered by a
                    // simultaneous double advance (both consume their
                    // final symbol on this letter).
                    if kind == MatchKind::Strong && ni == m && nj == k && !(du == 1 && dr == 1) {
                        continue;
                    }
                    if !seen[enc(ni, nj)] {
                        seen[enc(ni, nj)] = true;
                        parent[enc(ni, nj)] = Some((enc(i, j), a));
                        queue.push_back((ni, nj));
                    }
                }
            }
        }
    }

    let (gi, gj) = reach_goal?;
    // Reconstruct the word up to the goal state.
    let mut word = Vec::new();
    let mut cur = enc(gi, gj);
    while let Some((prev, a)) = parent[cur] {
        word.push(a);
        cur = prev;
    }
    word.reverse();
    let anchor = word.len().saturating_sub(1);

    if kind == MatchKind::Weak {
        // Complete l on its own: satisfy each remaining step with its own
        // label (or the fresh symbol for wildcards). Gaps need no filler.
        for step in &u_steps[gi..] {
            word.push(match step.label {
                Label::Sym(x) => x,
                Label::Any => fresh,
            });
        }
    }
    Some((word, anchor))
}

/// Extracts the read prefix `SEQ_{ROOT(R)}^{r_{j-1}}` of `j` nodes as a
/// pattern — handy for tests and for the one-edge-at-a-time reference
/// implementation.
pub fn read_prefix(read: &Pattern, j: usize) -> Pattern {
    assert!(read.is_linear() && j >= 1);
    let spine = read.path(read.root(), read.output()).expect("linear");
    read.seq(spine[0], spine[j - 1]).expect("prefix is a path")
}

/// The nodes of a linear pattern's spine, root first.
pub fn spine_nodes(l: &Pattern) -> Vec<PNodeId> {
    l.path(l.root(), l.output()).expect("linear pattern spine")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_pattern::xpath::parse;

    fn pat(s: &str) -> Pattern {
        parse(s).unwrap()
    }

    #[test]
    fn strong_same_pattern() {
        let p = pat("a/b//c");
        assert!(match_strong(&p, &p));
    }

    #[test]
    fn strong_label_clash() {
        assert!(!match_strong(&pat("a/b"), &pat("a/c")));
        assert!(!match_strong(&pat("a/b"), &pat("x/b")));
    }

    #[test]
    fn strong_length_mismatch() {
        assert!(!match_strong(&pat("a/b"), &pat("a/b/c")));
        // Descendant gaps absorb the length difference.
        assert!(match_strong(&pat("a//b"), &pat("a/x/b")));
        assert!(match_strong(&pat("a//c"), &pat("a/b/c")));
    }

    #[test]
    fn weak_is_one_sided() {
        // l = a/b/c reaches below l' = a/b: weak yes; the other
        // direction: l = a/b cannot reach below a/b/c's output.
        assert!(match_weak(&pat("a/b/c"), &pat("a/b")));
        assert!(!match_weak(&pat("a/b"), &pat("a/b/c")));
        // Equal outputs count as weak too.
        assert!(match_weak(&pat("a/b"), &pat("a/b")));
    }

    #[test]
    fn weak_with_wildcards() {
        assert!(match_weak(&pat("a/*/c"), &pat("a/b")));
        assert!(!match_weak(&pat("a/x"), &pat("a/y")));
        // Roots must still agree.
        assert!(!match_weak(&pat("x//q"), &pat("y")));
    }

    #[test]
    fn strong_needs_coincident_outputs() {
        // a//b vs a/c : outputs b vs c can never coincide…
        assert!(!match_strong(&pat("a//b"), &pat("a/c")));
        // …but a//b's output can sit below a/c's: weak.
        assert!(match_weak(&pat("a//b"), &pat("a/c")));
    }

    #[test]
    fn prefix_matcher_agrees_with_per_edge_nfa() {
        let cases = [
            ("a/b//c", "a/b/x/c/y"),
            ("a//b", "a/b/b/b"),
            ("*//x", "a/b/x"),
            ("a/*/c", "a/b/c/d"),
            ("root//p//q", "root/p/z/q/w"),
            ("a/b", "c/d"),
            ("a", "a//b"),
        ];
        for (u_src, r_src) in cases {
            let u = pat(u_src);
            let r = pat(r_src);
            let pm = PrefixMatcher::new(&u, &r);
            let k = spine_nodes(&r).len();
            assert_eq!(pm.read_len(), k);
            for j in 1..=k {
                let prefix = read_prefix(&r, j);
                assert_eq!(
                    pm.strong(j),
                    match_strong(&u, &prefix),
                    "strong({j}) for {u_src} vs {r_src}"
                );
                assert_eq!(
                    pm.weak(j),
                    match_weak(&u, &prefix),
                    "weak({j}) for {u_src} vs {r_src}"
                );
            }
        }
    }

    #[test]
    fn prefix_matcher_star_heavy() {
        let u = pat("*/*//*");
        let r = pat("*/*/*/*");
        let pm = PrefixMatcher::new(&u, &r);
        for j in 1..=4 {
            let prefix = read_prefix(&r, j);
            assert_eq!(pm.strong(j), match_strong(&u, &prefix), "strong({j})");
            assert_eq!(pm.weak(j), match_weak(&u, &prefix), "weak({j})");
        }
    }

    #[test]
    fn to_steps_shape() {
        let p = pat("a//*/c");
        let steps = to_steps(&p);
        assert_eq!(steps.len(), 3);
        assert!(!steps[0].gap);
        assert!(steps[1].gap);
        assert!(matches!(steps[1].label, Label::Any));
        assert!(!steps[2].gap);
    }

    #[test]
    #[should_panic(expected = "linear")]
    fn to_steps_rejects_branching() {
        let _ = to_steps(&pat("a[b]/c"));
    }

    #[test]
    fn read_prefix_extraction() {
        let r = pat("a/b//c");
        assert!(read_prefix(&r, 1).structurally_eq(&pat("a")));
        assert!(read_prefix(&r, 2).structurally_eq(&pat("a/b")));
        assert!(read_prefix(&r, 3).structurally_eq(&pat("a/b//c")));
    }
}
