//! Polynomial-time conflict detection for linear reads (§4).
//!
//! The headline algorithms of the paper. The **read** pattern must be
//! linear (`P^{//,*}`); the update pattern may be *any* pattern in
//! `P^{//,[],*}` — Lemmas 4 and 8 reduce it to its spine
//! `SEQ_{ROOT}^{𝒪}` without changing the answer.
//!
//! * **read-delete** (Lemma 3, Theorem 1, Corollary 1): a node conflict
//!   exists iff some edge `(n, n')` of the read satisfies
//!   * descendant edge: the delete spine and `SEQ_{ROOT(R)}^{n}` match
//!     *weakly*;
//!   * child edge: the delete spine and `SEQ_{ROOT(R)}^{n'}` match
//!     *strongly*.
//! * **read-insert** (Lemmas 5–8, Theorem 2, Corollary 2): a node
//!   conflict exists iff some edge `(n, n')` of the read is a *cut edge*:
//!   * child edge: the insert spine and `SEQ_{ROOT(R)}^{n}` match
//!     strongly, and `SEQ_{n'}^{𝒪(R)}` embeds into `X` at its root;
//!   * descendant edge: the insert spine and `SEQ_{ROOT(R)}^{n}` match
//!     weakly, and `SEQ_{n'}^{𝒪(R)}` embeds into `X` or a subtree of `X`.
//! * **tree conflicts** (remarks after Theorems 1–2): a node conflict, or
//!   the update spine weakly matches the whole read (a selected node's
//!   subtree can be modified).
//! * **value conflicts**: equivalent to tree conflicts for linear reads
//!   (Lemma 2 and the §4 remarks).
//!
//! All matching questions for all read prefixes are answered by a single
//! [`PrefixMatcher`] pass, as the paper's dynamic-programming remark
//! suggests, so detection runs in `O(|R|·|U|·|Σ| + |R|·|X|)`.

use crate::matching::{spine_nodes, PrefixMatcher};
use cxu_automata::compiled::Chain;
use cxu_ops::{Delete, Insert, Read, Semantics, Update};
use cxu_pattern::{eval, Axis, Pattern};
use cxu_tree::Tree;
use std::fmt;

/// Why a detection request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectError {
    /// The PTIME algorithms require the read pattern to be linear; for
    /// branching reads the problem is NP-complete (§5) — use
    /// [`crate::brute`].
    ReadNotLinear,
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::ReadNotLinear => {
                write!(
                    f,
                    "the PTIME detectors require a linear read pattern (P^{{//,*}})"
                )
            }
        }
    }
}

impl std::error::Error for DetectError {}

/// Does the read conflict with the deletion under `sem`, over **all**
/// trees? (Definition 4 quantifies over witnesses; this decides existence
/// without search.) The read must be linear; the delete may branch.
pub fn read_delete_conflict(r: &Read, d: &Delete, sem: Semantics) -> Result<bool, DetectError> {
    if !r.pattern().is_linear() {
        return Err(DetectError::ReadNotLinear);
    }
    let spine = d.pattern().spine(); // Lemma 4
    let pm = PrefixMatcher::new(&spine, r.pattern());
    Ok(delete_conflict_with(&pm, r.pattern(), sem))
}

/// The Lemma 3 / Theorem 1 edge conditions over a prebuilt prefix
/// matcher — shared by the per-call and compiled entry points.
fn delete_conflict_with(pm: &PrefixMatcher, read: &Pattern, sem: Semantics) -> bool {
    let nodes = spine_nodes(read);
    let k = nodes.len();

    let node_conflict = (2..=k).any(|j| {
        // Edge (n, n') = (nodes[j-2], nodes[j-1]).
        match read.axis(nodes[j - 1]).expect("non-root spine node") {
            Axis::Descendant => pm.weak(j - 1),
            Axis::Child => pm.strong(j),
        }
    });

    match sem {
        Semantics::Node => node_conflict,
        // Remark after Theorem 1: tree conflict ⇔ node conflict ∨ the
        // delete is weakly matched by the full read (a deletion point can
        // land inside a selected subtree). Value ≡ tree for linear reads
        // (Lemma 2).
        Semantics::Tree | Semantics::Value => node_conflict || pm.weak(k),
    }
}

/// Does the read conflict with the insertion under `sem`, over all trees
/// (Definition 3)? The read must be linear; the insert may branch.
pub fn read_insert_conflict(r: &Read, i: &Insert, sem: Semantics) -> Result<bool, DetectError> {
    if !r.pattern().is_linear() {
        return Err(DetectError::ReadNotLinear);
    }
    let spine = i.pattern().spine(); // Lemma 8
    let pm = PrefixMatcher::new(&spine, r.pattern());
    Ok(insert_conflict_with(&pm, r.pattern(), i.subtree(), sem))
}

/// The Lemma 6 / Theorem 2 cut-edge conditions over a prebuilt prefix
/// matcher — shared by the per-call and compiled entry points.
fn insert_conflict_with(pm: &PrefixMatcher, read: &Pattern, x: &Tree, sem: Semantics) -> bool {
    let nodes = spine_nodes(read);
    let k = nodes.len();

    let node_conflict = (2..=k).any(|j| {
        let n_prime = nodes[j - 1];
        let suffix = read
            .seq(n_prime, read.output())
            .expect("suffix of the spine is a path");
        match read.axis(n_prime).expect("non-root spine node") {
            // Cut-edge conditions (Lemma 6).
            Axis::Child => pm.strong(j - 1) && eval::can_embed_at(&suffix, x, x.root()),
            Axis::Descendant => pm.weak(j - 1) && !eval::embed_anchors(&suffix, x).is_empty(),
        }
    });

    match sem {
        Semantics::Node => node_conflict,
        // Remark after Theorem 2, and Lemma 2 for value semantics.
        Semantics::Tree | Semantics::Value => node_conflict || pm.weak(k),
    }
}

/// Unified entry point for any update.
///
/// Observability: each call bumps `core.detect.linear` and records its
/// wall time in `core.detect.linear_ns` (this is the §4 PTIME route the
/// scheduler prefers, and also the engine the linear update-update
/// analysis invokes for its cross-conflict checks).
pub fn read_update_conflict(r: &Read, u: &Update, sem: Semantics) -> Result<bool, DetectError> {
    instrumented(|| match u {
        Update::Insert(i) => read_insert_conflict(r, i, sem),
        Update::Delete(d) => read_delete_conflict(r, d, sem),
    })
}

/// [`read_update_conflict`] over pre-compiled chains: `rc` is the read's
/// compiled `ℛ(l)` chain and `uc` the compiled chain of the update's
/// *spine* (Lemmas 4 and 8). The scheduler's interner caches both, so the
/// hot path skips pattern lowering entirely — the prefix matcher runs
/// straight off the bitset tables. Same instrumentation as the per-call
/// entry point (`core.detect.linear{,_ns}`).
pub fn read_update_conflict_compiled(
    r: &Read,
    rc: &Chain,
    u: &Update,
    uc: &Chain,
    sem: Semantics,
) -> Result<bool, DetectError> {
    instrumented(|| {
        if !r.pattern().is_linear() {
            return Err(DetectError::ReadNotLinear);
        }
        let pm = PrefixMatcher::from_chains(uc, rc);
        Ok(match u {
            Update::Insert(i) => insert_conflict_with(&pm, r.pattern(), i.subtree(), sem),
            Update::Delete(_) => delete_conflict_with(&pm, r.pattern(), sem),
        })
    })
}

/// Shared `core.detect.linear` counter/histogram/trace wrapper for the
/// PTIME read-update detectors.
fn instrumented(f: impl FnOnce() -> Result<bool, DetectError>) -> Result<bool, DetectError> {
    let t0 = std::time::Instant::now();
    let out = f();
    cxu_obs::counter!("core.detect.linear").inc();
    cxu_obs::histogram!("core.detect.linear_ns").record_since(t0);
    if cxu_obs::trace::enabled() {
        cxu_obs::trace::event(
            "core.detect.linear",
            &[(
                "conflict",
                match &out {
                    Ok(c) => if *c { "true" } else { "false" }.into(),
                    Err(_) => "error".into(),
                },
            )],
        );
    }
    out
}

/// Pairs for which the detector proves *independence*: reorderable
/// operations in the compiler sense of §1. Convenience wrapper used by
/// the optimizer example and benches.
pub fn independent(r: &Read, u: &Update, sem: Semantics) -> Result<bool, DetectError> {
    read_update_conflict(r, u, sem).map(|c| !c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxu_pattern::xpath::parse;
    use cxu_tree::text;

    fn read(p: &str) -> Read {
        Read::new(parse(p).unwrap())
    }

    fn ins(p: &str, x: &str) -> Insert {
        Insert::new(parse(p).unwrap(), text::parse(x).unwrap())
    }

    fn del(p: &str) -> Delete {
        Delete::new(parse(p).unwrap()).unwrap()
    }

    // ---- read-insert, node semantics ----

    #[test]
    fn section1_conflict_detected() {
        // read $x//C vs insert $x/B, <C/> — the paper's motivating pair.
        let r = read("x//C");
        let i = ins("x/B", "C");
        assert!(read_insert_conflict(&r, &i, Semantics::Node).unwrap());
    }

    #[test]
    fn section1_independence_detected() {
        // read $x//D vs insert $x/B, <C/> — reorderable.
        let r = read("x//D");
        let i = ins("x/B", "C");
        assert!(!read_insert_conflict(&r, &i, Semantics::Node).unwrap());
    }

    #[test]
    fn functional_example_no_conflict() {
        // §1 functional fragment: read $x/*/A vs insert $x/B, <C/> —
        // the inserted C subtree contains no A, so grandchild reads are
        // unaffected at the node level… but the C node itself IS a new
        // grandchild; only reads looking for A are safe.
        let r = read("x/*/A");
        let i = ins("x/B", "C");
        assert!(!read_insert_conflict(&r, &i, Semantics::Node).unwrap());
        // Reading any grandchild conflicts: the fresh C is one.
        let r2 = read("x/*/*");
        assert!(read_insert_conflict(&r2, &i, Semantics::Node).unwrap());
    }

    #[test]
    fn insert_conflict_needs_suffix_in_x() {
        // read a/b/c, insert <q/> under a/b: the suffix after the cut
        // edge (c) does not embed in X=q → no node conflict.
        let r = read("a/b/c");
        let i = ins("a/b", "q");
        assert!(!read_insert_conflict(&r, &i, Semantics::Node).unwrap());
        // With X = c it does.
        let i2 = ins("a/b", "c");
        assert!(read_insert_conflict(&r, &i2, Semantics::Node).unwrap());
    }

    #[test]
    fn insert_descendant_edge_reaches_inside_x() {
        // read a//f, insert X = x(y(f)) under a's b children: f occurs
        // deep inside X; the descendant edge lets the read reach it.
        let r = read("a//f");
        let i = ins("a/b", "x(y(f))");
        assert!(read_insert_conflict(&r, &i, Semantics::Node).unwrap());
        // With a child edge a/f the inserted f is too deep.
        let r2 = read("a/f");
        assert!(!read_insert_conflict(&r2, &i, Semantics::Node).unwrap());
    }

    #[test]
    fn insert_child_edge_needs_x_root() {
        // read a/b/f: cut at the child edge (b,f) requires X's *root* to
        // be f. X = f(g): yes. X = g(f): no.
        let i_yes = ins("a/b", "f(g)");
        let i_no = ins("a/b", "g(f)");
        let r = read("a/b/f");
        assert!(read_insert_conflict(&r, &i_yes, Semantics::Node).unwrap());
        assert!(!read_insert_conflict(&r, &i_no, Semantics::Node).unwrap());
    }

    #[test]
    fn insert_prefix_must_match() {
        // read q/b/c vs insert under x/b — roots differ, no common tree.
        let r = read("q/b/c");
        let i = ins("x/b", "c");
        assert!(!read_insert_conflict(&r, &i, Semantics::Node).unwrap());
    }

    #[test]
    fn single_node_read_never_node_conflicts() {
        let r = read("a");
        assert!(!read_insert_conflict(&r, &ins("a/b", "c"), Semantics::Node).unwrap());
        assert!(!read_delete_conflict(&r, &del("a/b"), Semantics::Node).unwrap());
    }

    #[test]
    fn branching_insert_pattern_allowed() {
        // Corollary 2: insert pattern may branch; only its spine decides.
        let r = read("a//c");
        let i = ins("a/b[q][.//w]", "c");
        assert!(read_insert_conflict(&r, &i, Semantics::Node).unwrap());
    }

    #[test]
    fn branching_read_rejected() {
        let r = read("a[q]/b");
        assert_eq!(
            read_insert_conflict(&r, &ins("a/b", "c"), Semantics::Node),
            Err(DetectError::ReadNotLinear)
        );
    }

    // ---- read-delete, node semantics ----

    #[test]
    fn delete_below_read_path_conflicts() {
        // read a/b//v, delete a/b/u: the deletion point can sit between b
        // and v (descendant edge) — weak match on prefix a/b.
        let r = read("a/b//v");
        let d = del("a/b/u");
        assert!(read_delete_conflict(&r, &d, Semantics::Node).unwrap());
    }

    #[test]
    fn delete_of_read_target_conflicts() {
        // Child edge case: deletion point coincides with a read node.
        let r = read("a/b/c");
        let d = del("a/b/c");
        assert!(read_delete_conflict(&r, &d, Semantics::Node).unwrap());
        let d2 = del("a/b");
        assert!(read_delete_conflict(&r, &d2, Semantics::Node).unwrap());
    }

    #[test]
    fn delete_disjoint_paths_no_conflict() {
        let r = read("a/b/c");
        let d = del("a/x");
        assert!(!read_delete_conflict(&r, &d, Semantics::Node).unwrap());
    }

    #[test]
    fn delete_wildcard_reaches() {
        let r = read("a/*/c");
        let d = del("a/q");
        // q can be the read's * — strong match on prefix a/* at the child
        // edge (*, c)? The deletion point q = image of *, and c below is
        // deleted with it.
        assert!(read_delete_conflict(&r, &d, Semantics::Node).unwrap());
    }

    #[test]
    fn delete_deeper_than_read_no_node_conflict() {
        // read a/b, delete a/b/c/d: deletion strictly below every read
        // result — node sets unchanged.
        let r = read("a/b");
        let d = del("a/b/c/d");
        assert!(!read_delete_conflict(&r, &d, Semantics::Node).unwrap());
        // …but tree and value semantics see the modified subtree.
        assert!(read_delete_conflict(&r, &d, Semantics::Tree).unwrap());
        assert!(read_delete_conflict(&r, &d, Semantics::Value).unwrap());
    }

    #[test]
    fn branching_delete_pattern_allowed() {
        // Corollary 1: delete pattern may branch (spine reduction).
        let r = read("a/b//v");
        let d = del("a[z]/b[.//y]/u");
        assert!(read_delete_conflict(&r, &d, Semantics::Node).unwrap());
    }

    #[test]
    fn delete_root_label_mismatch() {
        let r = read("a/b");
        let d = del("x/b");
        assert!(!read_delete_conflict(&r, &d, Semantics::Node).unwrap());
        // A wildcard root on either side bridges the gap.
        let d2 = del("*/b");
        assert!(read_delete_conflict(&r, &d2, Semantics::Node).unwrap());
    }

    // ---- tree / value semantics ----

    #[test]
    fn tree_conflict_without_node_conflict_insert() {
        // read a/b, insert under a/b/c: insertion point strictly below
        // every read result.
        let r = read("a/b");
        let i = ins("a/b/c", "x");
        assert!(!read_insert_conflict(&r, &i, Semantics::Node).unwrap());
        assert!(read_insert_conflict(&r, &i, Semantics::Tree).unwrap());
        assert!(read_insert_conflict(&r, &i, Semantics::Value).unwrap());
    }

    #[test]
    fn insert_at_read_target_is_tree_conflict() {
        // Insertion point can equal the read output: node sets equal, but
        // the subtree gains a child.
        let r = read("a/b");
        let i = ins("a/b", "x");
        assert!(!read_insert_conflict(&r, &i, Semantics::Node).unwrap());
        assert!(read_insert_conflict(&r, &i, Semantics::Tree).unwrap());
    }

    #[test]
    fn no_tree_conflict_when_paths_disjoint() {
        let r = read("a/b");
        let i = ins("a/q", "x");
        for sem in Semantics::ALL {
            assert!(!read_insert_conflict(&r, &i, sem).unwrap(), "{sem:?}");
        }
    }

    #[test]
    fn root_read_tree_conflict() {
        // Reading the root never node-conflicts, but any applicable
        // update modifies its subtree.
        let r = read("a");
        let i = ins("a/b", "x");
        assert!(read_insert_conflict(&r, &i, Semantics::Tree).unwrap());
        let i2 = ins("z/b", "x"); // never applies to trees rooted 'a'… but
                                  // R and I need a COMMON tree: roots a vs z
        assert!(!read_insert_conflict(&r, &i2, Semantics::Tree).unwrap());
    }

    #[test]
    fn update_enum_and_independent() {
        let r = read("x//D");
        let u = Update::Insert(ins("x/B", "C"));
        assert!(independent(&r, &u, Semantics::Node).unwrap());
        let u2 = Update::Delete(del("x/B"));
        // Deleting B subtrees can remove D's below them.
        assert!(!independent(&r, &u2, Semantics::Node).unwrap());
    }
}
